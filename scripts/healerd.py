#!/usr/bin/env python
"""healerd — run the Forgiving Graph healer as a long-lived service.

The process entry point for :mod:`repro.service`: starts (or resumes) a
:class:`~repro.service.HealerDaemon` on a sqlite checkpoint store, serves
the live JSON status endpoint, and drives a seeded two-client churn
workload until ``--ops`` operations have been applied.  Every operation is
journalled durably before it is applied, so the process is safe to
``kill -9`` at any moment::

    PYTHONPATH=src python scripts/healerd.py --db run.db --topology power_law \\
        --n 64 --seed 7 --ops 200 --checkpoint-every 16 --status-port 0 \\
        --port-file run.port
    # ... SIGKILL it mid-churn, then pick up where the checkpoint left off:
    PYTHONPATH=src python scripts/healerd.py --db run.db --resume --ops 200

``--resume`` restores from the store (the service config is persisted in
it, so topology/seed flags are not repeated), certifies the recovered
state, and reports the :class:`~repro.service.RestartReport`.  ``--ops``
counts *total applied operations in the store*, so a resumed run finishes
the remaining budget.  ``--status-json PATH`` dumps a final status
snapshot for artifact upload; ``--rejoin-stale`` runs one
stale-checkpoint rejoin at the end (the digest-divergence healing demo).
"""

from __future__ import annotations

import argparse
import json
import random
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.distributed.faults import FAULT_PRESETS, FaultSpec  # noqa: E402
from repro.generators.graphs import GraphSpec, available_topologies  # noqa: E402
from repro.service import HealerDaemon, ServiceConfig  # noqa: E402


def drive_churn(daemon: HealerDaemon, ops_target: int, pump_every: int = 8) -> None:
    """Seeded two-client churn until the store holds ``ops_target`` ops.

    Deterministic given the config seed and the current journal length, so
    a resumed run continues the same workload shape the crashed one ran.
    """
    rng = random.Random(daemon.config.seed * 7919 + daemon.store.journal_len())
    clients = [daemon.client("churn-a"), daemon.client("churn-b")]
    next_id = 10_000 + daemon.store.journal_len()
    submitted = 0
    while daemon.store.journal_len() < ops_target:
        client = clients[submitted % len(clients)]
        alive = sorted(daemon._projected_alive, key=repr)
        if rng.random() < 0.3 or len(alive) <= 4:
            attach = rng.sample(alive, min(3, len(alive)))
            client.insert(next_id, attach)
            next_id += 1
        else:
            client.delete(rng.choice(alive))
        submitted += 1
        if submitted % pump_every == 0:
            daemon.pump()
    daemon.pump()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--db", required=True, help="checkpoint store path (one per run)")
    parser.add_argument("--resume", action="store_true", help="restore from the store")
    parser.add_argument(
        "--topology", default="power_law", choices=sorted(available_topologies())
    )
    parser.add_argument("--n", type=int, default=64, help="genesis node count")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--fault",
        default="lossless",
        help=f"fault preset ({', '.join(sorted(FAULT_PRESETS))})",
    )
    parser.add_argument("--ops", type=int, default=200, help="total ops budget (journalled)")
    parser.add_argument("--checkpoint-every", type=int, default=16)
    parser.add_argument("--batch-window", type=int, default=4)
    parser.add_argument(
        "--status-port", type=int, default=None, help="serve GET /status (0 = ephemeral)"
    )
    parser.add_argument(
        "--port-file", default=None, help="write the bound status port to this file"
    )
    parser.add_argument(
        "--status-json", default=None, help="dump a final status snapshot to this file"
    )
    parser.add_argument(
        "--rejoin-stale",
        action="store_true",
        help="finish with one stale-checkpoint rejoin (digest-divergence healing)",
    )
    args = parser.parse_args()

    if args.resume:
        daemon, report = HealerDaemon.restore(args.db)
        print(
            f"restored from checkpoint seq={report.checkpoint_seq}: "
            f"{report.prefix_ops} prefix ops (oracle replay), "
            f"{report.suffix_ops} suffix ops (full path), "
            f"converged={report.converged} audit_clean={report.audit_clean} "
            f"verified={report.verified}"
        )
        if not (report.converged and report.audit_clean and report.verified):
            print("restore certification FAILED", file=sys.stderr)
            return 1
    else:
        try:
            spec = FaultSpec.parse(args.fault, seed=args.seed)
        except ValueError as exc:
            parser.error(str(exc))
        config = ServiceConfig(
            graph=GraphSpec(args.topology, args.n),
            fault=spec,
            seed=args.seed,
            checkpoint_every=args.checkpoint_every,
            batch_window=args.batch_window,
        )
        daemon = HealerDaemon.create(args.db, config)
        print(f"started fresh run: {config.describe()} -> {args.db}")

    server = None
    if args.status_port is not None:
        server = daemon.serve_status(port=args.status_port)
        print(f"status endpoint: {server.url}")
        if args.port_file:
            Path(args.port_file).write_text(str(server.port))

    try:
        drive_churn(daemon, args.ops)
        daemon.checkpoint()
        if args.rejoin_stale:
            rejoin = daemon.rejoin_stale()
            print(
                f"rejoin: victim={rejoin.victim!r} stale={rejoin.stale!r} "
                f"rolled_back={rejoin.records_rolled_back} "
                f"sweeps={rejoin.sweeps} retransmissions={rejoin.retransmissions} "
                f"converged={rejoin.converged} audit_clean={rejoin.audit_clean} "
                f"verified={rejoin.verified}"
            )
            if not (rejoin.converged and rejoin.audit_clean and rejoin.verified):
                print("rejoin healing FAILED", file=sys.stderr)
                return 1
        daemon.healer.verify_consistency()
        status = daemon.status()
        if args.status_json:
            Path(args.status_json).write_text(json.dumps(status, indent=2))
        print(json.dumps(status, indent=2))
    finally:
        if server is not None:
            server.stop()
        daemon.store.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
