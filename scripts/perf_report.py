#!/usr/bin/env python
"""Regenerate BENCH_perf.json: seed-vs-fastpath timings of the hot paths.

The seed implementation paid a per-event measurement tax: every deletion
rebuilt the healed graph ``G`` from scratch, and every stretch measurement
copied both graphs and ran a dict-based networkx BFS per source.  PR 1 made
``G`` incremental and moved measurement onto CSR bitset BFS; PR 2 unified the
step loop into :class:`repro.engine.AttackSession`, made the targeted
adversaries incremental (heap + degree-touch journal instead of per-move
survivor sorts) and parallelized multi-config sweeps.  This script times the
retained seed/reference behaviours against the fast paths on identical
workloads and writes the results to ``BENCH_perf.json`` at the repo root so
each PR can track the trajectory.

Standalone by design — no pytest or pytest-benchmark needed::

    PYTHONPATH=src python scripts/perf_report.py            # full report
    PYTHONPATH=src python scripts/perf_report.py --quick    # skip n=5000
    PYTHONPATH=src python scripts/perf_report.py --smoke    # CI: tiny n, asserts >= 1x
    PYTHONPATH=src python scripts/perf_report.py --output /tmp/bench.json

Workloads
---------
``stretch_report``
    A seeded Erdős–Rényi graph with n/4 random deletions applied (so real RT
    structure exists), then one full stretch measurement.  Seed side:
    :func:`repro.analysis.stretch_report_reference`; fast side:
    :func:`repro.analysis.stretch_report`.

``churn_sweep``
    A delete-heavy (p_delete = 0.8) churn schedule with periodic Theorem 1
    measurements — the end-to-end shape of every experiment sweep, driven
    through one :class:`repro.engine.AttackSession`.  Seed side: an engine
    subclass that rebuilds ``G`` from scratch on every deletion plus
    copy-based reference measurement; fast side: the stock session cadence.

``adversary_step``
    A max-degree deletion attack, timing the adversary's victim choice: the
    retained sorted ``max_degree_reference`` scan vs the incremental
    heap/journal tracker.

``parallel_sweep``
    The same multi-config sweep executed serially (the PR 1 baseline path)
    and via ``run_sweep(max_workers=...)``, end-to-end wall clock.

``distributed_repair``
    A max-degree deletion attack on the message-passing simulator.  Seed
    side: the pre-refactor O(n + m)-per-deletion accounting (full graph
    copies for planning, full-diff link sync, full metrics snapshots); fast
    side: message-driven link maintenance and the per-repair metrics window.
    Both sides replay identical repairs, so the per-deletion
    message/bit/round reports must agree exactly.

``message_native_merge``
    Correctness gate (PR 4), not a speedup: a deletion attack with the
    reference engine's merge outcome *quarantined* (reading it raises), so
    the healed structure provably comes from messages alone; asserts the
    Lemma 4 budgets still hold without the oracle, that the message-built
    state equals the oracle under a lossless network, and that seeded
    drop/reorder fault schedules reconverge to the oracle (the
    ``--fault-schedule`` presets; the CI matrix runs one preset per job).

``message_native_recovery``
    Correctness gate (PR 5): the same attacks with the repair plan's
    *global knowledge* additionally poisoned (the per-participant context
    map and the all-pieces union — reading either raises), run under
    lossless and every fault preset.  Passing proves ``reconverge()``
    reached the fixed point on gossip digests alone, that the retained
    plan-based audit would indeed have raised, that the recovered state
    equals the oracle, and that the digest traffic stayed within its
    Lemma-4-style per-sweep budgets.

``byzantine_containment``
    Correctness gate (PR 6): deletion attacks with *byzantine* processors
    corrupting the payloads they send (descriptors, digest records,
    assignments — the ``--byzantine-schedule`` presets), both quarantines
    armed.  Passing proves the accountability transcript matches the
    oracle-side injection log exactly — every delivered lie accused, only
    genuine liars accused, zero accusations on honest runs under every
    delivery preset — that recovery still reaches its fixed point around
    the quarantined, and that verification costs essentially nothing on
    the honest lossless path (the smoke-floor timing check).

``network_delivery``
    The batched ``Network.deliver_round`` (one recycled per-round buffer,
    in-place fault compaction, reorder machinery skipped when no policy can
    reorder) against the retained ``deliver_round_reference`` allocation
    pattern, on identical distributed attacks; the per-deletion cost
    reports must agree exactly.

``concurrent_repairs``
    Correctness-plus-latency gate (PR 8): a burst of deletions with
    pairwise-disjoint repair footprints healed concurrently — every message
    epoch-tagged with its repair's victim, all repairs interleaved in one
    ``deliver_round`` stream, anti-entropy gossip piggybacked in the
    background.  Asserts the burst's rounds come in under 0.6x the
    sequential count (latency ~ max, not ~ sum), that
    ``delete_batch(concurrency=1)`` is bit-identical to sequential
    ``delete`` calls under every delivery preset, and that on the lossless
    path every epoch's recovery ends with an *empty* fixed-point probe (the
    silent-protocol property, measured).  ``--concurrent-schedule`` adds
    mixed-traffic rows (chaos delivery, byzantine lies) on the dedicated CI
    leg.

``large_n``
    The dense-int hot core (PR 7).  Three rows: *speedup* — a delete-heavy
    attack on the dense healer (interned ids, flat adjacency, packed link
    keys, struct-of-arrays Table 1 records) against the pre-PR object-dict
    path (``dense=False`` plus the seed's per-deletion O(n + m) accounting,
    the same reference twin ``distributed_repair`` uses), with a
    transparent ``layout_speedup`` sub-figure isolating pure dense-vs-dict
    under identical stock accounting, gated on bit-identical per-deletion
    cost reports under lossless, byzantine and chaos schedules; *memory* —
    tracemalloc bytes/node over a fixed build+churn for both layouts;
    *scale* — a sharded delete-heavy churn sweep
    (``repro.experiments.sweep_large_n``: disjoint sub-networks on the
    deterministic-seed pool) reporting end-to-end nodes/sec.  A fourth
    *transcript* row (PR 8) replays the memory workload at the default and
    a trimmed ``receive_trace_limit``, reporting retained receive-transcript
    messages and payload bytes — the knob that shrinks the per-processor
    dispute window at large n.

``message_fabric``
    The zero-allocation message fabric (PR 10).  Four rows: *equivalence* —
    the slotted + pooled + packed fabric against the PR 9 twin (pooling,
    packed batching and tally accounting all off) on identical delete-heavy
    attacks under every delivery preset plus the byzantine lie schedule,
    gated on bit-identical per-deletion cost reports and healed link sets;
    *allocations* — a live ``Message``-object census over a lossless
    steady-state flood, asserting ~zero new objects per round once the
    receive-trace deques have warmed the pool; *flood speedup* — the same
    flood timed fabric-on vs the PR 9 path (metrics totals asserted equal
    first); *shared scale* — ``sweep_large_n(shared_network=True)``: one
    ``Network`` carrying the whole graph through ``delete_batch`` waves of
    disjoint-footprint victim bursts, reporting end-to-end nodes/sec.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

import networkx as nx

from repro import AttackSession, ForgivingGraph
from repro.adversary.schedule import churn_schedule
from repro.adversary.strategies import (
    MaxDegreeDeletion,
    MaxDegreeDeletionReference,
    RandomDeletion,
)
from repro.analysis import stretch_report, stretch_report_reference
from repro.analysis.fastpaths import HAVE_SCIPY
from repro.distributed import DistributedForgivingGraph, Network
from repro.distributed.faults import (
    BYZANTINE_PRESETS,
    DELIVERY_PRESETS,
    FaultSpec,
    fault_schedule,
)
from repro.distributed.messages import DeletionNotice
from repro.distributed.metrics import (
    DeletionCostReport,
    aggregate_byzantine,
    aggregate_recovery,
)
from repro.experiments import (
    AttackConfig,
    ExperimentConfig,
    SweepTask,
    run_sweep,
    sweep_large_n,
)
from repro.generators import GraphSpec, make_graph

#: Acceptance targets (checked by the report itself).
TARGET_STRETCH_SPEEDUP_N1000 = 10.0
TARGET_CHURN_SPEEDUP = 5.0
TARGET_ADVERSARY_SPEEDUP = 2.0
TARGET_PARALLEL_SPEEDUP = 1.3
TARGET_DISTRIBUTED_SPEEDUP_N1000 = 5.0
TARGET_LARGE_N_SPEEDUP = 3.0
#: A disjoint k>=4 burst healed concurrently must finish in under this
#: fraction of the sequential round count (latency ~ max, not ~ sum).
TARGET_CONCURRENT_ROUND_RATIO = 0.6
#: Smoke mode (CI) only asserts "the fast path is not a regression"; the
#: sub-1.0 floor absorbs scheduling noise on tiny-n timings (shared runners).
TARGET_SMOKE_SPEEDUP = 0.7
#: The pooled + packed message fabric must beat the PR 9 delivery path by
#: this factor on the full-scale (n=5000) message flood.
TARGET_FABRIC_SPEEDUP = 1.5
#: Pooled steady state may allocate at most this many Message objects per
#: delivered round (the gate's definition of "~zero").
TARGET_FABRIC_ALLOCS_PER_ROUND = 0.5


# --------------------------------------------------------------------------- #
# seed-behaviour emulation
# --------------------------------------------------------------------------- #
class SeedStyleForgivingGraph(ForgivingGraph):
    """The stock engine plus the seed's per-deletion full rebuild of ``G``.

    The seed's ``delete()`` ran ``_compute_actual()`` after invalidating the
    cache, i.e. one from-scratch rebuild per deletion (more under churn, when
    interleaved inserts also invalidated the cache — emulating only one keeps
    the comparison conservative).  Healing semantics are untouched, so both
    sides of the comparison play identical attacks.
    """

    def delete(self, node):
        report = super().delete(node)
        self._rebuild_actual()
        return report


def _reference_connectivity(healer) -> bool:
    """The seed's connectivity check: graph copies + per-component dict BFS."""
    actual = healer.actual_graph()
    g_prime = healer.g_prime_view()
    alive = healer.alive_nodes
    for component in nx.connected_components(g_prime):
        alive_in_component = [node for node in component if node in alive]
        if len(alive_in_component) <= 1:
            continue
        root = alive_in_component[0]
        if root not in actual:
            return False
        reachable = nx.node_connected_component(actual, root)
        if any(other not in reachable for other in alive_in_component[1:]):
            return False
    return True


def _reference_degree_factor(healer) -> float:
    """The seed's degree metric: copies of both graphs, per-node ratios."""
    actual = healer.actual_graph()
    g_prime = healer.g_prime_view()
    worst = 0.0
    for node in healer.alive_nodes:
        d_prime = g_prime.degree[node] if node in g_prime else 0
        if d_prime == 0:
            continue
        d_actual = actual.degree[node] if node in actual else 0
        worst = max(worst, d_actual / d_prime)
    return worst


class SeedAccountingDistributedGraph(DistributedForgivingGraph):
    """The stock distributed healer plus the seed's per-deletion accounting.

    The seed's ``delete()`` paid O(n + m) of measurement per repair: full
    graph copies while planning, a full-counter ``snapshot()``, the full-diff
    oracle link resync (``_sync_links_reference`` rebuilds the healed graph
    and diffs the whole edge/source set), another healed-graph copy for the
    BT_v cleanup, and an all-nodes per-sender delta.  Repairs themselves are
    identical on both sides (this subclass delegates the actual repair to
    the stock message-native path), so the comparison isolates the
    accounting overhead the incremental path removed.  It also retains the
    seed's cumulative ``max_message_bits`` (a later cheap deletion inherited
    the run-wide maximum — the bug the per-repair window fixed), so that
    field is excluded from the equivalence check.
    """

    def delete(self, node):
        engine = self._engine
        engine.actual_graph()  # seed planning copied both graphs
        engine.g_prime_view()
        before = self.network.metrics.snapshot()

        fast_report = super().delete(node)

        engine.actual_graph()  # the seed BT_v cleanup's full healed-graph copy
        self._sync_links_reference()  # the seed's full-diff link sync

        after = self.network.metrics
        per_node_delta = {
            proc: after.messages_sent_by_node.get(proc, 0)
            - before.messages_sent_by_node.get(proc, 0)
            for proc in after.messages_sent_by_node
        }
        report = DeletionCostReport(
            deleted_node=node,
            degree=fast_report.degree,
            n_ever=engine.nodes_ever,
            messages=after.total_messages - before.total_messages,
            bits=after.total_bits - before.total_bits,
            rounds=fast_report.rounds,
            max_message_bits=after.max_message_bits,
            max_messages_per_node=max(per_node_delta.values(), default=0),
            helpers_created=fast_report.helpers_created,
            helpers_released=fast_report.helpers_released,
        )
        self.cost_reports[-1] = report
        return report


# --------------------------------------------------------------------------- #
# workloads
# --------------------------------------------------------------------------- #
def _cost_report_key(report: DeletionCostReport):
    """The fields two replays of the identical repair must agree on exactly."""
    return (
        report.deleted_node,
        report.messages,
        report.bits,
        report.rounds,
        report.max_messages_per_node,
    )


def _churned_engine(n: int, seed: int, engine_cls=ForgivingGraph) -> ForgivingGraph:
    """An engine over a seeded ER graph with n/4 random deletions applied."""
    fg = engine_cls.from_graph(make_graph("erdos_renyi", n, seed=seed))
    strategy = RandomDeletion(seed=seed)
    for _ in range(n // 4):
        victim = strategy.choose_victim(fg)
        if victim is None or fg.num_alive <= 2:
            break
        fg.delete(victim)
    return fg


def _time(func: Callable[[], object], repeats: int = 1) -> float:
    """Best-of-``repeats`` wall-clock seconds for ``func()``."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def bench_stretch(n: int, max_sources: Optional[int], seed: int = 20090214) -> Dict[str, object]:
    """Time seed vs fast ``stretch_report`` on one churned engine state."""
    fg = _churned_engine(n, seed)
    kwargs = {"max_sources": max_sources, "seed": 0}
    fast = stretch_report(fg, **kwargs)
    reference = stretch_report_reference(fg, **kwargs)
    if (
        fast.max_stretch != reference.max_stretch
        or fast.pairs_measured != reference.pairs_measured
        or fast.disconnected_pairs != reference.disconnected_pairs
    ):
        raise AssertionError(
            f"fast and reference stretch disagree at n={n}: {fast} vs {reference}"
        )
    seed_seconds = _time(lambda: stretch_report_reference(fg, **kwargs))
    fast_seconds = _time(lambda: stretch_report(fg, **kwargs), repeats=3)
    return {
        "n": n,
        "alive": fg.num_alive,
        "sources": max_sources if max_sources is not None else fg.num_alive,
        "max_stretch": fast.max_stretch,
        "seed_seconds": round(seed_seconds, 4),
        "fast_seconds": round(fast_seconds, 4),
        "speedup": round(seed_seconds / fast_seconds, 1) if fast_seconds else float("inf"),
    }


def bench_churn(n: int, stretch_sources: int = 32, seed: int = 20090214) -> Dict[str, object]:
    """Time the end-to-end churn sweep (one AttackSession), seed vs fast paths."""
    steps = min(n, 1000)
    interval = max(steps // 8, 1)

    def run_seed_side() -> None:
        # Seed emulation: per-deletion G rebuild + copy-based reference
        # measurement, driven through the same session step loop (periodic
        # measurement disabled; the reference measurement rides the stream).
        fg = SeedStyleForgivingGraph.from_graph(make_graph("erdos_renyi", n, seed=seed))
        schedule = churn_schedule(steps=steps, delete_probability=0.8, seed=seed)
        session = AttackSession(fg, schedule, measure_every=0, measure_final=False)
        for event in session.stream():
            if (event.deletions + event.insertions) % interval == 0:
                stretch_report_reference(fg, max_sources=stretch_sources, seed=seed)
                _reference_degree_factor(fg)
                _reference_connectivity(fg)
        stretch_report_reference(fg, max_sources=stretch_sources, seed=seed)
        _reference_degree_factor(fg)
        _reference_connectivity(fg)

    def run_fast_side() -> int:
        fg = ForgivingGraph.from_graph(make_graph("erdos_renyi", n, seed=seed))
        schedule = churn_schedule(steps=steps, delete_probability=0.8, seed=seed)
        session = AttackSession(
            fg, schedule, stretch_sources=stretch_sources, seed=seed, measure_every=interval
        )
        result = session.run()
        return result.steps // interval + 1

    start = time.perf_counter()
    run_seed_side()
    seed_seconds = time.perf_counter() - start

    start = time.perf_counter()
    measurements = run_fast_side()
    fast_seconds = time.perf_counter() - start

    return {
        "n": n,
        "steps": steps,
        "delete_probability": 0.8,
        "stretch_sources": stretch_sources,
        "measurements": measurements,
        "seed_seconds": round(seed_seconds, 4),
        "fast_seconds": round(fast_seconds, 4),
        "speedup": round(seed_seconds / fast_seconds, 1) if fast_seconds else float("inf"),
    }


def bench_adversary_step(n: int, seed: int = 20090214) -> Dict[str, object]:
    """Time the targeted attack: sorted reference adversary vs heap tracker.

    Both sides play the identical max-degree deletion attack (the strategies
    are equivalence-pinned).  ``choose_*`` columns isolate the victim choice
    itself — the O(n log n)-per-move survivor sort the incremental tracker
    replaces with O(delta log n) journal drains; ``seed_/fast_seconds`` time
    the whole attack end-to-end (victim choice + repair), i.e. the speedup a
    targeted sweep sees over the PR 1 baseline path.
    """
    steps = min(n // 2, 1000)

    def attack(strategy) -> Dict[str, float]:
        fg = ForgivingGraph.from_graph(make_graph("erdos_renyi", n, seed=seed))
        choosing = 0.0
        total_start = time.perf_counter()
        for _ in range(steps):
            start = time.perf_counter()
            victim = strategy.choose_victim(fg)
            choosing += time.perf_counter() - start
            if victim is None or fg.num_alive <= 2:
                break
            fg.delete(victim)
        return {"total": time.perf_counter() - total_start, "choose": choosing}

    reference = attack(MaxDegreeDeletionReference())
    incremental = attack(MaxDegreeDeletion())
    return {
        "n": n,
        "steps": steps,
        "strategy": "max_degree",
        "choose_seed_seconds": round(reference["choose"], 4),
        "choose_fast_seconds": round(incremental["choose"], 4),
        "choose_speedup": (
            round(reference["choose"] / incremental["choose"], 1) if incremental["choose"] else float("inf")
        ),
        "seed_seconds": round(reference["total"], 4),
        "fast_seconds": round(incremental["total"], 4),
        "speedup": (
            round(reference["total"] / incremental["total"], 1) if incremental["total"] else float("inf")
        ),
    }


def bench_parallel_sweep(
    n: int, workers: Optional[int] = None, seed: int = 20090214
) -> Dict[str, object]:
    """Time a multi-config sweep: serial (PR 1 baseline path) vs process pool."""
    if workers is None:
        workers = min(4, os.cpu_count() or 1)
    strategies = ["random", "max_degree", "min_degree", "cut"]
    tasks = [
        SweepTask(
            config=ExperimentConfig(
                name="bench-parallel",
                graph=GraphSpec(topology="erdos_renyi", n=n),
                attack=AttackConfig(strategy=strategy, delete_fraction=0.3),
                healers=("forgiving_graph",),
                seed=seed,
                stretch_sources=24,
            ),
            healer="forgiving_graph",
        )
        for strategy in strategies
    ]

    start = time.perf_counter()
    serial_rows = run_sweep(tasks)
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    parallel_rows = run_sweep(tasks, max_workers=workers)
    parallel_seconds = time.perf_counter() - start

    strip = lambda row: {k: v for k, v in row.items() if k != "seconds"}
    if [strip(r) for r in serial_rows] != [strip(r) for r in parallel_rows]:
        raise AssertionError(f"serial and parallel sweep rows disagree at n={n}")

    return {
        "n": n,
        "configs": len(tasks),
        "workers": workers,
        "serial_seconds": round(serial_seconds, 4),
        "parallel_seconds": round(parallel_seconds, 4),
        "speedup": round(serial_seconds / parallel_seconds, 1) if parallel_seconds else float("inf"),
    }


def bench_distributed_repair(
    n: int, deletions: Optional[int] = None, seed: int = 20090214
) -> Dict[str, object]:
    """Time the distributed simulator's per-deletion accounting, seed vs fast.

    Both sides play the identical max-degree attack (same victims — the
    incremental adversary reads the same journal through both subclasses),
    so the per-deletion message/bit/round reports must agree exactly; only
    the accounting around the repairs differs.
    """
    if deletions is None:
        deletions = n // 2
    graph = make_graph("power_law", n, seed=seed)

    def attack(cls):
        healer = cls.from_graph(graph)
        strategy = MaxDegreeDeletion()
        start = time.perf_counter()
        for _ in range(deletions):
            victim = strategy.choose_victim(healer)
            if victim is None or healer.num_alive <= 3:
                break
            healer.delete(victim)
        return time.perf_counter() - start, healer

    seed_seconds, seed_healer = attack(SeedAccountingDistributedGraph)
    fast_seconds, fast_healer = attack(DistributedForgivingGraph)

    fast_healer.verify_consistency()
    if [_cost_report_key(r) for r in fast_healer.cost_reports] != [
        _cost_report_key(r) for r in seed_healer.cost_reports
    ]:
        raise AssertionError(f"seed and fast distributed accounting disagree at n={n}")

    repairs = max(len(fast_healer.cost_reports), 1)
    return {
        "n": n,
        "deletions": len(fast_healer.cost_reports),
        "seed_seconds": round(seed_seconds, 4),
        "fast_seconds": round(fast_seconds, 4),
        "seed_ms_per_deletion": round(1000 * seed_seconds / repairs, 3),
        "fast_ms_per_deletion": round(1000 * fast_seconds / repairs, 3),
        "within_lemma4_budgets": all(
            r.within_message_budget and r.within_round_budget
            for r in fast_healer.cost_reports
        ),
        "speedup": round(seed_seconds / fast_seconds, 1) if fast_seconds else float("inf"),
    }


def bench_message_native(
    n: int,
    fault_presets: List[str],
    deletions: Optional[int] = None,
    seed: int = 20090214,
) -> Dict[str, object]:
    """The message-native merge gate: correctness without the oracle.

    Runs a max-degree deletion attack with the engine's merge outcome
    *quarantined* (any read raises), so passing proves the healed structure
    was computed from message payloads alone; then checks the Lemma 4
    budgets, exact lossless equivalence with the oracle, and — per requested
    fault preset — that seeded drop/delay/reorder schedules reconverge to
    the oracle after every repair.
    """
    if deletions is None:
        deletions = n // 2
    graph = make_graph("power_law", n, seed=seed)

    def attack(healer) -> None:
        strategy = MaxDegreeDeletion()
        for _ in range(deletions):
            victim = strategy.choose_victim(healer)
            if victim is None or healer.num_alive <= 3:
                break
            healer.delete(victim)

    lossless = DistributedForgivingGraph.from_graph(graph, quarantine_oracle=True)
    attack(lossless)
    lossless.verify_consistency()  # message-built state == oracle, exactly
    within_budgets = all(
        r.within_message_budget and r.within_round_budget for r in lossless.cost_reports
    )

    fault_rows: List[Dict[str, object]] = []
    for preset in fault_presets:
        faulty = DistributedForgivingGraph.from_graph(
            graph,
            fault_schedule=fault_schedule(preset, seed=seed),
            quarantine_oracle=True,
        )
        attack(faulty)
        consistent = True
        try:
            faulty.verify_consistency()
        except Exception:
            consistent = False
        fault_rows.append(
            {
                "preset": preset,
                "repairs": len(faulty.cost_reports),
                "dropped": sum(r.dropped_messages for r in faulty.cost_reports),
                "retransmissions": sum(r.retransmissions for r in faulty.cost_reports),
                "reconvergence_rounds": sum(
                    r.reconvergence_rounds for r in faulty.cost_reports
                ),
                "all_converged": all(r.converged for r in faulty.cost_reports),
                "consistent_with_oracle": consistent,
            }
        )

    return {
        "n": n,
        "deletions": len(lossless.cost_reports),
        "messages": sum(r.messages for r in lossless.cost_reports),
        "oracle_free": True,  # the quarantine would have raised otherwise
        "within_lemma4_budgets": within_budgets,
        "lossless_matches_oracle": True,  # verify_consistency would have raised
        "fault_schedules": fault_rows,
        "ok": within_budgets
        and all(
            row["all_converged"] and row["consistent_with_oracle"] for row in fault_rows
        ),
    }


#: The full recovery-gate matrix: the acceptance bar is "digest recovery
#: reaches the fixed point under lossless *and* all delivery faults", so the
#: list is derived from the delivery registry itself (a preset added to
#: ``DELIVERY_PRESETS`` joins the gate automatically).  The byzantine
#: presets stay out: this gate scores against the oracle, and quarantining
#: a liar leaves a deliberate, permanent divergence — the dedicated
#: ``byzantine_containment`` gate covers them.  Local full runs and the
#: dedicated CI leg replay all of it; the other CI smoke legs pass
#: ``--recovery-schedule`` to run a cheap subset instead of repeating the
#: whole matrix per job.
RECOVERY_GATE_PRESETS = list(DELIVERY_PRESETS)


def bench_message_native_recovery(
    n: int,
    presets: Optional[List[str]] = None,
    deletions: Optional[int] = None,
    seed: int = 20090214,
) -> Dict[str, object]:
    """The message-native recovery gate: reconvergence without global knowledge.

    Runs a deletion attack per fault preset with *both* quarantines armed —
    the engine's merge outcome and the repair plan's global knowledge
    (context map + all-pieces union) are poison, so every repair and every
    recovery provably runs on messages alone.  The lossless run drives
    ``reconverge()`` by hand after each deletion, isolating the pure
    detection cost (one silent sweep, zero retransmissions).  Per preset the
    gate checks: every recovery converged, the retained plan-based audit
    would indeed raise, the recovered state equals the oracle, and the
    digest traffic stayed within its Lemma-4-style per-sweep budgets.
    """
    if presets is None:
        presets = RECOVERY_GATE_PRESETS
    if deletions is None:
        deletions = n // 2
    graph = make_graph("power_law", n, seed=seed)

    rows: List[Dict[str, object]] = []
    for preset in presets:
        healer = DistributedForgivingGraph.from_graph(
            graph,
            fault_schedule=fault_schedule(preset, seed=seed),
            quarantine_oracle=True,
            quarantine_plan_audit=True,
        )
        strategy = MaxDegreeDeletion()
        for _ in range(deletions):
            victim = strategy.choose_victim(healer)
            if victim is None or healer.num_alive <= 3:
                break
            healer.delete(victim)
            if healer.fault_schedule is None:
                healer.reconverge()  # lossless: measure pure detection cost
        audit_poisoned = False
        try:
            healer.audit_reference()
        except AssertionError:
            audit_poisoned = True
        consistent = True
        try:
            healer.verify_consistency()
        except Exception:
            consistent = False
        row: Dict[str, object] = {"preset": preset, "repairs": len(healer.cost_reports)}
        row.update(aggregate_recovery(healer.recovery_reports))
        row["plan_audit_poisoned"] = audit_poisoned
        row["consistent_with_oracle"] = consistent
        rows.append(row)

    return {
        "n": n,
        "presets": rows,
        "ok": all(
            row["all_converged"]
            and row["within_digest_budgets"]
            and row["within_round_budgets"]
            and row["plan_audit_poisoned"]
            and row["consistent_with_oracle"]
            and row["recoveries"] > 0
            for row in rows
        ),
    }


#: The byzantine-gate matrix: lies over reliable links and lies combined
#: with the chaos delivery policy (``BYZANTINE_PRESETS`` is the registry).
BYZANTINE_GATE_PRESETS = list(BYZANTINE_PRESETS)


def bench_byzantine_containment(
    n: int,
    presets: Optional[List[str]] = None,
    deletions: Optional[int] = None,
    seed: int = 20090214,
) -> Dict[str, object]:
    """The byzantine containment gate: accountable detection, no collateral.

    Three checks, all message-native (both quarantines armed, so detection
    provably used neither the oracle's merge nor the plan's global
    knowledge):

    1. **Byzantine runs** — per byzantine preset, the accountability
       transcript is scored against the oracle-side injection log: every
       processor whose corrupted payload was actually *delivered* is
       accused (dropped lies never reached a verifier and don't count),
       only genuinely byzantine processors are ever accused, every
       recovery still reaches its silent fixed point around the
       quarantined, and the containment radius is reported.
    2. **Honest controls** — the same attack under every delivery preset
       produces zero accusations: drops, delays and reorders are never
       mistaken for lies.
    3. **Overhead** — on the lossless path, the attack with accountability
       enabled must not lose more than the smoke floor against the same
       attack with the transcript disabled (seals are lazy and descriptor
       checksums hash once per object, so honest traffic is verified
       essentially for free).
    """
    if presets is None:
        presets = BYZANTINE_GATE_PRESETS
    if deletions is None:
        deletions = n // 2
    graph = make_graph("power_law", n, seed=seed)

    def attack(healer) -> None:
        strategy = MaxDegreeDeletion()
        for _ in range(deletions):
            victim = strategy.choose_victim(healer)
            if victim is None or healer.num_alive <= 3:
                break
            healer.delete(victim)

    rows: List[Dict[str, object]] = []
    for preset in presets:
        schedule = fault_schedule(preset, seed=seed)
        healer = DistributedForgivingGraph.from_graph(
            graph,
            fault_schedule=schedule,
            quarantine_oracle=True,
            quarantine_plan_audit=True,
        )
        attack(healer)
        transcript = healer.network.transcript
        injection = healer.network.injection_log
        accused = set(transcript.accused)
        row: Dict[str, object] = {
            "preset": preset,
            "repairs": len(healer.cost_reports),
            "all_converged": all(r.converged for r in healer.cost_reports),
            "every_delivered_lie_accused": (
                accused == injection.origins_with_delivered_lies
            ),
            "only_byzantine_accused": all(
                schedule.is_byzantine(node) for node in accused
            ),
            "quarantined": len(healer.network.quarantined),
        }
        row.update(
            aggregate_byzantine([r.byzantine for r in healer.cost_reports])
        )
        row["ok"] = bool(
            row["all_converged"]
            and row["every_delivered_lie_accused"]
            and row["only_byzantine_accused"]
            and row["false_accusations"] == 0
            and row["lies_delivered"] > 0  # the run genuinely exercised lies
            and row["accusations"] > 0
            and row["max_containment_radius"] >= 1
        )
        rows.append(row)

    honest_rows: List[Dict[str, object]] = []
    for preset in DELIVERY_PRESETS:
        healer = DistributedForgivingGraph.from_graph(
            graph,
            fault_schedule=fault_schedule(preset, seed=seed),
            quarantine_oracle=True,
        )
        attack(healer)
        transcript = healer.network.transcript
        honest_rows.append(
            {
                "preset": preset,
                "repairs": len(healer.cost_reports),
                "accusations": len(transcript) if transcript is not None else 0,
            }
        )

    def timed_attack(accountable: bool) -> float:
        healer = DistributedForgivingGraph.from_graph(graph)
        if not accountable:
            healer.network.transcript = None  # receive()-time verification off
        start = time.perf_counter()
        attack(healer)
        return time.perf_counter() - start

    timed_attack(True)  # warm-up
    # Best of two fresh runs per side, so one scheduler hiccup cannot
    # decide the comparison (same guard as the delivery flood).
    plain_seconds = min(timed_attack(False) for _ in range(2))
    checked_seconds = min(timed_attack(True) for _ in range(2))
    overhead_speedup = (
        round(plain_seconds / checked_seconds, 2)
        if checked_seconds
        else float("inf")
    )

    return {
        "n": n,
        "presets": rows,
        "honest_controls": honest_rows,
        "plain_seconds": round(plain_seconds, 4),
        "checked_seconds": round(checked_seconds, 4),
        "overhead_speedup": overhead_speedup,
        "ok": all(row["ok"] for row in rows)
        and all(row["accusations"] == 0 for row in honest_rows)
        and overhead_speedup >= TARGET_SMOKE_SPEEDUP,
    }


def bench_network_delivery(n: int, seed: int = 20090214) -> Dict[str, object]:
    """Time the batched delivery round against the retained reference path.

    Equivalence is checked end-to-end: both paths play the identical faulty
    (chaos) distributed attack — same RNG consumption, so the per-deletion
    cost reports must agree exactly.  Timing then isolates the delivery
    machinery itself: a message flood through ``deliver_round`` under a
    drop-only schedule, the regime the batching targets (the reference path
    allocates fresh batch/survivor lists and builds the reorder machinery's
    link list every round; the batched path recycles one buffer, compacts
    fault survivors in place and skips the shuffle entirely because no
    policy can reorder).
    """
    equivalence_graph = make_graph("power_law", min(n, 150), seed=seed)

    def attack(batched: bool):
        healer = DistributedForgivingGraph.from_graph(
            equivalence_graph, fault_schedule=fault_schedule("chaos", seed=seed)
        )
        healer.network.batched_delivery = batched
        strategy = MaxDegreeDeletion()
        for _ in range(equivalence_graph.number_of_nodes() // 2):
            victim = strategy.choose_victim(healer)
            if victim is None or healer.num_alive <= 3:
                break
            healer.delete(victim)
        return healer

    if [_cost_report_key(r) for r in attack(True).cost_reports] != [
        _cost_report_key(r) for r in attack(False).cost_reports
    ]:
        raise AssertionError(f"batched and reference delivery disagree at n={n}")

    width = 64  # messages enqueued per round
    # Floor the flood length so even the smoke-scale timing denominator is
    # tens of milliseconds — large enough that one scheduler preemption on a
    # shared CI runner cannot flip the no-regression gate.
    rounds = max(n, 500)

    def flood(batched: bool):
        # One lossy link in an otherwise reliable network: the common faulty
        # regime, and the one where the reference path's per-round overhead
        # (fresh batch lists, a second per-message policy lookup inside the
        # always-invoked shuffle machinery) is pure waste — no policy can
        # reorder, so the batched path skips all of it.
        from repro.distributed.faults import FaultSchedule, LinkFaultPolicy

        schedule = FaultSchedule(
            per_link={(0, 1): LinkFaultPolicy(drop=0.3)},
            seed=seed,
            name="one-lossy-link",
        )
        network = Network(strict_links=False, fault_schedule=schedule)
        network.batched_delivery = batched
        for p in range(width):
            network.add_processor(p)
        start = time.perf_counter()
        for _ in range(rounds):
            for p in range(width):
                network.send(
                    DeletionNotice(sender=p, receiver=(p + 1) % width, deleted=-1)
                )
            network.deliver_round()
        return time.perf_counter() - start, network

    _, reference = flood(False)  # warm-up + metrics capture
    _, batched = flood(True)
    for field in ("total_messages", "total_bits", "total_dropped", "total_rounds"):
        if getattr(batched.metrics, field) != getattr(reference.metrics, field):
            raise AssertionError(f"flood metrics diverge on {field} at n={n}")
    # Best of two fresh runs per side (plus the warm-up above), so a single
    # scheduler hiccup cannot decide the comparison.
    seed_seconds = min(flood(False)[0] for _ in range(2))
    fast_seconds = min(flood(True)[0] for _ in range(2))

    return {
        "n": n,
        "flood_rounds": rounds,
        "flood_messages": batched.metrics.total_messages,
        "seed_seconds": round(seed_seconds, 4),
        "fast_seconds": round(fast_seconds, 4),
        "speedup": round(seed_seconds / fast_seconds, 2) if fast_seconds else float("inf"),
    }


def bench_message_fabric(
    flood_n: int,
    equivalence_n: int,
    shared_total: int,
    seed: int = 20090214,
) -> Dict[str, object]:
    """The zero-allocation message fabric gate (PR 10): four rows.

    *Equivalence* — the pooled + packed + tally-accounted fabric and the
    PR 9 twin (``pooled=False, packed_batching=False,
    batched_accounting=False``) replay identical delete-heavy attacks under
    every delivery preset plus the byzantine lie schedule; per-deletion cost
    reports and the healed link sets must agree exactly (recycling a message
    or folding several into one carrier may never change protocol
    behaviour, bit for bit).  *Allocations* — a lossless steady-state flood
    on the pooled path, measured by live ``Message``-object census after the
    receive-trace deques warm up: the per-round allocation delta must be
    ~zero (every instance the round needs comes back out of the pool).
    *Flood speedup* — the same flood, fabric on vs the PR 9 twin, with
    metrics totals asserted equal first.  *Shared scale* — one
    ``sweep_large_n(shared_network=True)`` run: ``shared_total`` nodes on a
    single ``Network`` churned through ``delete_batch`` waves, reporting
    end-to-end nodes/sec, consistency and connectivity.
    """
    import gc

    from repro.distributed.messages import Message

    # -- equivalence: the fabric may never change behaviour ---------------- #
    eq_graph = make_graph("power_law", equivalence_n, seed=seed)

    def replay(preset: str, fabric: bool):
        healer = DistributedForgivingGraph.from_graph(
            eq_graph, fault_schedule=fault_schedule(preset, seed=seed)
        )
        network = healer.network
        if not fabric:
            network.pooled = False
            network.packed_batching = False
            network.batched_accounting = False
        strategy = MaxDegreeDeletion()
        for _ in range(eq_graph.number_of_nodes() // 2):
            victim = strategy.choose_victim(healer)
            if victim is None or healer.num_alive <= 3:
                break
            healer.delete(victim)
        keys = [_cost_report_key(r) for r in healer.cost_reports]
        links = frozenset(frozenset(link) for link in network.iter_links())
        return keys, links

    fabric_presets = sorted(DELIVERY_PRESETS) + ["byzantine"]
    equivalent: Dict[str, bool] = {}
    for preset in fabric_presets:
        equivalent[preset] = replay(preset, True) == replay(preset, False)
    if not all(equivalent.values()):
        raise AssertionError(f"fabric and PR 9 twin diverge under {equivalent}")

    # -- flood: pooled + packed + tallied vs the PR 9 twin ----------------- #
    width = 32  # ring processors
    # Same-link messages per round: a chunked report/digest wave sends its
    # descriptors in MAX_ROOTS_PER_MESSAGE-deep streams down one scaffold
    # edge, so a 12-message burst is the stream shape the carrier folds.
    burst = 12
    rounds = max(flood_n, 500)

    def flood(fabric: bool):
        network = Network(strict_links=False)
        network.pooled = fabric
        network.packed_batching = fabric
        network.batched_accounting = fabric
        for p in range(width):
            network.add_processor(p)
        send = network.send
        new = network.new
        start = time.perf_counter()
        for _ in range(rounds):
            for p in range(width):
                receiver = (p + 1) % width
                for _ in range(burst):
                    send(new(DeletionNotice, p, receiver, -1))
            network.deliver_round()
        return time.perf_counter() - start, network

    _, reference = flood(False)  # warm-up + metrics capture
    _, fabric_net = flood(True)
    for field in ("total_messages", "total_bits", "total_dropped", "total_rounds"):
        if getattr(fabric_net.metrics, field) != getattr(reference.metrics, field):
            raise AssertionError(f"flood metrics diverge on {field} at n={flood_n}")
    reference_seconds = min(flood(False)[0] for _ in range(2))
    fabric_seconds = min(flood(True)[0] for _ in range(2))

    # -- allocations: live Message census over a pooled steady state ------- #
    def message_census() -> int:
        gc.collect()
        return sum(1 for obj in gc.get_objects() if isinstance(obj, Message))

    alloc_net = Network(strict_links=False)
    for p in range(width):
        alloc_net.add_processor(p)

    def alloc_rounds(count: int) -> None:
        for _ in range(count):
            for p in range(width):
                receiver = (p + 1) % width
                for _ in range(burst):
                    alloc_net.send(
                        alloc_net.new(
                            DeletionNotice, sender=p, receiver=receiver, deleted=-1
                        )
                    )
            alloc_net.deliver_round()

    # Warm-up must outlast the deepest receive-trace deque (eviction is what
    # feeds the pool), then the census delta over the measured window is the
    # steady-state allocation rate.
    from repro.distributed.processor import Processor

    warmup = Processor.RECEIVE_TRACE_LIMIT // burst + 8
    measure_rounds = 100
    alloc_rounds(warmup)
    before = message_census()
    alloc_rounds(measure_rounds)
    after = message_census()
    delta = after - before
    per_round = delta / measure_rounds
    if per_round > 0.5:
        raise AssertionError(
            f"pooled steady state allocates {per_round:.2f} Message objects/round"
        )

    # -- shared scale: one network, delete_batch waves --------------------- #
    start = time.perf_counter()
    shared_rows = sweep_large_n(
        "bench-shared-network",
        "erdos_renyi",
        shared_total,
        1,
        attack=AttackConfig(
            strategy="random", delete_fraction=0.005, delete_probability=1.0
        ),
        seed=seed % 1_000,
        shared_network=True,
    )
    shared_row = dict(shared_rows[0])
    shared_row["bench_seconds"] = round(time.perf_counter() - start, 4)

    return {
        "equivalence": equivalent,
        "allocations": {
            "width": width,
            "burst": burst,
            "warmup_rounds": warmup,
            "measure_rounds": measure_rounds,
            "message_objects_delta": delta,
            "per_round": round(per_round, 4),
        },
        "flood": {
            "n": flood_n,
            "rounds": rounds,
            "width": width,
            "burst": burst,
            "messages": fabric_net.metrics.total_messages,
            "reference_seconds": round(reference_seconds, 4),
            "fabric_seconds": round(fabric_seconds, 4),
            "speedup": (
                round(reference_seconds / fabric_seconds, 2)
                if fabric_seconds
                else float("inf")
            ),
        },
        "shared_scale": shared_row,
    }


#: Mixed-traffic rows the ``concurrent_repairs`` gate can add on top of its
#: always-on core checks: the chaos delivery preset and the byzantine lie
#: schedule, each over a concurrent burst ("all" in ``--concurrent-schedule``).
CONCURRENT_GATE_SCHEDULES = ["chaos", "byzantine"]


def bench_concurrent_repairs(
    n: int,
    schedules: Optional[List[str]] = None,
    seed: int = 20090214,
) -> Dict[str, object]:
    """The concurrent-repair gate (PR 8): epoch-tagged bursts in one fabric.

    Three always-on checks:

    1. **Speedup** — a burst of >= 4 deletions with pairwise-disjoint repair
       footprints, healed concurrently in one shared ``deliver_round``
       stream, must finish in under ``TARGET_CONCURRENT_ROUND_RATIO`` of the
       sequential round count (latency trends to the max of the individual
       repair latencies, not their sum).
    2. **Reference twin** — ``delete_batch(concurrency=1)`` must produce
       bit-identical per-deletion cost reports to sequential ``delete``
       calls under *every* delivery preset.
    3. **Silent fixed point** — on the lossless concurrent run, every
       epoch's background anti-entropy must record an *empty* fixed-point
       probe (``fixed_point_messages == 0``): once all ``recovery_satisfied``
       predicates hold, the piggybacked recovery provably goes quiet.

    ``schedules`` adds mixed-traffic rows (the CI ``repair-concurrency``
    leg passes ``--concurrent-schedule all``): the same burst under the
    chaos delivery preset (must converge and match the oracle), and under
    the byzantine lie schedule (accusations scored message-natively — only
    genuine liars accused, zero false accusations; the oracle diverges by
    design once liars are quarantined, so it is not consulted).
    """
    if schedules is None:
        schedules = []
    graph = make_graph("power_law", n, seed=seed)
    from repro.core.ports import NodeKey
    from repro.core.views import g_prime_view_of
    from repro.experiments.sweeps import select_disjoint_victims

    probe = DistributedForgivingGraph.from_graph(graph)
    degree = g_prime_view_of(probe).degree
    candidates = [
        v
        for v in sorted(probe.alive_nodes, key=lambda v: (-degree[v], NodeKey(v)))
        if degree[v] >= 3
    ]
    # The hubs' footprints blanket a power-law graph; skipping the largest
    # few leaves enough mutually disjoint repairs to form a real burst.
    victims = select_disjoint_victims(probe, candidates[5:], limit=8)
    if len(victims) < 4:
        victims = select_disjoint_victims(probe, candidates, limit=8)

    # -- 1. speedup: concurrent rounds vs the sequential reference --------- #
    sequential = DistributedForgivingGraph.from_graph(graph)
    seq_burst = sequential.delete_batch(victims, concurrency=1)
    concurrent = DistributedForgivingGraph.from_graph(graph)
    conc_burst = concurrent.delete_batch(victims, concurrency=None)
    concurrent.verify_consistency()
    round_ratio = conc_burst.rounds / max(seq_burst.rounds, 1)

    # -- 3. silent fixed point on the lossless concurrent run -------------- #
    silent_fixed_point = all(
        r.recovery is not None and r.recovery.fixed_point_messages == 0
        for r in conc_burst.reports
    )

    # -- 2. concurrency=1 bit-identical to sequential deletes, all presets - #
    identity_rows: List[Dict[str, object]] = []
    for preset in DELIVERY_PRESETS:
        batch_healer = DistributedForgivingGraph.from_graph(
            graph, fault_schedule=fault_schedule(preset, seed=seed)
        )
        batch_healer.delete_batch(victims, concurrency=1)
        loop_healer = DistributedForgivingGraph.from_graph(
            graph, fault_schedule=fault_schedule(preset, seed=seed)
        )
        for victim in victims:
            loop_healer.delete(victim)
        identical = [_cost_report_key(r) for r in batch_healer.cost_reports] == [
            _cost_report_key(r) for r in loop_healer.cost_reports
        ]
        identity_rows.append({"preset": preset, "bit_identical": identical})

    # -- optional mixed-traffic rows (the dedicated CI leg) ---------------- #
    mixed_rows: List[Dict[str, object]] = []
    for name in schedules:
        schedule = fault_schedule(name, seed=seed)
        healer = DistributedForgivingGraph.from_graph(graph, fault_schedule=schedule)
        burst = healer.delete_batch(victims, concurrency=None)
        row: Dict[str, object] = {
            "schedule": name,
            "waves": burst.waves,
            "rounds": burst.rounds,
            "converged": all(r.converged for r in burst.reports),
        }
        if schedule.has_byzantine:
            transcript = healer.network.transcript
            accused = set(transcript.accused) if transcript is not None else set()
            row["accused"] = len(accused)
            row["false_accusations"] = sum(
                1 for node in accused if not schedule.is_byzantine(node)
            )
            row["ok"] = bool(row["converged"] and row["false_accusations"] == 0)
        else:
            consistent = True
            try:
                healer.verify_consistency()
            except Exception:
                consistent = False
            row["consistent_with_oracle"] = consistent
            row["ok"] = bool(row["converged"] and consistent)
        mixed_rows.append(row)

    return {
        "n": n,
        "burst_k": len(victims),
        "sequential_rounds": seq_burst.rounds,
        "concurrent_rounds": conc_burst.rounds,
        "concurrent_waves": conc_burst.waves,
        "round_ratio": round(round_ratio, 3),
        "silent_fixed_point": silent_fixed_point,
        "reference_identity": identity_rows,
        "mixed_traffic": mixed_rows,
        "ok": bool(
            len(victims) >= 4
            and conc_burst.waves == 1
            and round_ratio < TARGET_CONCURRENT_ROUND_RATIO
            and silent_fixed_point
            and all(row["bit_identical"] for row in identity_rows)
            and all(row["ok"] for row in mixed_rows)
        ),
    }


def bench_large_n(
    speedup_n: int,
    memory_n: int,
    scale_total: int,
    shards: int,
    seed: int = 20090214,
) -> Dict[str, object]:
    """The dense-int hot core section: speedup, bytes/node, sharded nodes/sec.

    Equivalence first: the dense healer and the ``dense=False`` object-dict
    twin replay identical delete-heavy attacks under lossless, byzantine and
    chaos schedules, and their per-deletion cost reports must agree exactly
    (layout must never change protocol behaviour).  The speedup row then
    times the dense fast path against the pre-PR object-dict path — the
    dict layout *plus* the seed's per-deletion O(n + m) accounting, the
    same reference twin ``bench_distributed_repair`` is defined against —
    and reports ``layout_speedup`` alongside it: pure dense-vs-dict under
    identical stock accounting, so the layout's own contribution is visible
    separately from the accounting win.
    """
    # -- equivalence: layout may never change behaviour -------------------- #
    eq_graph = make_graph("power_law", min(speedup_n, 150), seed=seed)

    def replay_keys(preset: str, dense: bool):
        healer = DistributedForgivingGraph.from_graph(
            eq_graph, fault_schedule=fault_schedule(preset, seed=seed), dense=dense
        )
        strategy = MaxDegreeDeletion()
        for _ in range(eq_graph.number_of_nodes() // 2):
            victim = strategy.choose_victim(healer)
            if victim is None or healer.num_alive <= 3:
                break
            healer.delete(victim)
        return [_cost_report_key(r) for r in healer.cost_reports]

    equivalent: Dict[str, bool] = {}
    for preset in ("lossless", "byzantine", "chaos"):
        equivalent[preset] = replay_keys(preset, True) == replay_keys(preset, False)
    if not all(equivalent.values()):
        raise AssertionError(
            f"dense and object-dict healers diverge under {equivalent}"
        )

    # -- speedup: dense fast path vs the pre-PR object-dict path ----------- #
    speedup_graph = make_graph("erdos_renyi", speedup_n, seed=seed)
    deletions_target = max(speedup_n // 40, 20)

    def attack_seconds(factory, repeats: int = 1) -> float:
        # This runs late in a long-lived process; collect before timing and
        # take the best of ``repeats`` so accumulated garbage from earlier
        # sections cannot masquerade as a layout cost.
        import gc

        best = math.inf
        for _ in range(repeats):
            gc.collect()
            start = time.perf_counter()
            healer = factory()
            strategy = MaxDegreeDeletion()
            for _ in range(deletions_target):
                victim = strategy.choose_victim(healer)
                if victim is None or healer.num_alive <= 3:
                    break
                healer.delete(victim)
            best = min(best, time.perf_counter() - start)
        return best

    def seed_style():
        healer = SeedAccountingDistributedGraph.from_graph(speedup_graph, dense=False)
        healer.network.batched_delivery = False
        return healer

    fast_seconds = attack_seconds(
        lambda: DistributedForgivingGraph.from_graph(speedup_graph), repeats=2
    )
    seed_seconds = attack_seconds(seed_style)
    dict_seconds = attack_seconds(
        lambda: DistributedForgivingGraph.from_graph(speedup_graph, dense=False),
        repeats=2,
    )

    # -- memory: tracemalloc bytes/node over a fixed build+churn ----------- #
    import gc
    import tracemalloc

    memory_graph = make_graph("erdos_renyi", memory_n, seed=seed)

    def bytes_per_node(dense: bool) -> float:
        gc.collect()
        tracemalloc.start()
        healer = DistributedForgivingGraph.from_graph(memory_graph, dense=dense)
        strategy = RandomDeletion(seed=seed)
        for _ in range(memory_n // 20):
            victim = strategy.choose_victim(healer)
            if victim is None or healer.num_alive <= 3:
                break
            healer.delete(victim)
        gc.collect()
        current, _peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert healer.network.n_ever >= memory_n  # keep the healer alive until measured
        return current / memory_n

    dense_bpn = bytes_per_node(True)
    dict_bpn = bytes_per_node(False)

    # -- transcript: receive-trace retention, default vs trimmed ----------- #
    # Per-processor receive transcripts dominate retained bytes at large n;
    # ``receive_trace_limit`` (PR 8) caps them.  Both depths replay the same
    # attack, so the rows show exactly what trimming the dispute window to
    # the last few messages saves.
    from repro.distributed.processor import Processor

    def transcript_row(limit: Optional[int]) -> Dict[str, object]:
        healer = DistributedForgivingGraph.from_graph(
            memory_graph, receive_trace_limit=limit
        )
        # Hub-focused deletions concentrate repair traffic on the same
        # processors, so the deepest transcripts genuinely hit the cap.
        strategy = MaxDegreeDeletion()
        for _ in range(memory_n // 3):
            victim = strategy.choose_victim(healer)
            if victim is None or healer.num_alive <= 3:
                break
            healer.delete(victim)
        network = healer.network
        retained = sum(len(p.received) for p in network.processors.values())
        words = sum(
            message.payload_words
            for p in network.processors.values()
            for message in p.received
        )
        return {
            "trace_limit": limit if limit is not None else Processor.RECEIVE_TRACE_LIMIT,
            "retained_messages": retained,
            "retained_payload_bytes": words * network._word_bits // 8,
        }

    transcript_default = transcript_row(None)
    transcript_trimmed = transcript_row(16)

    # -- scale: sharded delete-heavy churn, end-to-end nodes/sec ----------- #
    workers = min(shards, os.cpu_count() or 1)
    start = time.perf_counter()
    shard_rows = sweep_large_n(
        "bench-large-n",
        "erdos_renyi",
        scale_total,
        shards,
        attack=AttackConfig(
            strategy="random", delete_fraction=0.01, delete_probability=0.9
        ),
        seed=seed % 1_000,
        stretch_sources=8,
        max_workers=workers if workers > 1 else None,
    )
    scale_seconds = time.perf_counter() - start

    return {
        "speedup": {
            "n": speedup_n,
            "deletions": deletions_target,
            "seed_seconds": round(seed_seconds, 4),
            "fast_seconds": round(fast_seconds, 4),
            "speedup": round(seed_seconds / fast_seconds, 2) if fast_seconds else float("inf"),
            "dict_layout_seconds": round(dict_seconds, 4),
            "layout_speedup": round(dict_seconds / fast_seconds, 2) if fast_seconds else float("inf"),
            "equivalent": equivalent,
        },
        "memory": {
            "n": memory_n,
            "dense_bytes_per_node": round(dense_bpn, 1),
            "dict_bytes_per_node": round(dict_bpn, 1),
            "ratio": round(dict_bpn / dense_bpn, 2) if dense_bpn else float("inf"),
        },
        "transcript": {
            "n": memory_n,
            "default": transcript_default,
            "trimmed": transcript_trimmed,
            "bytes_saved_ratio": round(
                1
                - transcript_trimmed["retained_payload_bytes"]
                / max(transcript_default["retained_payload_bytes"], 1),
                3,
            ),
        },
        "scale": {
            "total_nodes": scale_total,
            "shards": shards,
            "workers": workers,
            "steps": sum(int(r["deletions"]) + int(r["insertions"]) for r in shard_rows),
            "seconds": round(scale_seconds, 3),
            "nodes_per_sec": round(scale_total / scale_seconds, 1) if scale_seconds else float("inf"),
            "all_connected": all(bool(r["connected"]) for r in shard_rows),
        },
    }


def bench_service_churn(n: int, ops: int, seed: int = 11) -> Dict[str, object]:
    """The long-lived healer service end to end: churn, crash, certified restore.

    Runs a :class:`~repro.service.HealerDaemon` on a throwaway sqlite store,
    drives a seeded two-client churn workload through the journalled
    submit/pump path, and reads ops/sec and repair-latency percentiles from
    the *live* ``GET /status`` endpoint — the same probe a production
    monitor would hit.  The run is then abandoned with an unpumped journal
    tail (the in-process analogue of ``kill -9`` mid-churn) and
    :meth:`~repro.service.HealerDaemon.restore` must replay the last
    checkpoint plus the journal and certify the recovered fabric:
    reconverged, accountability audit clean, oracle-verified, and — since
    the links are lossless — every fixed-point probe silent.
    """
    import random
    import shutil
    import tempfile
    import urllib.request

    from repro.service import HealerDaemon, ServiceConfig

    tmp = Path(tempfile.mkdtemp(prefix="bench_service_"))
    try:
        config = ServiceConfig(
            graph=GraphSpec("power_law", n),
            seed=seed,
            checkpoint_every=max(ops // 4, 8),
            batch_window=4,
        )
        daemon = HealerDaemon.create(tmp / "run.db", config)
        rng = random.Random(seed)
        clients = [daemon.client("bench-a"), daemon.client("bench-b")]
        next_id = 10_000
        start = time.perf_counter()
        for step in range(ops):
            client = clients[step % len(clients)]
            alive = sorted(daemon._projected_alive, key=repr)
            if rng.random() < 0.3 or len(alive) <= 4:
                client.insert(next_id, rng.sample(alive, min(3, len(alive))))
                next_id += 1
            else:
                client.delete(rng.choice(alive))
            # Pump in batches, but never the last few submissions: the
            # abandoned tail is what makes the restore below a real crash.
            if step % 8 == 7 and step < ops - 4:
                daemon.pump()
        wall_seconds = time.perf_counter() - start
        server = daemon.serve_status(port=0)
        with urllib.request.urlopen(server.url, timeout=10) as response:
            live = json.loads(response.read())
        backlog = int(live["backlog"])
        daemon.close()  # crash: the journal tail is durable but unapplied
        del daemon

        restored, restart = HealerDaemon.restore(tmp / "run.db")
        final = restored.status()
        restored.close()
        silent_fixed_point = final["recovery"]["fixed_point_noisy"] == 0
        certified = bool(restart.converged and restart.audit_clean and restart.verified)
        return {
            "n": n,
            "ops": ops,
            "wall_seconds": round(wall_seconds, 4),
            "ops_per_sec": live["ops_per_sec"],
            "p50_ms": live["latency_ms"]["p50"],
            "p99_ms": live["latency_ms"]["p99"],
            "mean_wave_occupancy": live["waves"]["mean_occupancy"],
            "checkpoints_written": live["checkpoints_written"],
            "store_bytes": live["store_bytes"],
            "crash_backlog_ops": backlog,
            "restore": {
                "checkpoint_seq": restart.checkpoint_seq,
                "prefix_ops": restart.prefix_ops,
                "suffix_ops": restart.suffix_ops,
                "converged": restart.converged,
                "audit_clean": restart.audit_clean,
                "verified": restart.verified,
            },
            "silent_fixed_point": silent_fixed_point,
            "ok": certified and silent_fixed_point and backlog > 0,
        }
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


# --------------------------------------------------------------------------- #
# report
# --------------------------------------------------------------------------- #
def build_report(
    quick: bool = False,
    smoke: bool = False,
    fault_presets: Optional[List[str]] = None,
    recovery_presets: Optional[List[str]] = None,
    byzantine_presets: Optional[List[str]] = None,
    concurrent_schedules: Optional[List[str]] = None,
    large_n_nodes: Optional[int] = None,
    large_n_shards: Optional[int] = None,
) -> Dict[str, object]:
    if fault_presets is None:
        fault_presets = ["drop", "reorder"]
    if recovery_presets is None:
        recovery_presets = list(RECOVERY_GATE_PRESETS)
    if byzantine_presets is None:
        byzantine_presets = list(BYZANTINE_GATE_PRESETS)
    if concurrent_schedules is None:
        concurrent_schedules = []
    if smoke:
        sizes = [300]
        sweep_sizes = [120]
        distributed_sizes = [150]
        message_native_sizes = [80]
        recovery_sizes = [80]
        byzantine_sizes = [80]
        delivery_sizes = [150]
        concurrent_sizes = [80]
        large_n = {"speedup_n": 200, "memory_n": 150, "scale_total": 600, "shards": 3}
        fabric = {"flood_n": 150, "equivalence_n": 60, "shared_total": 600}
        service = {"n": 40, "ops": 48}
    elif quick:
        sizes = [100, 1000]
        sweep_sizes = [400]
        distributed_sizes = [100, 1000]
        message_native_sizes = [100]
        recovery_sizes = [100]
        byzantine_sizes = [100]
        delivery_sizes = [100, 1000]
        concurrent_sizes = [120]
        large_n = {"speedup_n": 1000, "memory_n": 500, "scale_total": 20_000, "shards": 2}
        fabric = {"flood_n": 1000, "equivalence_n": 100, "shared_total": 5_000}
        service = {"n": 48, "ops": 96}
    else:
        sizes = [100, 1000, 5000]
        sweep_sizes = [400, 1000]
        distributed_sizes = [100, 1000]
        message_native_sizes = [100, 400]
        recovery_sizes = [100, 400]
        byzantine_sizes = [100, 400]
        delivery_sizes = [100, 1000]
        concurrent_sizes = [120, 400]
        large_n = {
            "speedup_n": 5000,
            "memory_n": 2000,
            "scale_total": 100_000,
            "shards": 4,
        }
        fabric = {"flood_n": 5000, "equivalence_n": 150, "shared_total": 100_000}
        service = {"n": 64, "ops": 160}
    if large_n_nodes is not None:
        large_n["scale_total"] = large_n_nodes
    if large_n_shards is not None:
        large_n["shards"] = large_n_shards

    stretch_rows: List[Dict[str, object]] = []
    churn_rows: List[Dict[str, object]] = []
    adversary_rows: List[Dict[str, object]] = []
    parallel_rows: List[Dict[str, object]] = []
    distributed_rows: List[Dict[str, object]] = []
    for n in sizes:
        max_sources = None if n <= 1000 else 128
        print(f"[stretch] n={n} sources={max_sources or 'all'} ...", flush=True)
        row = bench_stretch(n, max_sources)
        print(f"  seed={row['seed_seconds']}s fast={row['fast_seconds']}s -> {row['speedup']}x")
        stretch_rows.append(row)
    for n in sizes:
        print(f"[churn] n={n} ...", flush=True)
        row = bench_churn(n)
        print(f"  seed={row['seed_seconds']}s fast={row['fast_seconds']}s -> {row['speedup']}x")
        churn_rows.append(row)
    for n in sizes:
        print(f"[adversary_step] n={n} ...", flush=True)
        row = bench_adversary_step(n)
        print(
            f"  choose {row['choose_seed_seconds']}s -> {row['choose_fast_seconds']}s "
            f"({row['choose_speedup']}x); end-to-end {row['seed_seconds']}s -> "
            f"{row['fast_seconds']}s ({row['speedup']}x)"
        )
        adversary_rows.append(row)
    for n in sweep_sizes:
        print(f"[parallel_sweep] n={n} ...", flush=True)
        row = bench_parallel_sweep(n)
        print(
            f"  serial={row['serial_seconds']}s parallel={row['parallel_seconds']}s "
            f"(workers={row['workers']}) -> {row['speedup']}x"
        )
        parallel_rows.append(row)
    for n in distributed_sizes:
        print(f"[distributed_repair] n={n} ...", flush=True)
        row = bench_distributed_repair(n)
        print(
            f"  per-deletion {row['seed_ms_per_deletion']}ms -> "
            f"{row['fast_ms_per_deletion']}ms over {row['deletions']} repairs "
            f"-> {row['speedup']}x"
        )
        distributed_rows.append(row)
    message_native_rows: List[Dict[str, object]] = []
    for n in message_native_sizes:
        print(f"[message_native_merge] n={n} faults={','.join(fault_presets)} ...", flush=True)
        row = bench_message_native(n, fault_presets)
        print(
            f"  {row['deletions']} oracle-free repairs, budgets "
            f"{'ok' if row['within_lemma4_budgets'] else 'VIOLATED'}; "
            + "; ".join(
                f"{f['preset']}: {f['retransmissions']} retrans, "
                f"converged={f['all_converged']}"
                for f in row["fault_schedules"]
            )
        )
        message_native_rows.append(row)
    recovery_rows: List[Dict[str, object]] = []
    for n in recovery_sizes:
        print(
            f"[message_native_recovery] n={n} presets={','.join(recovery_presets)} ...",
            flush=True,
        )
        row = bench_message_native_recovery(n, presets=recovery_presets)
        print(
            f"  {'ok' if row['ok'] else 'FAILED'}; "
            + "; ".join(
                f"{p['preset']}: {p['sweeps']} sweeps, {p['digest_messages']} digests, "
                f"{p['retransmissions']} retrans"
                for p in row["presets"]
            )
        )
        recovery_rows.append(row)
    byzantine_rows: List[Dict[str, object]] = []
    for n in byzantine_sizes if byzantine_presets else []:
        print(
            f"[byzantine_containment] n={n} presets={','.join(byzantine_presets)} ...",
            flush=True,
        )
        row = bench_byzantine_containment(n, presets=byzantine_presets)
        print(
            f"  {'ok' if row['ok'] else 'FAILED'}; overhead "
            f"{row['checked_seconds']}s vs {row['plain_seconds']}s "
            f"({row['overhead_speedup']}x); "
            + "; ".join(
                f"{p['preset']}: {p['lies_delivered']} lies delivered, "
                f"{p['accused']} accused, radius {p['max_containment_radius']}"
                for p in row["presets"]
            )
        )
        byzantine_rows.append(row)
    delivery_rows: List[Dict[str, object]] = []
    for n in delivery_sizes:
        print(f"[network_delivery] n={n} ...", flush=True)
        row = bench_network_delivery(n)
        print(
            f"  reference={row['seed_seconds']}s batched={row['fast_seconds']}s "
            f"-> {row['speedup']}x"
        )
        delivery_rows.append(row)
    concurrent_rows: List[Dict[str, object]] = []
    for n in concurrent_sizes:
        print(
            f"[concurrent_repairs] n={n} "
            f"schedules={','.join(concurrent_schedules) or 'none'} ...",
            flush=True,
        )
        row = bench_concurrent_repairs(n, schedules=concurrent_schedules)
        print(
            f"  {'ok' if row['ok'] else 'FAILED'}; k={row['burst_k']} burst "
            f"{row['sequential_rounds']} -> {row['concurrent_rounds']} rounds "
            f"(ratio {row['round_ratio']}), fixed point "
            f"{'silent' if row['silent_fixed_point'] else 'NOISY'}"
        )
        concurrent_rows.append(row)
    print(
        f"[large_n] speedup_n={large_n['speedup_n']} scale={large_n['scale_total']}"
        f"x{large_n['shards']} shards ...",
        flush=True,
    )
    large_n_row = bench_large_n(**large_n)
    print(
        f"  speedup {large_n_row['speedup']['speedup']}x "
        f"(layout alone {large_n_row['speedup']['layout_speedup']}x); "
        f"{large_n_row['memory']['dense_bytes_per_node']} bytes/node dense vs "
        f"{large_n_row['memory']['dict_bytes_per_node']} dict; "
        f"{large_n_row['scale']['nodes_per_sec']} nodes/sec over "
        f"{large_n_row['scale']['shards']} shards"
    )
    print(
        f"[message_fabric] flood_n={fabric['flood_n']} "
        f"shared={fabric['shared_total']} ...",
        flush=True,
    )
    fabric_row = bench_message_fabric(**fabric)
    print(
        f"  flood {fabric_row['flood']['reference_seconds']}s -> "
        f"{fabric_row['flood']['fabric_seconds']}s "
        f"({fabric_row['flood']['speedup']}x); "
        f"{fabric_row['allocations']['per_round']} allocs/round; "
        f"shared {fabric_row['shared_scale']['nodes_per_sec']} nodes/sec "
        f"over {fabric_row['shared_scale']['deletions']} deletions "
        f"(connected={fabric_row['shared_scale']['connected']})"
    )
    print(f"[service_churn] n={service['n']} ops={service['ops']} ...", flush=True)
    service_row = bench_service_churn(**service)
    print(
        f"  {'ok' if service_row['ok'] else 'FAILED'}; "
        f"{service_row['ops_per_sec']} ops/sec, "
        f"p50={service_row['p50_ms']}ms p99={service_row['p99_ms']}ms; "
        f"crash with {service_row['crash_backlog_ops']} journalled backlog ops -> "
        f"restore converged={service_row['restore']['converged']} "
        f"audit_clean={service_row['restore']['audit_clean']} "
        f"verified={service_row['restore']['verified']}, fixed point "
        f"{'silent' if service_row['silent_fixed_point'] else 'NOISY'}"
    )

    if smoke:
        # CI guard: every fast path at least breaks even on a tiny workload.
        targets_met = {
            "stretch_smoke": all(r["speedup"] >= TARGET_SMOKE_SPEEDUP for r in stretch_rows),
            "churn_smoke": all(r["speedup"] >= TARGET_SMOKE_SPEEDUP for r in churn_rows),
            "adversary_smoke": all(
                r["choose_speedup"] >= TARGET_SMOKE_SPEEDUP for r in adversary_rows
            ),
            "distributed_smoke": all(
                r["speedup"] >= TARGET_SMOKE_SPEEDUP and r["within_lemma4_budgets"]
                for r in distributed_rows
            ),
            "message_native_smoke": all(r["ok"] for r in message_native_rows),
            "message_native_recovery": all(r["ok"] for r in recovery_rows),
            "byzantine_containment": all(r["ok"] for r in byzantine_rows),
            "network_delivery_smoke": all(
                r["speedup"] >= TARGET_SMOKE_SPEEDUP for r in delivery_rows
            ),
            "concurrent_repairs": all(r["ok"] for r in concurrent_rows),
            "large_n_smoke": (
                large_n_row["speedup"]["speedup"] >= TARGET_SMOKE_SPEEDUP
                and all(large_n_row["speedup"]["equivalent"].values())
                and large_n_row["scale"]["all_connected"]
            ),
            "message_fabric_smoke": (
                fabric_row["flood"]["speedup"] >= TARGET_SMOKE_SPEEDUP
                and all(fabric_row["equivalence"].values())
                and fabric_row["allocations"]["per_round"]
                <= TARGET_FABRIC_ALLOCS_PER_ROUND
                and fabric_row["shared_scale"]["connected"]
            ),
            "service_churn": service_row["ok"],
        }
        targets = {
            "smoke_min_speedup": TARGET_SMOKE_SPEEDUP,
            "fabric_max_allocs_per_round": TARGET_FABRIC_ALLOCS_PER_ROUND,
        }
    else:
        stretch_1k = next(r for r in stretch_rows if r["n"] == 1000)
        # The at-scale targets apply where the optimized cost actually
        # dominates (n >= 1000): at n=100 both sides are bound by the shared
        # repair engine, not by measurement (small rows are still reported).
        churn_at_scale = [r for r in churn_rows if r["n"] >= 1000]
        adversary_at_scale = [r for r in adversary_rows if r["n"] >= 1000]
        # Process parallelism cannot show a wall-clock win on a single-core
        # box; the target applies only to rows that actually had >1 worker.
        parallel_multicore = [r for r in parallel_rows if r["workers"] > 1]
        distributed_at_scale = [r for r in distributed_rows if r["n"] >= 1000]
        targets_met = {
            "stretch_n1000": stretch_1k["speedup"] >= TARGET_STRETCH_SPEEDUP_N1000,
            "churn_n_ge_1000": all(r["speedup"] >= TARGET_CHURN_SPEEDUP for r in churn_at_scale),
            "adversary_n_ge_1000": all(
                r["choose_speedup"] >= TARGET_ADVERSARY_SPEEDUP for r in adversary_at_scale
            ),
            "parallel_sweep": all(
                r["speedup"] >= TARGET_PARALLEL_SPEEDUP for r in parallel_multicore
            ),
            "distributed_n_ge_1000": all(
                r["speedup"] >= TARGET_DISTRIBUTED_SPEEDUP_N1000 and r["within_lemma4_budgets"]
                for r in distributed_at_scale
            ),
            "message_native_merge": all(r["ok"] for r in message_native_rows),
            "message_native_recovery": all(r["ok"] for r in recovery_rows),
            "byzantine_containment": all(r["ok"] for r in byzantine_rows),
            "network_delivery": all(
                r["speedup"] >= TARGET_SMOKE_SPEEDUP for r in delivery_rows
            ),
            "concurrent_repairs": all(r["ok"] for r in concurrent_rows),
            "large_n_speedup": (
                large_n_row["speedup"]["speedup"] >= TARGET_LARGE_N_SPEEDUP
            ),
            "large_n_equivalence": (
                all(large_n_row["speedup"]["equivalent"].values())
                and large_n_row["scale"]["all_connected"]
            ),
            "message_fabric_speedup": (
                fabric_row["flood"]["speedup"] >= TARGET_FABRIC_SPEEDUP
            ),
            "message_fabric_equivalence": all(fabric_row["equivalence"].values()),
            "message_fabric_allocations": (
                fabric_row["allocations"]["per_round"]
                <= TARGET_FABRIC_ALLOCS_PER_ROUND
            ),
            "message_fabric_shared_scale": bool(
                fabric_row["shared_scale"]["connected"]
                and fabric_row["shared_scale"]["deletions"]
                >= fabric_row["shared_scale"]["deletion_target"]
            ),
            "service_churn": service_row["ok"],
        }
        targets = {
            "stretch_n1000_min_speedup": TARGET_STRETCH_SPEEDUP_N1000,
            "churn_min_speedup": TARGET_CHURN_SPEEDUP,
            "adversary_min_choose_speedup": TARGET_ADVERSARY_SPEEDUP,
            "parallel_min_speedup": TARGET_PARALLEL_SPEEDUP,
            "distributed_n1000_min_speedup": TARGET_DISTRIBUTED_SPEEDUP_N1000,
            # No-regression floor: the batching must never lose ground; the
            # merge/recovery gates are boolean correctness gates (no
            # threshold to record).
            "network_delivery_min_speedup": TARGET_SMOKE_SPEEDUP,
            "concurrent_max_round_ratio": TARGET_CONCURRENT_ROUND_RATIO,
            "large_n_min_speedup": TARGET_LARGE_N_SPEEDUP,
            "fabric_min_speedup": TARGET_FABRIC_SPEEDUP,
            "fabric_max_allocs_per_round": TARGET_FABRIC_ALLOCS_PER_ROUND,
        }

    return {
        "schema": "bench_perf/v10",
        "generated_by": "scripts/perf_report.py" + (" --smoke" if smoke else ""),
        "scipy_backend": HAVE_SCIPY,
        "cpus": os.cpu_count(),
        "stretch_report": stretch_rows,
        "churn_sweep": churn_rows,
        "adversary_step": adversary_rows,
        "parallel_sweep": parallel_rows,
        "distributed_repair": distributed_rows,
        "message_native_merge": message_native_rows,
        "message_native_recovery": recovery_rows,
        "byzantine_containment": byzantine_rows,
        "network_delivery": delivery_rows,
        "concurrent_repairs": concurrent_rows,
        "large_n": large_n_row,
        "message_fabric": fabric_row,
        "service_churn": service_row,
        "targets": targets,
        "targets_met": targets_met,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="skip the n=5000 workloads")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: tiny n, asserts every fast path keeps speedup >= 1x, "
        "does not overwrite BENCH_perf.json unless --output says so",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="where to write the JSON report "
        "(default: BENCH_perf.json at repo root; /tmp for --smoke)",
    )
    parser.add_argument(
        "--fault-schedule",
        default="drop,reorder",
        help="comma-separated delivery presets the message_native_merge gate "
        f"replays ('all' = every one; available: {', '.join(sorted(DELIVERY_PRESETS))}); "
        "the CI matrix runs one preset per job",
    )
    parser.add_argument(
        "--recovery-schedule",
        default="all",
        help="comma-separated presets the message_native_recovery gate "
        "replays ('all' = lossless + every delivery preset; the generic CI "
        "smoke legs pass a cheap subset, the dedicated recovery leg runs "
        "the full matrix)",
    )
    parser.add_argument(
        "--byzantine-schedule",
        default="all",
        help="comma-separated presets the byzantine_containment gate "
        f"replays ('all' = {', '.join(BYZANTINE_GATE_PRESETS)}; 'none' "
        "skips the gate — the generic CI smoke legs skip it, the "
        "dedicated byzantine leg runs the full matrix)",
    )
    parser.add_argument(
        "--concurrent-schedule",
        default="none",
        help="comma-separated mixed-traffic rows the concurrent_repairs gate "
        f"adds ('all' = {', '.join(CONCURRENT_GATE_SCHEDULES)}; 'none' runs "
        "only the core speedup/bit-identity/silent-fixed-point checks — the "
        "generic CI smoke legs; the dedicated repair-concurrency leg passes "
        "'all')",
    )
    parser.add_argument(
        "--large-n-nodes",
        type=int,
        default=None,
        help="override the large_n scale row's total node count "
        "(the CI large-n leg raises the smoke default to exercise the "
        "sharded path on a non-trivial workload)",
    )
    parser.add_argument(
        "--large-n-shards",
        type=int,
        default=None,
        help="override the large_n scale row's shard count",
    )
    args = parser.parse_args(argv)

    def parse_presets(
        value: str, flag: str, everything: List[str], registry: Dict[str, object]
    ) -> List[str]:
        """Split a comma list of preset names, validating against a registry.

        Delegates to :meth:`FaultSpec.parse_list` — the one grammar shared
        by these flags, ``AttackConfig.fault_preset`` and ``ServiceConfig``
        — and turns its ``ValueError`` into an argparse error.
        """
        try:
            return FaultSpec.parse_list(
                value, flag=flag, registry=registry, everything=everything
            )
        except ValueError as exc:
            parser.error(str(exc))

    # The merge and recovery gates score against the oracle, so they accept
    # delivery presets only (quarantining a liar leaves a deliberate,
    # permanent divergence — the byzantine gate owns those presets).  The
    # merge gate always runs lossless unconditionally, so its 'all' is the
    # faulty presets only; the recovery gate's 'all' includes lossless (its
    # lossless row isolates the pure detection cost).
    fault_presets = parse_presets(
        args.fault_schedule,
        "--fault-schedule",
        [p for p in DELIVERY_PRESETS if p != "lossless"],
        DELIVERY_PRESETS,
    )
    recovery_presets = parse_presets(
        args.recovery_schedule,
        "--recovery-schedule",
        RECOVERY_GATE_PRESETS,
        DELIVERY_PRESETS,
    )
    byzantine_presets = parse_presets(
        args.byzantine_schedule,
        "--byzantine-schedule",
        BYZANTINE_GATE_PRESETS,
        BYZANTINE_PRESETS,
    )
    concurrent_schedules = parse_presets(
        args.concurrent_schedule,
        "--concurrent-schedule",
        CONCURRENT_GATE_SCHEDULES,
        {name: name for name in CONCURRENT_GATE_SCHEDULES},
    )

    output = args.output
    if output is None:
        output = (
            Path("/tmp/bench_smoke.json") if args.smoke else REPO_ROOT / "BENCH_perf.json"
        )

    report = build_report(
        quick=args.quick,
        smoke=args.smoke,
        fault_presets=fault_presets,
        recovery_presets=recovery_presets,
        byzantine_presets=byzantine_presets,
        concurrent_schedules=concurrent_schedules,
        large_n_nodes=args.large_n_nodes,
        large_n_shards=args.large_n_shards,
    )
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {output}")
    if not all(report["targets_met"].values()):
        print("WARNING: speedup targets not met:", report["targets_met"])
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
