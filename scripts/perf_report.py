#!/usr/bin/env python
"""Regenerate BENCH_perf.json: seed-vs-fastpath timings of the two hot paths.

The seed implementation paid a per-event measurement tax: every deletion
rebuilt the healed graph ``G`` from scratch, and every stretch measurement
copied both graphs and ran a dict-based networkx BFS per source.  This script
times that seed behaviour (faithfully emulated via the engine's retained
``_rebuild_actual()`` and the retained reference measurement code) against
the incremental + CSR fast paths on the same workloads, and writes the
results to ``BENCH_perf.json`` at the repo root so each PR can track the
trajectory.

Standalone by design — no pytest or pytest-benchmark needed::

    PYTHONPATH=src python scripts/perf_report.py            # full report
    PYTHONPATH=src python scripts/perf_report.py --quick    # skip n=5000
    PYTHONPATH=src python scripts/perf_report.py --output /tmp/bench.json

Workloads
---------
``stretch_report``
    A seeded Erdős–Rényi graph with n/4 random deletions applied (so real RT
    structure exists), then one full stretch measurement.  Seed side:
    :func:`repro.analysis.stretch_report_reference`; fast side:
    :func:`repro.analysis.stretch_report`.

``churn_sweep``
    A delete-heavy (p_delete = 0.8) churn schedule with periodic Theorem 1
    measurements — the end-to-end shape of every experiment sweep.  Seed
    side: an engine subclass that rebuilds ``G`` from scratch on every
    deletion plus copy-based reference measurement; fast side: the stock
    engine plus :func:`repro.analysis.guarantee_report` with a reused
    :class:`repro.analysis.MeasurementSession`.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

import networkx as nx

from repro import ForgivingGraph
from repro.adversary.schedule import churn_schedule
from repro.adversary.strategies import RandomDeletion
from repro.analysis import (
    MeasurementSession,
    guarantee_report,
    stretch_report,
    stretch_report_reference,
)
from repro.analysis.fastpaths import HAVE_SCIPY
from repro.generators import make_graph

#: Acceptance targets for this PR (checked by the report itself).
TARGET_STRETCH_SPEEDUP_N1000 = 10.0
TARGET_CHURN_SPEEDUP = 5.0


# --------------------------------------------------------------------------- #
# seed-behaviour emulation
# --------------------------------------------------------------------------- #
class SeedStyleForgivingGraph(ForgivingGraph):
    """The stock engine plus the seed's per-deletion full rebuild of ``G``.

    The seed's ``delete()`` ran ``_compute_actual()`` after invalidating the
    cache, i.e. one from-scratch rebuild per deletion (more under churn, when
    interleaved inserts also invalidated the cache — emulating only one keeps
    the comparison conservative).  Healing semantics are untouched, so both
    sides of the comparison play identical attacks.
    """

    def delete(self, node):
        report = super().delete(node)
        self._rebuild_actual()
        return report


def _reference_connectivity(healer) -> bool:
    """The seed's connectivity check: graph copies + per-component dict BFS."""
    actual = healer.actual_graph()
    g_prime = healer.g_prime_view()
    alive = healer.alive_nodes
    for component in nx.connected_components(g_prime):
        alive_in_component = [node for node in component if node in alive]
        if len(alive_in_component) <= 1:
            continue
        root = alive_in_component[0]
        if root not in actual:
            return False
        reachable = nx.node_connected_component(actual, root)
        if any(other not in reachable for other in alive_in_component[1:]):
            return False
    return True


def _reference_degree_factor(healer) -> float:
    """The seed's degree metric: copies of both graphs, per-node ratios."""
    actual = healer.actual_graph()
    g_prime = healer.g_prime_view()
    worst = 0.0
    for node in healer.alive_nodes:
        d_prime = g_prime.degree[node] if node in g_prime else 0
        if d_prime == 0:
            continue
        d_actual = actual.degree[node] if node in actual else 0
        worst = max(worst, d_actual / d_prime)
    return worst


# --------------------------------------------------------------------------- #
# workloads
# --------------------------------------------------------------------------- #
def _churned_engine(n: int, seed: int, engine_cls=ForgivingGraph) -> ForgivingGraph:
    """An engine over a seeded ER graph with n/4 random deletions applied."""
    fg = engine_cls.from_graph(make_graph("erdos_renyi", n, seed=seed))
    strategy = RandomDeletion(seed=seed)
    for _ in range(n // 4):
        victim = strategy.choose_victim(fg)
        if victim is None or fg.num_alive <= 2:
            break
        fg.delete(victim)
    return fg


def _time(func: Callable[[], object], repeats: int = 1) -> float:
    """Best-of-``repeats`` wall-clock seconds for ``func()``."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def bench_stretch(n: int, max_sources: Optional[int], seed: int = 20090214) -> Dict[str, object]:
    """Time seed vs fast ``stretch_report`` on one churned engine state."""
    fg = _churned_engine(n, seed)
    kwargs = {"max_sources": max_sources, "seed": 0}
    fast = stretch_report(fg, **kwargs)
    reference = stretch_report_reference(fg, **kwargs)
    if (
        fast.max_stretch != reference.max_stretch
        or fast.pairs_measured != reference.pairs_measured
        or fast.disconnected_pairs != reference.disconnected_pairs
    ):
        raise AssertionError(
            f"fast and reference stretch disagree at n={n}: {fast} vs {reference}"
        )
    seed_seconds = _time(lambda: stretch_report_reference(fg, **kwargs))
    fast_seconds = _time(lambda: stretch_report(fg, **kwargs), repeats=3)
    return {
        "n": n,
        "alive": fg.num_alive,
        "sources": max_sources if max_sources is not None else fg.num_alive,
        "max_stretch": fast.max_stretch,
        "seed_seconds": round(seed_seconds, 4),
        "fast_seconds": round(fast_seconds, 4),
        "speedup": round(seed_seconds / fast_seconds, 1) if fast_seconds else float("inf"),
    }


def _run_churn(
    engine_cls,
    measure: Callable[[object], None],
    n: int,
    steps: int,
    seed: int,
) -> int:
    """Play one delete-heavy churn schedule with periodic measurement."""
    fg = engine_cls.from_graph(make_graph("erdos_renyi", n, seed=seed))
    schedule = churn_schedule(steps=steps, delete_probability=0.8, seed=seed)
    interval = max(steps // 8, 1)
    counters = {"events": 0, "measurements": 0}

    def on_event(_event, healer) -> None:
        counters["events"] += 1
        if counters["events"] % interval == 0:
            measure(healer)
            counters["measurements"] += 1

    schedule.run(fg, on_event=on_event)
    measure(fg)
    return counters["measurements"] + 1


def bench_churn(n: int, stretch_sources: int = 32, seed: int = 20090214) -> Dict[str, object]:
    """Time the end-to-end churn sweep, seed behaviour vs fast paths."""
    steps = min(n, 1000)

    def measure_seed(healer) -> None:
        stretch_report_reference(healer, max_sources=stretch_sources, seed=seed)
        _reference_degree_factor(healer)
        _reference_connectivity(healer)

    session = MeasurementSession()

    def measure_fast(healer) -> None:
        guarantee_report(
            healer, max_sources=stretch_sources, seed=seed, session=session
        )

    start = time.perf_counter()
    _run_churn(SeedStyleForgivingGraph, measure_seed, n, steps, seed)
    seed_seconds = time.perf_counter() - start

    start = time.perf_counter()
    measurements = _run_churn(ForgivingGraph, measure_fast, n, steps, seed)
    fast_seconds = time.perf_counter() - start

    return {
        "n": n,
        "steps": steps,
        "delete_probability": 0.8,
        "stretch_sources": stretch_sources,
        "measurements": measurements,
        "seed_seconds": round(seed_seconds, 4),
        "fast_seconds": round(fast_seconds, 4),
        "speedup": round(seed_seconds / fast_seconds, 1) if fast_seconds else float("inf"),
    }


# --------------------------------------------------------------------------- #
# report
# --------------------------------------------------------------------------- #
def build_report(quick: bool = False) -> Dict[str, object]:
    sizes = [100, 1000] if quick else [100, 1000, 5000]
    stretch_rows: List[Dict[str, object]] = []
    churn_rows: List[Dict[str, object]] = []
    for n in sizes:
        max_sources = None if n <= 1000 else 128
        print(f"[stretch] n={n} sources={max_sources or 'all'} ...", flush=True)
        row = bench_stretch(n, max_sources)
        print(f"  seed={row['seed_seconds']}s fast={row['fast_seconds']}s -> {row['speedup']}x")
        stretch_rows.append(row)
    for n in sizes:
        print(f"[churn] n={n} ...", flush=True)
        row = bench_churn(n)
        print(f"  seed={row['seed_seconds']}s fast={row['fast_seconds']}s -> {row['speedup']}x")
        churn_rows.append(row)

    stretch_1k = next(r for r in stretch_rows if r["n"] == 1000)
    # The churn target applies at the sizes the measurement tax actually
    # dominates (n >= 1000): at n=100 both sides are bound by the shared
    # repair engine, not by measurement (the small row is still reported).
    churn_at_scale = [r for r in churn_rows if r["n"] >= 1000]
    targets_met = {
        "stretch_n1000": stretch_1k["speedup"] >= TARGET_STRETCH_SPEEDUP_N1000,
        "churn_n_ge_1000": all(r["speedup"] >= TARGET_CHURN_SPEEDUP for r in churn_at_scale),
    }
    return {
        "schema": "bench_perf/v1",
        "generated_by": "scripts/perf_report.py",
        "scipy_backend": HAVE_SCIPY,
        "stretch_report": stretch_rows,
        "churn_sweep": churn_rows,
        "targets": {
            "stretch_n1000_min_speedup": TARGET_STRETCH_SPEEDUP_N1000,
            "churn_min_speedup": TARGET_CHURN_SPEEDUP,
        },
        "targets_met": targets_met,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="skip the n=5000 workloads")
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_perf.json",
        help="where to write the JSON report (default: BENCH_perf.json at repo root)",
    )
    args = parser.parse_args(argv)

    report = build_report(quick=args.quick)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    if not all(report["targets_met"].values()):
        print("WARNING: speedup targets not met:", report["targets_met"])
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
