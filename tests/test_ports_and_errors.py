"""Unit tests for port identifiers and the exception hierarchy."""

import pytest

from repro.core.errors import (
    ConfigurationError,
    DeletedNodeError,
    DuplicateNodeError,
    ForgivingGraphError,
    HaftStructureError,
    InvalidEdgeError,
    InvariantViolationError,
    ProtocolError,
    UnknownNodeError,
)
from repro.core.ports import NodeKey, Port, edge_key, sorted_nodes


class TestNodeKey:
    def test_natural_order_within_type(self):
        assert sorted_nodes([10, 2, 1]) == [1, 2, 10]  # not lexicographic "1","10","2"
        assert sorted_nodes(["b", "a10", "a2"]) == ["a10", "a2", "b"]

    def test_types_group_deterministically(self):
        assert sorted_nodes([1, "a", 2, "b"]) == [1, 2, "a", "b"]

    def test_total_order_for_partially_ordered_ids(self):
        """Regression: sets order by subset (a partial order); NodeKey must not
        mix that with the repr fallback, or sorting becomes input-dependent."""
        from itertools import permutations

        ids = [frozenset({9}), frozenset({9, 2}), frozenset({94})]
        orders = {tuple(sorted_nodes(p)) for p in permutations(ids)}
        assert len(orders) == 1

    def test_key_is_irreflexive_and_consistent(self):
        assert not NodeKey(3) < NodeKey(3)
        assert NodeKey(2) < NodeKey(10)
        assert not NodeKey(10) < NodeKey(2)
        assert NodeKey("x") == NodeKey("x")
        assert NodeKey(1) != NodeKey(True)  # bool and int group separately


class TestPort:
    def test_fields(self):
        port = Port("v", "x")
        assert port.processor == "v"
        assert port.neighbor == "x"

    def test_frozen(self):
        port = Port(1, 2)
        with pytest.raises(AttributeError):
            port.processor = 3

    def test_equality_and_hash(self):
        assert Port(1, 2) == Port(1, 2)
        assert Port(1, 2) != Port(2, 1)
        assert len({Port(1, 2), Port(1, 2), Port(2, 1)}) == 2

    def test_reversed(self):
        assert Port("a", "b").reversed() == Port("b", "a")
        assert Port("a", "b").reversed().reversed() == Port("a", "b")

    def test_ordering(self):
        assert sorted([Port(2, 1), Port(1, 2)]) == [Port(1, 2), Port(2, 1)]

    def test_usable_as_dict_key(self):
        table = {Port(0, 1): "x"}
        assert table[Port(0, 1)] == "x"


class TestEdgeKey:
    def test_symmetric(self):
        assert edge_key(1, 2) == edge_key(2, 1)

    def test_string_nodes(self):
        assert edge_key("b", "a") == edge_key("a", "b")

    def test_mixed_types_are_stable(self):
        assert edge_key(1, "a") == edge_key("a", 1)

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            edge_key(3, 3)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "error_cls",
        [
            UnknownNodeError,
            DuplicateNodeError,
            DeletedNodeError,
            InvalidEdgeError,
            HaftStructureError,
            InvariantViolationError,
            ProtocolError,
            ConfigurationError,
        ],
    )
    def test_all_derive_from_base(self, error_cls):
        assert issubclass(error_cls, ForgivingGraphError)

    def test_unknown_node_is_key_error(self):
        assert issubclass(UnknownNodeError, KeyError)

    def test_duplicate_node_is_value_error(self):
        assert issubclass(DuplicateNodeError, ValueError)

    def test_unknown_node_message_includes_context(self):
        error = UnknownNodeError(42, "during delete")
        assert "42" in str(error)
        assert "during delete" in str(error)

    def test_deleted_node_keeps_node_reference(self):
        error = DeletedNodeError("n7")
        assert error.node == "n7"
