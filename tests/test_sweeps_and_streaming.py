"""Tests for parallel sweep execution and streaming JSONL reporting."""

import json

import pytest

from repro.experiments import (
    AttackConfig,
    ExperimentConfig,
    JsonlReporter,
    SweepTask,
    json_safe_row,
    json_safe_value,
    read_jsonl,
    run_sweep,
    sweep_graph_sizes,
)
from repro.generators import GraphSpec


def make_tasks(sizes, seed=1):
    return [
        SweepTask(
            config=ExperimentConfig(
                name="unit-parallel",
                graph=GraphSpec(topology="erdos_renyi", n=n),
                attack=AttackConfig(strategy="random", delete_fraction=0.4),
                healers=("forgiving_graph",),
                seed=seed,
                stretch_sources=8,
            ),
            healer="forgiving_graph",
        )
        for n in sizes
    ]


class TestJsonSafety:
    def test_non_finite_floats_become_sentinels(self):
        assert json_safe_value(float("inf")) == "inf"
        assert json_safe_value(float("-inf")) == "-inf"
        assert json_safe_value(float("nan")) == "nan"
        assert json_safe_value(1.5) == 1.5
        assert json_safe_value("inf") == "inf"

    def test_numpy_scalars_unwrap(self):
        np = pytest.importorskip("numpy")
        assert json_safe_value(np.float64("inf")) == "inf"
        assert json_safe_value(np.int64(3)) == 3

    def test_row_with_inf_round_trips_strict_json(self):
        row = json_safe_row({"stretch": float("inf"), "n": 10, "ok": True})
        encoded = json.dumps(row, allow_nan=False)  # raises on bare Infinity
        assert json.loads(encoded) == {"stretch": "inf", "n": 10, "ok": True}

    def test_outcome_as_row_is_json_safe_when_disconnected(self):
        """A disconnected healer yields inf stretch; the row must stay strict-JSON."""
        from repro.experiments import run_attack

        config = ExperimentConfig(
            name="unit-inf",
            graph=GraphSpec(topology="erdos_renyi", n=20),
            attack=AttackConfig(strategy="max_degree", delete_fraction=0.5),
            healers=("no_heal",),
            seed=0,
            stretch_sources=8,
        )
        row = run_attack(config, "no_heal").as_row()
        encoded = json.dumps(row, allow_nan=False)
        decoded = json.loads(encoded)
        assert decoded["stretch"] == "inf" or isinstance(decoded["stretch"], (int, float))


class TestJsonlReporter:
    def test_rows_stream_and_read_back(self, tmp_path):
        path = tmp_path / "results.jsonl"
        with JsonlReporter(path) as reporter:
            reporter.write({"a": 1}, task_key="t1")
            reporter.write({"b": float("inf")}, task_key="t2")
        rows = read_jsonl(path)
        assert [row["task_key"] for row in rows] == ["t1", "t2"]
        assert rows[1]["b"] == "inf"
        # every line is independently strict-valid JSON
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_resume_skips_completed_keys(self, tmp_path):
        path = tmp_path / "results.jsonl"
        with JsonlReporter(path) as reporter:
            reporter.write({"a": 1}, task_key="done")
        resumed = JsonlReporter(path, resume=True)
        assert resumed.is_done("done")
        assert not resumed.is_done("todo")
        resumed.close()

    def test_resume_tolerates_truncated_final_line(self, tmp_path):
        """A checkpoint whose writer was killed mid-append must still resume."""
        path = tmp_path / "results.jsonl"
        with JsonlReporter(path) as reporter:
            reporter.write({"a": 1}, task_key="done")
        with path.open("a") as handle:
            handle.write('{"b": 2, "task_key": "half')  # no closing brace/newline
        resumed = JsonlReporter(path, resume=True)
        assert resumed.is_done("done")
        assert not resumed.is_done("half")
        resumed.close()

    def test_without_resume_truncates(self, tmp_path):
        path = tmp_path / "results.jsonl"
        with JsonlReporter(path) as reporter:
            reporter.write({"a": 1}, task_key="old")
        with JsonlReporter(path, resume=False) as reporter:
            assert not reporter.is_done("old")
        assert read_jsonl(path) == []


class TestRunSweep:
    def test_serial_rows_in_task_order(self):
        tasks = make_tasks([16, 24])
        rows = run_sweep(tasks)
        assert [row["n0"] for row in rows] == [16, 24]

    def test_parallel_matches_serial(self):
        tasks = make_tasks([16, 20, 24])
        serial = run_sweep(tasks)
        parallel = run_sweep(tasks, max_workers=2)
        # wall-clock differs; everything else is deterministic per task seed
        strip = lambda row: {k: v for k, v in row.items() if k != "seconds"}
        assert [strip(r) for r in serial] == [strip(r) for r in parallel]

    def test_streaming_checkpoint_and_resume(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        tasks = make_tasks([16, 20])
        first = run_sweep(tasks[:1], jsonl_path=path)
        assert len(read_jsonl(path)) == 1
        # Resume with the full task list: the finished task is not re-run,
        # its row comes from the checkpoint.
        rows = run_sweep(tasks, jsonl_path=path, resume=True)
        assert len(rows) == 2
        # task_key is JSONL-only bookkeeping: returned rows (resumed or
        # fresh) stay clean and uniform for tables/CSVs.
        assert all("task_key" not in row for row in rows)
        assert rows[0] == {k: v for k, v in first[0].items()}
        on_disk = read_jsonl(path)
        assert len(on_disk) == 2
        assert {row["task_key"] for row in on_disk} == {t.key for t in tasks}

    def test_task_keys_are_stable_and_distinct(self):
        tasks = make_tasks([16, 24])
        assert tasks[0].key != tasks[1].key
        assert tasks[0].key == make_tasks([16, 24])[0].key

    def test_sweep_graph_sizes_parallel_smoke(self, tmp_path):
        rows = sweep_graph_sizes(
            "unit-sweep-par",
            "ring",
            sizes=[16, 24],
            healer="forgiving_graph",
            stretch_sources=8,
            max_workers=2,
            jsonl_path=tmp_path / "sizes.jsonl",
        )
        assert [row["n0"] for row in rows] == [16, 24]
        assert len(read_jsonl(tmp_path / "sizes.jsonl")) == 2


class TestParallelHealerComparison:
    """Copy-per-worker parallel mode of run_healer_comparison (the E9 scaler)."""

    def comparison_config(self):
        return ExperimentConfig(
            name="unit-healer-cmp",
            graph=GraphSpec(topology="power_law", n=32),
            attack=AttackConfig(strategy="max_degree", delete_fraction=0.3),
            healers=("forgiving_graph", "cycle_heal", "no_heal"),
            seed=6,
            stretch_sources=8,
        )

    def test_parallel_comparison_matches_serial(self):
        from repro.experiments import run_healer_comparison

        config = self.comparison_config()
        serial = [o.as_row() for o in run_healer_comparison(config)]
        parallel = [
            o.as_row() for o in run_healer_comparison(config, max_workers=2)
        ]
        strip = lambda row: {k: v for k, v in row.items() if k != "seconds"}
        assert [strip(r) for r in serial] == [strip(r) for r in parallel]
        assert [r["healer"] for r in parallel] == list(config.healers)

    def test_sweep_healers_forwards_max_workers(self):
        from repro.experiments import sweep_healers

        serial = sweep_healers(
            "unit-healer-sweep", "power_law", 32,
            healers=("forgiving_graph", "no_heal"), seed=6, stretch_sources=8,
        )
        parallel = sweep_healers(
            "unit-healer-sweep", "power_law", 32,
            healers=("forgiving_graph", "no_heal"), seed=6, stretch_sources=8,
            max_workers=2,
        )
        strip = lambda row: {k: v for k, v in row.items() if k != "seconds"}
        assert [strip(r) for r in serial] == [strip(r) for r in parallel]
