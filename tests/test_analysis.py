"""Unit tests for the analysis layer: degrees, stretch, bounds, invariants, stats."""

import math

import pytest

from repro import ForgivingGraph
from repro.analysis import (
    GuaranteeReport,
    Summary,
    check_connectivity_preserved,
    degree_bound,
    degree_increase_factor,
    degree_report,
    guarantee_report,
    lower_bound_stretch,
    pairwise_stretch,
    per_node_degree_factors,
    stretch_bound,
    stretch_report,
    summarize,
    verify_tradeoff_against_lower_bound,
)
from repro.analysis.bounds import repair_message_bound, repair_time_bound
from repro.baselines import NoHealing
from repro.generators import make_graph


@pytest.fixture
def healed_star():
    fg = ForgivingGraph.from_edges([(0, i) for i in range(1, 17)], check_invariants=True)
    fg.delete(0)
    return fg


class TestDegreeAnalysis:
    def test_factors_on_untouched_graph_are_one(self):
        fg = ForgivingGraph.from_graph(make_graph("ring", 10))
        factors = per_node_degree_factors(fg)
        assert all(abs(value - 1.0) < 1e-12 for value in factors.values())

    def test_isolated_nodes_are_skipped(self):
        fg = ForgivingGraph.from_edges([(0, 1)], nodes=[5])
        assert 5 not in per_node_degree_factors(fg)

    def test_degree_increase_factor_matches_engine(self, healed_star):
        assert degree_increase_factor(healed_star) == pytest.approx(
            healed_star.degree_increase_factor()
        )

    def test_degree_report_fields(self, healed_star):
        report = degree_report(healed_star)
        assert report.num_nodes == 16
        assert report.max_factor >= report.mean_factor > 0
        row = report.as_row()
        assert row["alive_nodes"] == 16

    def test_degree_report_empty_graph(self):
        fg = ForgivingGraph.from_edges([], nodes=[1])
        report = degree_report(fg)
        assert report.max_factor == 0.0


class TestStretchAnalysis:
    def test_pairwise_stretch_identity_when_untouched(self):
        fg = ForgivingGraph.from_graph(make_graph("path", 6))
        assert pairwise_stretch(fg, 0, 5) == 1.0

    def test_pairwise_stretch_after_healing(self, healed_star):
        # Theorem 1.2 bounds the stretch from above only: healing can make a
        # pair *closer* than in G' (e.g. when both ports end up RT siblings),
        # so the lower bound is just positivity.
        value = pairwise_stretch(healed_star, 1, 2)
        assert 0.0 < value <= math.log2(healed_star.nodes_ever)

    def test_pairwise_stretch_infinite_when_disconnected(self):
        healer = NoHealing.from_edges([(0, 1), (1, 2)])
        healer.delete(1)
        assert math.isinf(pairwise_stretch(healer, 0, 2))

    def test_pairwise_stretch_nan_when_never_connected(self):
        fg = ForgivingGraph.from_edges([(0, 1)], nodes=[9])
        assert math.isnan(pairwise_stretch(fg, 0, 9))

    def test_stretch_report_exact(self, healed_star):
        report = stretch_report(healed_star)
        assert not report.sampled
        assert report.pairs_measured == 16 * 15
        assert report.within_bound

    def test_stretch_report_sampled(self, healed_star):
        report = stretch_report(healed_star, max_sources=4, seed=0)
        assert report.sampled
        assert report.max_stretch <= stretch_report(healed_star).max_stretch + 1e-9

    def test_stretch_report_disconnection_detected(self):
        healer = NoHealing.from_edges([(0, 1), (1, 2), (2, 3)])
        healer.delete(1)
        report = stretch_report(healer)
        assert math.isinf(report.max_stretch)
        assert report.disconnected_pairs > 0
        assert not report.within_bound

    def test_stretch_report_single_node(self):
        fg = ForgivingGraph.from_edges([], nodes=["only"])
        report = stretch_report(fg)
        assert report.max_stretch == 1.0


class TestBounds:
    def test_degree_bound_constant(self):
        assert degree_bound() == 3.0

    def test_stretch_bound_grows_logarithmically(self):
        assert stretch_bound(2) == 1.0
        assert stretch_bound(1024) == pytest.approx(10.0)
        assert stretch_bound(4096) > stretch_bound(1024)

    def test_lower_bound_matches_theorem2_formula(self):
        n, alpha = 1025, 3.0
        assert lower_bound_stretch(n, alpha) == pytest.approx(0.5 * math.log2(n - 1))

    def test_lower_bound_decreases_with_alpha(self):
        assert lower_bound_stretch(1000, 5.0) < lower_bound_stretch(1000, 3.0)

    def test_lower_bound_small_n(self):
        assert lower_bound_stretch(2, 3.0) == 1.0

    def test_tradeoff_check_consistent_case(self):
        check = verify_tradeoff_against_lower_bound(n=1000, measured_degree_factor=3.0, measured_stretch=6.0)
        assert check.consistent

    def test_tradeoff_check_flags_impossible_point(self):
        # stretch 1.0 with degree factor 3 on 1000 nodes would contradict Theorem 2
        check = verify_tradeoff_against_lower_bound(n=1000, measured_degree_factor=3.0, measured_stretch=1.0)
        assert not check.consistent

    def test_repair_budgets_are_monotone(self):
        assert repair_message_bound(10, 1000) > repair_message_bound(5, 1000)
        assert repair_message_bound(10, 10_000) > repair_message_bound(10, 100)
        assert repair_time_bound(32, 1000) > repair_time_bound(2, 1000)
        assert repair_message_bound(0, 100) == 0.0


class TestGuaranteeReport:
    def test_connectivity_check_positive(self, healed_star):
        assert check_connectivity_preserved(healed_star)

    def test_connectivity_check_negative(self):
        healer = NoHealing.from_edges([(0, 1), (1, 2)])
        healer.delete(1)
        assert not check_connectivity_preserved(healer)

    def test_guarantee_report_round_trip(self, healed_star):
        report = guarantee_report(healed_star, healer_name="fg")
        assert isinstance(report, GuaranteeReport)
        assert report.healer_name == "fg"
        assert report.stretch_ok
        row = report.as_row()
        assert row["connected"] is True
        assert row["alive"] == 16

    def test_guarantee_report_detects_degree_violation(self):
        from repro.baselines import CliqueHealing

        healer = CliqueHealing.from_graph(make_graph("star", 30))
        healer.delete(0)
        report = guarantee_report(healer, healer_name="clique")
        assert not report.degree_ok


class TestStats:
    def test_summarize_basic(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.median == pytest.approx(2.5)
        assert summary.maximum == 4.0
        assert summary.minimum == 1.0

    def test_summarize_empty(self):
        summary = summarize([])
        assert summary.count == 0
        assert summary.mean == 0.0

    def test_summarize_ignores_nan_but_keeps_inf(self):
        summary = summarize([1.0, float("nan"), float("inf")])
        assert summary.count == 2
        assert math.isinf(summary.maximum)

    def test_summary_as_row_prefix(self):
        row = Summary(count=1, mean=1, median=1, p95=1, maximum=1, minimum=1).as_row(prefix="msg")
        assert set(row) == {"msg_count", "msg_mean", "msg_median", "msg_p95", "msg_max", "msg_min"}
