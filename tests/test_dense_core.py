"""The dense-int hot core (PR 7): equivalence, accessors, records, sharding.

House rule: every fast path keeps its reference twin and the two must be
bit-identical on identical workloads.  Here the fast path is the whole
dense-int core — interned ids, flat-array adjacency with packed link-source
keys (``Network(dense=True)``), struct-of-arrays Table 1 records
(``DenseEdgeTable``) — and the twin is the retained seed-era object-dict
layout (``dense=False``).  Layout must never change protocol behaviour, so
the churn-equivalence tests compare per-deletion cost reports exactly, under
a lossless network, a byzantine schedule and the chaos delivery preset.

Also pinned: the unsorted fast accessors agree with their NodeKey-ordered
variants as sets, the dense record table behaves like the mapping the
protocol code expects (live views, attribute writes, ``clear_helper``), the
cadence-gated oracle cross-check actually runs inside ``AttackSession``,
and the plan-footprint independence machinery behind the sharded sweeps.
"""

import networkx as nx
import numpy as np
import pytest

from repro.core.errors import ProtocolError
from repro.distributed import DistributedForgivingGraph, Network, fault_schedule
from repro.distributed.processor import DenseEdgeTable, DictEdgeTable, Processor
from repro.engine import AttackSession
from repro.adversary import MaxDegreeDeletion, churn_schedule
from repro.experiments import (
    independent_repair_batches,
    repair_footprint,
    sweep_large_n,
)
from repro.generators import make_graph


def _cost_key(report):
    return (
        report.deleted_node,
        report.messages,
        report.bits,
        report.rounds,
        report.max_messages_per_node,
    )


def _churn_cost_keys(preset: str, dense: bool, n: int = 60, seed: int = 9):
    """Replay one delete-heavy churn; return the per-deletion cost keys."""
    graph = make_graph("power_law", n, seed=seed)
    healer = DistributedForgivingGraph.from_graph(
        graph, fault_schedule=fault_schedule(preset, seed=seed), dense=dense
    )
    rng = np.random.default_rng(seed)
    strategy = MaxDegreeDeletion()
    fresh = 10_000
    for _ in range(n // 2):
        if rng.random() < 0.7:
            victim = strategy.choose_victim(healer)
            if victim is None or healer.num_alive <= 4:
                continue
            healer.delete(victim)
        else:
            alive = sorted(
                (x for x in healer.alive_nodes if healer.network.has_processor(x)),
                key=repr,
            )
            picks = rng.choice(len(alive), size=min(2, len(alive)), replace=False)
            healer.insert(fresh, attach_to=[alive[int(i)] for i in picks])
            fresh += 1
    return [_cost_key(r) for r in healer.cost_reports], healer


class TestDenseDictEquivalence:
    """Layout may never change behaviour: dense == object-dict, bit for bit."""

    @pytest.mark.parametrize("preset", ["lossless", "byzantine", "chaos"])
    def test_churn_cost_reports_identical(self, preset):
        dense_keys, dense_healer = _churn_cost_keys(preset, dense=True)
        dict_keys, dict_healer = _churn_cost_keys(preset, dense=False)
        assert dense_keys, "churn should have produced repairs"
        assert dense_keys == dict_keys
        # The healed topology agrees too, not just the accounting.
        assert dense_healer.network.links() == dict_healer.network.links()
        assert dense_healer.network.quarantined == dict_healer.network.quarantined

    def test_lossless_dense_matches_oracle(self):
        _, healer = _churn_cost_keys("lossless", dense=True)
        healer.verify_consistency()

    def test_dict_mode_has_no_interner(self):
        dense = DistributedForgivingGraph.from_graph(nx.path_graph(4))
        ref = DistributedForgivingGraph.from_graph(nx.path_graph(4), dense=False)
        assert dense.network.interner is not None
        assert len(dense.network.interner) == 4
        assert ref.network.interner is None


class TestUnsortedAccessors:
    """Satellite: fast unsorted accessors agree with the NodeKey-ordered ones."""

    def _network(self):
        _, healer = _churn_cost_keys("lossless", dense=True, n=40)
        return healer.network

    def test_iter_links_matches_links_as_sets(self):
        network = self._network()
        ordered = network.links()
        unsorted_pairs = list(network.iter_links())
        assert len(unsorted_pairs) == len(ordered) == network.num_links()
        assert {frozenset(pair) for pair in unsorted_pairs} == {
            frozenset(pair) for pair in ordered
        }

    def test_neighbors_unsorted_matches_neighbors_as_sets(self):
        network = self._network()
        for node in network.processors:
            fast = network.neighbors_unsorted(node)
            canonical = network.neighbors(node)
            assert sorted(fast, key=repr) == sorted(canonical, key=repr)
            assert len(fast) == len(set(fast))

    def test_both_layouts_expose_both_accessors(self):
        for dense in (True, False):
            network = Network(dense=dense)
            for node in "abc":
                network.add_processor(node)
            network.connect("a", "b")
            network.connect("b", "c")
            assert {frozenset(p) for p in network.iter_links()} == {
                frozenset("ab"),
                frozenset("bc"),
            }
            assert network.neighbors("b") == ["a", "c"]
            assert set(network.neighbors_unsorted("b")) == {"a", "c"}


class TestDenseEdgeTable:
    """The struct-of-arrays Table 1 store behaves like the dict it replaced."""

    def test_mapping_surface(self):
        processor = Processor("v")
        record = processor.ensure_edge("x")
        assert "x" in processor.edges
        assert "y" not in processor.edges
        assert processor.edges.get("y") is None
        assert len(processor.edges) == 1
        assert list(processor.edges.keys()) == ["x"]
        assert processor.edges["x"] is record  # views are identity-stable

    def test_views_are_live(self):
        processor = Processor("v")
        view = processor.ensure_edge("x")
        assert view.neighbor_alive is True
        assert view.has_helper is False
        view.has_helper = True
        view.helper_height = 3
        assert processor.edges["x"].has_helper is True
        assert processor.edges["x"].helper_height == 3
        view.clear_helper()
        assert processor.edges["x"].has_helper is False
        assert processor.edges["x"].helper_height == 0
        assert view.neighbor_alive is True  # clear_helper leaves liveness alone

    def test_helper_slots_drive_helper_ports(self):
        processor = Processor("v")
        for neighbor in ("a", "b", "c"):
            processor.ensure_edge(neighbor)
        processor.edges["b"].has_helper = True
        ports = processor.helper_ports()
        assert [(p.processor, p.neighbor) for p in ports] == [("v", "b")]

    def test_dense_vs_dict_choice(self):
        assert isinstance(Processor("v").edges, DenseEdgeTable)
        assert isinstance(Processor("v", dense_records=False).edges, DictEdgeTable)

    def test_nbytes_grows_with_records(self):
        processor = Processor("v")
        empty = processor.edges.nbytes()
        for neighbor in range(32):
            processor.ensure_edge(neighbor)
        assert processor.edges.nbytes() > empty


class TestCrossCheckCadence:
    """Satellite: the opt-in oracle cross-check rides the measurement tick."""

    def test_gate_runs_on_measurement_cadence(self):
        healer = DistributedForgivingGraph.from_graph(make_graph("erdos_renyi", 30, seed=3))
        session = AttackSession(
            healer,
            churn_schedule(steps=24, seed=3),
            measure_every=6,
            cross_check_every=2,
        )
        session.run()
        # 24 steps / measure_every=6 -> 4 periodic ticks + the final one = 5
        # measurements; every 2nd runs the oracle diff.
        assert session.cross_checks_run == 2
        assert session.result is not None

    def test_gate_detects_corruption(self):
        healer = DistributedForgivingGraph.from_graph(make_graph("erdos_renyi", 20, seed=4))
        session = AttackSession(
            healer,
            churn_schedule(steps=8, seed=4),
            measure_every=4,
            cross_check_every=1,
        )
        stream = session.stream()
        next(stream)
        # Corrupt the message-built topology behind the oracle's back: the
        # next cadence tick must catch it.
        victim_link = next(iter(healer.network.iter_links()))
        healer.network.disconnect(*victim_link)
        from repro.core.errors import InvariantViolationError

        with pytest.raises(InvariantViolationError):
            for _ in stream:
                pass

    def test_default_is_off(self):
        healer = DistributedForgivingGraph.from_graph(make_graph("erdos_renyi", 16, seed=5))
        session = AttackSession(healer, churn_schedule(steps=8, seed=5), measure_every=2)
        session.run()
        assert session.cross_checks_run == 0


class TestShardedSweeps:
    """Plan-footprint independence and the sharded large-n sweep path."""

    def test_repair_footprint_is_local(self):
        healer = DistributedForgivingGraph.from_graph(nx.path_graph(10))
        footprint = repair_footprint(healer, 4)
        assert 4 in footprint
        assert footprint <= {3, 4, 5}

    def test_independent_batches_are_pairwise_disjoint(self):
        healer = DistributedForgivingGraph.from_graph(nx.path_graph(20))
        victims = [3, 5, 10, 16]
        footprints = [(v, repair_footprint(healer, v)) for v in victims]
        batches = independent_repair_batches(footprints)
        by_victim = dict(footprints)
        for batch in batches:
            for i, a in enumerate(batch):
                for b in batch[i + 1 :]:
                    assert by_victim[a].isdisjoint(by_victim[b])
        assert sorted(v for batch in batches for v in batch) == victims
        # 3 and 5 share processor 4, so they must land in different batches.
        assert not any(3 in batch and 5 in batch for batch in batches)

    def test_sweep_large_n_is_deterministic_and_covers_all_nodes(self):
        kwargs = dict(attack=None, seed=5, max_workers=None)
        first = sweep_large_n("dense-smoke", "erdos_renyi", 60, 3, **kwargs)
        second = sweep_large_n("dense-smoke", "erdos_renyi", 60, 3, **kwargs)

        def drop_clock(rows):
            return [{k: v for k, v in row.items() if k != "seconds"} for row in rows]

        assert drop_clock(first) == drop_clock(second)
        assert len(first) == 3
        assert all(row["connected"] for row in first)

    def test_sweep_large_n_rejects_degenerate_shapes(self):
        with pytest.raises(ValueError):
            sweep_large_n("bad", "erdos_renyi", 60, 0)
        with pytest.raises(ValueError):
            sweep_large_n("bad", "erdos_renyi", 6, 4)


class TestDensePackedLinkSources:
    """Packed-int link sources behave exactly like the frozenset table."""

    def test_source_lifecycle_both_layouts(self):
        for dense in (True, False):
            network = Network(dense=dense)
            for node in ("u", "v"):
                network.add_processor(node)
            key = ("real", "u", "v")
            assert not network.are_linked("u", "v")
            network.add_link_source(key, "u", "v")
            assert network.are_linked("u", "v")
            assert network.has_link_source(key, "u", "v")
            assert network.link_source_count("u", "v") == 1
            network.add_link_source(key, "u", "v")  # idempotent
            assert network.link_source_count("u", "v") == 1
            network.remove_link_source(key, "u", "v")
            assert not network.are_linked("u", "v")
            assert network.link_source_count("u", "v") == 0

    def test_replace_link_sources_accepts_frozenset_wire_format(self):
        for dense in (True, False):
            network = Network(dense=dense)
            for node in ("u", "v", "w"):
                network.add_processor(node)
            network.connect("u", "v")
            network.replace_link_sources({frozenset(("u", "v")): {("real", "u", "v")}})
            assert network.link_source_count("u", "v") == 1
            assert network.link_source_count("v", "w") == 0

    def test_strict_links_still_enforced(self):
        network = Network(dense=True)
        for node in ("u", "v"):
            network.add_processor(node)
        from repro.distributed.messages import DeletionNotice

        with pytest.raises(ProtocolError):
            network.send(DeletionNotice(sender="u", receiver="v", deleted="x"))
