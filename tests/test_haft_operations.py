"""Unit tests for the Strip and Merge operations on hafts (Section 4.1)."""

import math

import pytest

from repro.core.haft import (
    build_haft,
    depth,
    is_complete,
    is_haft,
    leaves,
    merge,
    primary_roots,
    strip,
    validate_haft,
)


class TestPrimaryRoots:
    def test_complete_tree_has_single_primary_root(self):
        root = build_haft(list(range(16)))
        roots = primary_roots(root)
        assert roots == [root]

    def test_primary_root_count_is_popcount(self):
        for size in (3, 5, 7, 11, 13, 21, 100, 255):
            root = build_haft(list(range(size)))
            assert len(primary_roots(root)) == bin(size).count("1")

    def test_primary_roots_are_complete(self):
        root = build_haft(list(range(29)))
        assert all(is_complete(node) for node in primary_roots(root))

    def test_primary_roots_sizes_match_binary_representation(self):
        root = build_haft(list(range(22)))  # 22 = 16 + 4 + 2
        sizes = [node.num_leaves for node in primary_roots(root)]
        assert sizes == [16, 4, 2]

    def test_single_leaf_is_its_own_primary_root(self):
        root = build_haft(["only"])
        assert primary_roots(root) == [root]


class TestStrip:
    def test_strip_complete_tree_returns_it(self):
        root = build_haft(list(range(8)))
        pieces = strip(root)
        assert pieces == [root]

    def test_strip_detaches_pieces(self):
        root = build_haft(list(range(13)))
        pieces = strip(root)
        assert all(piece.parent is None for piece in pieces)

    def test_strip_piece_count_and_sizes(self):
        root = build_haft(list(range(13)))  # 13 = 8 + 4 + 1
        pieces = strip(root)
        assert sorted(p.num_leaves for p in pieces) == [1, 4, 8]

    def test_strip_preserves_all_leaves(self):
        payloads = [f"p{i}" for i in range(27)]
        root = build_haft(payloads)
        pieces = strip(root)
        collected = [leaf.payload for piece in pieces for leaf in leaves(piece)]
        assert sorted(collected) == sorted(payloads)

    def test_strip_pieces_are_valid_complete_trees(self):
        root = build_haft(list(range(45)))
        for piece in strip(root):
            assert is_complete(piece)
            validate_haft(piece)

    def test_glue_nodes_are_disconnected_after_strip(self):
        root = build_haft(list(range(3)))  # root is a glue node here
        pieces = strip(root)
        assert root not in pieces
        assert root.left is None and root.right is None


class TestMerge:
    def test_merge_requires_input(self):
        with pytest.raises(ValueError):
            merge([])

    def test_merge_single_haft_is_identity_up_to_strip(self):
        root = build_haft(list(range(8)))
        merged = merge([root])
        assert merged.num_leaves == 8
        assert is_haft(merged)

    def test_merge_two_hafts_leaf_count(self):
        a = build_haft(list(range(5)))
        b = build_haft(list(range(100, 103)))
        merged = merge([a, b])
        assert merged.num_leaves == 8
        validate_haft(merged)

    def test_merge_preserves_all_leaves(self):
        a = build_haft([f"a{i}" for i in range(6)])
        b = build_haft([f"b{i}" for i in range(9)])
        c = build_haft([f"c{i}" for i in range(1)])
        merged = merge([a, b, c])
        collected = sorted(leaf.payload for leaf in leaves(merged))
        expected = sorted([f"a{i}" for i in range(6)] + [f"b{i}" for i in range(9)] + ["c0"])
        assert collected == expected

    def test_merge_depth_matches_unique_haft(self):
        a = build_haft(list(range(7)))
        b = build_haft(list(range(100, 109)))
        merged = merge([a, b])
        assert depth(merged) == math.ceil(math.log2(16))

    @pytest.mark.parametrize(
        "sizes",
        [(1, 1), (1, 2, 3), (4, 4), (5, 11, 2), (16, 16, 16), (1, 1, 1, 1, 1), (7, 9, 31)],
    )
    def test_merge_is_binary_addition(self, sizes):
        """Figure 5: the merged haft has popcount(sum) primary roots."""
        offset = 0
        hafts = []
        for size in sizes:
            hafts.append(build_haft(list(range(offset, offset + size))))
            offset += size
        merged = merge(hafts)
        total = sum(sizes)
        validate_haft(merged)
        assert merged.num_leaves == total
        assert len(primary_roots(merged)) == bin(total).count("1")
        assert depth(merged) == (math.ceil(math.log2(total)) if total > 1 else 0)

    def test_merge_with_custom_factory(self):
        created = []

        from repro.core.haft import HaftNode

        def factory():
            node = HaftNode(payload="glue")
            created.append(node)
            return node

        a = build_haft(list(range(3)))
        b = build_haft(list(range(10, 15)))
        merged = merge([a, b], internal_factory=factory)
        validate_haft(merged)
        assert created, "merging different sizes must create fresh internal nodes"
