"""Journal compaction: bounded memory for the engine's append-only journals.

The ROADMAP open item: the degree-touch and edge-delta journals were
append-only and unbounded per engine.  :class:`repro.core.journal.Journal`
keeps the absolute-index consumer contract while dropping the prefix every
*registered* cursor has drained; :class:`repro.engine.AttackSession` calls
``compact_journals()`` on its measurement cadence.  These tests pin the
container semantics, the consumer (tracker) equivalence under aggressive
compaction, and the session integration.
"""

import numpy as np
import pytest

from repro import AttackSession, ForgivingGraph
from repro.adversary import (
    MaxDegreeDeletion,
    MaxDegreeDeletionReference,
    churn_schedule,
)
from repro.core.journal import Journal, JournalCompactedError
from repro.distributed import DistributedForgivingGraph
from repro.generators import make_graph


class TestJournalSemantics:
    def test_absolute_indices_survive_compaction(self):
        journal = Journal()
        for i in range(10):
            journal.append(i)
        cursor = journal.register_cursor()
        cursor.advance_to(6)
        assert journal.compact() == 6
        assert len(journal) == 10  # total-ever length, not retained length
        assert journal[6:10] == [6, 7, 8, 9]
        assert journal[8] == 8

    def test_reading_below_the_compaction_point_raises(self):
        journal = Journal()
        for i in range(5):
            journal.append(i)
        journal.register_cursor().advance_to(3)
        journal.compact()
        with pytest.raises(JournalCompactedError):
            journal[0:5]
        with pytest.raises(JournalCompactedError):
            journal[1]

    def test_slowest_registered_cursor_pins_history(self):
        journal = Journal()
        for i in range(10):
            journal.append(i)
        slow = journal.register_cursor()
        fast = journal.register_cursor()
        slow.advance_to(2)
        fast.advance_to(9)
        assert journal.compact() == 2
        assert journal[2:10] == list(range(2, 10))

    def test_dead_cursor_stops_pinning(self):
        journal = Journal()
        for i in range(8):
            journal.append(i)
        keep = journal.register_cursor()
        keep.advance_to(8)
        pinning = [journal.register_cursor()]  # never advanced
        assert journal.compact() == 0  # pinned by the idle cursor
        pinning.clear()  # consumer goes away -> weakly-held cursor is collected
        assert journal.compact() == 8

    def test_no_consumers_means_full_truncation(self):
        journal = Journal()
        for i in range(5):
            journal.append(i)
        assert journal.compact() == 5
        assert len(journal) == 5
        assert journal[5:] == []

    def test_empty_suffix_slices_stay_legal(self):
        journal = Journal()
        for i in range(4):
            journal.append(i)
        journal.compact()
        assert journal[4:4] == []
        assert journal[len(journal) :] == []


class TestEngineCompaction:
    def test_compact_journals_reports_drops(self):
        fg = ForgivingGraph.from_graph(make_graph("erdos_renyi", 30, seed=1))
        for victim in sorted(fg.alive_nodes)[:10]:
            if fg.num_alive > 2:
                fg.delete(victim)
        before = len(fg.degree_touch_log)
        assert before > 0
        dropped = fg.compact_journals()
        assert dropped["degree_touch"] == before
        assert dropped["edge_delta"] > 0
        # Absolute length is preserved; the storage is gone.
        assert len(fg.degree_touch_log) == before
        assert fg.degree_touch_log.compacted == before

    def test_tracker_equivalence_under_aggressive_compaction(self):
        """The lazy-heap adversary picks identical victims when the engine
        compacts after every single move — its registered cursor pins
        exactly the suffix it has not drained yet."""
        a = ForgivingGraph.from_graph(make_graph("power_law", 40, seed=6))
        b = ForgivingGraph.from_graph(make_graph("power_law", 40, seed=6))
        incremental, reference = MaxDegreeDeletion(), MaxDegreeDeletionReference()
        for _ in range(25):
            victim_a = incremental.choose_victim(a)
            victim_b = reference.choose_victim(b)
            assert victim_a == victim_b
            if victim_a is None or a.num_alive <= 3:
                break
            a.delete(victim_a)
            b.delete(victim_b)
            a.compact_journals()  # every move — far more aggressive than the session

    def test_distributed_healer_delegates_compaction(self):
        d = DistributedForgivingGraph.from_graph(make_graph("erdos_renyi", 20, seed=2))
        for victim in sorted(d.alive_nodes)[:5]:
            if d.num_alive > 3:
                d.delete(victim)
        dropped = d.compact_journals()
        assert dropped["edge_delta"] > 0
        d.verify_consistency()


class TestSessionCompaction:
    def test_session_compacts_on_measurement_cadence(self):
        fg = ForgivingGraph.from_graph(make_graph("power_law", 60, seed=3))
        schedule = churn_schedule(steps=60, delete_probability=0.7, seed=3)
        session = AttackSession(
            fg, schedule, stretch_sources=8, measure_every=10
        )
        result = session.run()
        assert result.steps > 0
        # The retained storage is bounded by the measurement interval's
        # worth of entries, not by the whole attack.
        assert fg.degree_touch_log.compacted > 0
        retained = len(fg.degree_touch_log) - fg.degree_touch_log.compacted
        assert retained < len(fg.degree_touch_log)

    def test_targeted_session_still_heals_correctly_with_compaction(self):
        """End to end: targeted adversary + periodic compaction + invariants."""
        rng = np.random.default_rng(4)
        fg = ForgivingGraph.from_graph(
            make_graph("erdos_renyi", 40, seed=4),
            check_invariants=True,
            invariant_check_limit=10_000,
        )
        schedule = churn_schedule(
            steps=40, delete_probability=0.6, seed=int(rng.integers(100))
        )
        session = AttackSession(fg, schedule, stretch_sources=8, measure_every=5)
        result = session.run()
        assert result.final_report.connected
        fg.check_invariants()

    def test_healers_without_journals_are_tolerated(self):
        from repro.baselines import make_healer

        healer = make_healer("no_heal", make_graph("ring", 12))
        schedule = churn_schedule(steps=8, delete_probability=0.5, seed=1)
        session = AttackSession(healer, schedule, stretch_sources=4, measure_every=4)
        assert session.compact_journals() == {}
        session.run()
