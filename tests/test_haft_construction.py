"""Unit tests for half-full tree construction (Lemma 1)."""

import math

import pytest

from repro.core.haft import (
    HaftNode,
    binary_decomposition,
    build_haft,
    depth,
    haft_shape_signature,
    is_complete,
    is_haft,
    leaf_count,
    leaves,
    validate_haft,
)
from repro.core.errors import HaftStructureError


class TestBinaryDecomposition:
    def test_power_of_two(self):
        assert binary_decomposition(8) == [8]

    def test_mixed_bits(self):
        assert binary_decomposition(13) == [8, 4, 1]

    def test_one(self):
        assert binary_decomposition(1) == [1]

    def test_all_bits_set(self):
        assert binary_decomposition(7) == [4, 2, 1]

    def test_descending_order(self):
        for value in (3, 6, 11, 100, 255, 1023):
            powers = binary_decomposition(value)
            assert powers == sorted(powers, reverse=True)
            assert sum(powers) == value

    @pytest.mark.parametrize("bad", [0, -1, -17])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(ValueError):
            binary_decomposition(bad)


class TestBuildHaft:
    def test_single_leaf(self):
        root = build_haft(["a"])
        assert root.is_leaf
        assert root.payload == "a"
        assert depth(root) == 0

    def test_two_leaves(self):
        root = build_haft(["a", "b"])
        assert not root.is_leaf
        assert root.left.payload == "a"
        assert root.right.payload == "b"

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            build_haft([])

    @pytest.mark.parametrize("size", [1, 2, 3, 4, 5, 7, 8, 12, 13, 31, 32, 33, 100, 255, 256, 257])
    def test_valid_haft_for_all_sizes(self, size):
        root = build_haft(list(range(size)))
        validate_haft(root)
        assert leaf_count(root) == size

    @pytest.mark.parametrize("size", [2, 3, 5, 9, 17, 33, 100, 513])
    def test_depth_is_ceil_log2(self, size):
        root = build_haft(list(range(size)))
        assert depth(root) == math.ceil(math.log2(size))

    def test_depth_of_single_leaf_is_zero(self):
        assert depth(build_haft([0])) == 0

    @pytest.mark.parametrize("size", [1, 3, 6, 11, 64, 200])
    def test_leaves_preserve_order(self, size):
        payloads = [f"p{i}" for i in range(size)]
        root = build_haft(payloads)
        assert [leaf.payload for leaf in leaves(root)] == payloads

    def test_left_subtree_is_largest_complete_tree(self):
        root = build_haft(list(range(13)))  # 13 = 8 + 4 + 1
        assert is_complete(root.left)
        assert root.left.num_leaves == 8

    def test_counters_are_consistent(self):
        root = build_haft(list(range(21)))
        for node in [root, root.left, root.right]:
            assert node.num_leaves == leaf_count(node)
            assert node.height == depth(node)

    def test_custom_internal_factory(self):
        created = []

        def factory():
            node = HaftNode(payload="internal")
            created.append(node)
            return node

        root = build_haft(list(range(6)), internal_factory=factory)
        validate_haft(root)
        assert len(created) == 5  # internal nodes = leaves - 1
        assert all(node.payload == "internal" for node in created)

    def test_uniqueness_of_shape(self):
        """Lemma 1.1: the haft shape depends only on the number of leaves."""
        for size in (5, 11, 64, 200):
            sig_a = haft_shape_signature(build_haft(list(range(size))))
            sig_b = haft_shape_signature(build_haft([chr(65 + (i % 26)) for i in range(size)]))
            assert sig_a == sig_b

    def test_different_sizes_have_different_shapes(self):
        signatures = {haft_shape_signature(build_haft(list(range(size)))) for size in range(1, 40)}
        assert len(signatures) == 39


class TestValidation:
    def test_is_haft_true_for_built_trees(self):
        assert all(is_haft(build_haft(list(range(size)))) for size in range(1, 30))

    def test_detects_missing_child(self):
        root = build_haft(list(range(4)))
        root.right.right = None
        assert not is_haft(root)

    def test_detects_left_subtree_too_small(self):
        # Hand-build a tree whose left child holds fewer than half the leaves.
        small = build_haft(["a"])
        big = build_haft(["b", "c"])
        root = HaftNode()
        root.attach_children(small, big)
        with pytest.raises(HaftStructureError):
            validate_haft(root)

    def test_detects_corrupted_counters(self):
        root = build_haft(list(range(8)))
        root.num_leaves = 7
        assert not is_haft(root)

    def test_detects_broken_parent_pointer(self):
        root = build_haft(list(range(4)))
        root.left.parent = None
        assert not is_haft(root)


class TestNodeOperations:
    def test_detach_clears_both_directions(self):
        root = build_haft(list(range(4)))
        left = root.left
        left.detach()
        assert left.parent is None
        assert root.left is None

    def test_detach_of_root_is_noop(self):
        root = build_haft(list(range(4)))
        root.detach()
        assert root.parent is None

    def test_root_walks_to_top(self):
        root = build_haft(list(range(16)))
        some_leaf = leaves(root)[5]
        assert some_leaf.root() is root

    def test_recompute_from_children(self):
        root = build_haft(list(range(4)))
        root.height = 99
        root.num_leaves = 99
        root.recompute_from_children()
        assert root.height == 2
        assert root.num_leaves == 4
