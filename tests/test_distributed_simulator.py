"""Integration tests for the distributed Forgiving Graph (Lemma 4 behaviour)."""

import math

import networkx as nx
import pytest

from repro.adversary import MaxDegreeDeletion, RandomDeletion
from repro.distributed import DistributedForgivingGraph
from repro.generators import make_graph


@pytest.fixture
def small_distributed():
    return DistributedForgivingGraph.from_graph(make_graph("erdos_renyi", 40, seed=2))


class TestBasicOperation:
    def test_mirrors_engine_views(self, small_distributed):
        d = small_distributed
        assert d.num_alive == 40
        assert set(d.actual_graph().nodes) == d.alive_nodes
        assert d.nodes_ever == 40

    def test_initial_links_match_graph(self, small_distributed):
        d = small_distributed
        links = {frozenset(l) for l in d.network.links()}
        assert links == {frozenset(e) for e in d.actual_graph().edges}

    def test_delete_returns_cost_report(self, small_distributed):
        d = small_distributed
        victim = sorted(d.alive_nodes)[0]
        report = d.delete(victim)
        assert report.deleted_node == victim
        assert report.messages >= 0
        assert report.rounds >= 1
        assert not d.is_alive(victim)

    def test_insert_sends_notices(self, small_distributed):
        d = small_distributed
        before = d.network.metrics.total_messages
        d.insert(999, attach_to=sorted(d.alive_nodes)[:3])
        assert d.network.metrics.total_messages == before + 3
        assert d.is_alive(999)

    def test_links_track_healed_graph_after_deletions(self, small_distributed):
        d = small_distributed
        for victim in sorted(d.alive_nodes)[:10]:
            if d.num_alive > 2:
                d.delete(victim)
        links = {frozenset(l) for l in d.network.links()}
        assert links == {frozenset(e) for e in d.actual_graph().edges}

    def test_processor_count_matches_alive(self, small_distributed):
        d = small_distributed
        for victim in sorted(d.alive_nodes)[:5]:
            d.delete(victim)
        assert set(d.network.processors) == d.alive_nodes


class TestConsistencyWithEngine:
    @pytest.mark.parametrize("strategy_cls", [RandomDeletion, MaxDegreeDeletion])
    def test_distributed_state_matches_engine(self, strategy_cls):
        d = DistributedForgivingGraph.from_graph(make_graph("power_law", 50, seed=4))
        strategy = strategy_cls(seed=0) if strategy_cls is RandomDeletion else strategy_cls()
        for _ in range(30):
            victim = strategy.choose_victim(d)
            if victim is None or d.num_alive <= 3:
                break
            d.delete(victim)
        d.verify_consistency()

    def test_consistency_after_churn(self):
        d = DistributedForgivingGraph.from_graph(make_graph("erdos_renyi", 30, seed=5))
        fresh = 1000
        for step in range(30):
            if step % 3 == 0:
                d.insert(fresh, attach_to=sorted(d.alive_nodes)[:2])
                fresh += 1
            elif d.num_alive > 3:
                d.delete(sorted(d.alive_nodes)[step % d.num_alive])
        d.verify_consistency()

    def test_healed_graph_stays_connected(self):
        d = DistributedForgivingGraph.from_graph(make_graph("power_law", 40, seed=6))
        for victim in sorted(d.alive_nodes)[:30]:
            if d.num_alive > 2:
                d.delete(victim)
        assert nx.is_connected(d.actual_graph())


class TestLemma4Budgets:
    def test_every_repair_within_message_budget(self):
        d = DistributedForgivingGraph.from_graph(make_graph("power_law", 60, seed=7))
        strategy = MaxDegreeDeletion()
        for _ in range(40):
            victim = strategy.choose_victim(d)
            if victim is None or d.num_alive <= 3:
                break
            d.delete(victim)
        assert d.cost_reports
        assert all(report.within_message_budget for report in d.cost_reports)

    def test_every_repair_within_round_budget(self):
        d = DistributedForgivingGraph.from_graph(make_graph("erdos_renyi", 60, seed=8))
        strategy = RandomDeletion(seed=1)
        for _ in range(40):
            victim = strategy.choose_victim(d)
            if victim is None or d.num_alive <= 3:
                break
            d.delete(victim)
        assert all(report.within_round_budget for report in d.cost_reports)

    def test_message_sizes_are_logarithmic(self):
        d = DistributedForgivingGraph.from_graph(make_graph("power_law", 80, seed=9))
        for victim in sorted(d.alive_nodes)[:40]:
            if d.num_alive > 3:
                d.delete(victim)
        word_bits = math.ceil(math.log2(d.nodes_ever))
        # The largest message carries O(log n) identifiers of O(log n) bits.
        assert d.network.metrics.max_message_bits <= 70 * word_bits

    def test_star_hub_repair_costs_scale_with_degree(self):
        """Deleting the hub of a star costs O(d log n) messages, not O(d^2)."""
        costs = {}
        for leaves in (15, 31, 63):
            d = DistributedForgivingGraph.from_edges([(0, i) for i in range(1, leaves + 1)])
            report = d.delete(0)
            costs[leaves] = report.messages
            assert report.within_message_budget
        assert costs[63] < 10 * costs[15]  # roughly linear in d, certainly not quadratic

    def test_cost_report_row_is_serialisable(self):
        d = DistributedForgivingGraph.from_edges([(0, i) for i in range(1, 9)])
        report = d.delete(0)
        row = report.as_row()
        assert row["degree"] == 8
        assert row["messages"] == report.messages
