"""The dense-id interner: bijectivity and relabeling invariance (PR 7).

The dense-int hot core rests on one contract: :class:`repro.core.ports.Interner`
is an append-only *bijection* between node identifiers and contiguous ints,
assigned in first-appearance order and never reused.  These tests pin that
contract directly and through the network — including under randomized churn
with quarantined and removed processors, where dead identifiers must keep
their ids (the ``n_ever`` semantics message sizing depends on) — and pin the
relabeling invariance that makes dense ids safe to use in any deterministic
order: an order-preserving relabeling of the same churn produces the *same*
id sequence.
"""

import numpy as np
import pytest

from repro.core.ports import Interner
from repro.distributed import DistributedForgivingGraph
from repro.generators import make_graph


class TestInternerBasics:
    def test_assigns_contiguous_ids_in_first_appearance_order(self):
        interner = Interner()
        assert interner.intern("c") == 0
        assert interner.intern("a") == 1
        assert interner.intern("b") == 2
        assert interner.intern("a") == 1  # idempotent
        assert len(interner) == 3
        assert interner.nodes() == ["c", "a", "b"]

    def test_round_trip_is_a_bijection(self):
        interner = Interner()
        ids = [interner.intern(node) for node in ("x", 7, ("t", 1), "x", 7)]
        assert ids == [0, 1, 2, 0, 1]
        for node in ("x", 7, ("t", 1)):
            assert interner.node_of(interner.id_of(node)) == node
        assert interner.get_id("never-seen") is None
        assert "never-seen" not in interner
        assert 7 in interner
        with pytest.raises(KeyError):
            interner.id_of("never-seen")

    def test_mixed_identifier_types_coexist(self):
        interner = Interner()
        nodes = [0, "0", (0,), 1, "1"]
        dense = [interner.intern(n) for n in nodes]
        assert dense == list(range(5))
        assert [interner.node_of(i) for i in dense] == nodes


def _churn_moves(steps: int, seed: int):
    """A deterministic churn script as (kind, index) moves over alive-lists.

    Indices (not identifiers) describe the moves, so the identical script can
    be replayed under any relabeling of the node ids.
    """
    rng = np.random.default_rng(seed)
    moves = []
    for _ in range(steps):
        if rng.random() < 0.55:
            moves.append(("delete", int(rng.integers(0, 1 << 30))))
        else:
            picks = [int(i) for i in rng.integers(0, 1 << 30, size=int(rng.integers(1, 4)))]
            moves.append(("insert", picks))
    return moves


def _play(moves, relabel, quarantine_some: bool, seed: int):
    """Run one churn under a relabeling; returns (healer, interned sequence)."""
    graph = make_graph("erdos_renyi", 24, seed=seed)
    mapping = {node: relabel(node) for node in graph.nodes}
    import networkx as nx

    healer = DistributedForgivingGraph.from_graph(nx.relabel_nodes(graph, mapping))
    id_of = healer.network.interner.id_of
    fresh = 10_000
    quarantined = 0
    for kind, pick in moves:
        # Order alive nodes by dense id: interning order is itself invariant
        # under relabeling, so the script picks "the same" node either way.
        # Quarantined processors stay engine-alive but have no network
        # presence (the byzantine containment semantics), so only nodes with
        # a live processor are churn candidates.
        alive = sorted(
            (n for n in healer.alive_nodes if healer.network.has_processor(n)),
            key=id_of,
        )
        if kind == "delete" and len(alive) > 4:
            victim = alive[pick % len(alive)]
            if quarantine_some and quarantined < 3 and pick % 5 == 0:
                # Exercise the quarantine path too: the processor vanishes
                # from the network but its dense id must survive.
                healer.network.quarantine(victim)
                quarantined += 1
            else:
                healer.delete(victim)
        elif kind == "insert":
            attach = {alive[i % len(alive)] for i in pick}
            healer.insert(relabel(fresh), attach_to=sorted(attach, key=id_of))
            fresh += 1
    return healer, healer.network.interner.nodes()


class TestDenseIdsUnderChurn:
    def test_bijective_and_id_stable_with_quarantine_and_removal(self):
        moves = _churn_moves(50, seed=11)
        healer, nodes_in_id_order = _play(moves, relabel=lambda n: n, quarantine_some=True, seed=11)
        interner = healer.network.interner

        # Bijection: every interned identifier round-trips, ids are 0..len-1.
        assert len(set(nodes_in_id_order)) == len(nodes_in_id_order)
        for dense, node in enumerate(nodes_in_id_order):
            assert interner.id_of(node) == dense
            assert interner.node_of(dense) == node

        # Ids are never reused: every identifier that ever had a processor
        # (alive, deleted, or quarantined) still has its id.
        assert healer.network.n_ever == len(interner)
        for node in healer.network.quarantined:
            assert node in interner
            assert not healer.network.has_processor(node)
        dead = [n for n in nodes_in_id_order if not healer.network.has_processor(n)]
        assert dead, "churn should have produced dead processors"
        for node in dead:
            assert interner.node_of(interner.id_of(node)) == node

    def test_id_assignment_invariant_under_order_preserving_relabeling(self):
        moves = _churn_moves(40, seed=23)
        _, plain = _play(moves, relabel=lambda n: n, quarantine_some=False, seed=23)
        offset = 1_000_000
        _, shifted = _play(
            moves, relabel=lambda n: n + offset, quarantine_some=False, seed=23
        )
        # The identical churn under n -> n + offset interns the shifted
        # identifier at every position: same id sequence, just relabeled.
        assert [n + offset for n in plain] == shifted
