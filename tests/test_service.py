"""The long-lived healer service and the typed config API (PR 9).

Pins the tentpole claims:

* the typed config stack — ``FaultSpec.parse`` is the single fault-axis
  entry point (presets, schedules, specs; errors name every preset),
  ``HealerSpec`` validates at construction and the deprecated
  ``make_healer`` shim stays bit-identical to building through the spec;
* the checkpoint store round-trips the full distributed state (Table 1
  records through the typed codec, sourced links, transcript, census);
* crash-recover is real: abandoning a daemon mid-churn and restoring
  from its store replays the journal around the last checkpoint and
  certifies (reconverge + empty audit + ``verify_consistency``);
* a processor rejoining with a stale checkpoint image mid-repair is a
  digest divergence that recovery heals with genuine retransmissions;
* concurrent client streams are deterministic under a fixed seed.
"""

import random

import pytest

from repro.baselines import HealerSpec, available_healers, make_healer
from repro.core.errors import ConfigurationError
from repro.distributed import DistributedForgivingGraph, fault_schedule
from repro.distributed.faults import FAULT_PRESETS, FaultSchedule, FaultSpec
from repro.generators import make_graph
from repro.generators.graphs import GraphSpec
from repro.service import (
    CheckpointStore,
    HealerDaemon,
    ServiceConfig,
    ServiceMetrics,
)
from repro.service.store import decode_value, encode_value


# --------------------------------------------------------------------------- #
# FaultSpec.parse — the unified fault axis (satellite: api_redesign)
# --------------------------------------------------------------------------- #
class TestFaultSpec:
    def test_parse_accepts_every_shape(self):
        assert FaultSpec.parse(None).is_lossless
        assert FaultSpec.parse("drop").preset == "drop"
        schedule = fault_schedule("reorder", seed=3)
        wrapped = FaultSpec.parse(schedule)
        assert wrapped.schedule is schedule
        spec = FaultSpec("delay", seed=9)
        assert FaultSpec.parse(spec) is spec

    def test_parse_error_names_every_preset(self):
        with pytest.raises(ValueError) as excinfo:
            FaultSpec.parse("gamma-rays")
        for preset in FAULT_PRESETS:
            assert preset in str(excinfo.value)

    def test_parse_rejects_wrong_types(self):
        with pytest.raises(TypeError):
            FaultSpec.parse(42)

    def test_parse_list_grammar(self):
        assert FaultSpec.parse_list("all") == list(FAULT_PRESETS)
        assert FaultSpec.parse_list("none") == []
        assert FaultSpec.parse_list("") == []
        assert FaultSpec.parse_list("drop, reorder") == ["drop", "reorder"]
        with pytest.raises(ValueError) as excinfo:
            FaultSpec.parse_list("drop,bogus", flag="--fault-schedule")
        assert "--fault-schedule" in str(excinfo.value)
        assert "bogus" in str(excinfo.value)

    def test_build_materializes_fresh_deterministic_schedules(self):
        spec = FaultSpec("drop", seed=5)
        first, second = spec.build(), spec.build()
        assert first is not second
        assert first.name == second.name == "drop"
        assert first.seed == second.seed == 5

    def test_json_round_trip_and_schedule_rejection(self):
        spec = FaultSpec("delay", seed=2)
        assert FaultSpec.from_json(spec.to_json()) == spec
        explicit = FaultSpec.parse(fault_schedule("drop", seed=1))
        with pytest.raises(ValueError):
            explicit.to_json()


# --------------------------------------------------------------------------- #
# HealerSpec + the deprecated make_healer shim (satellite: api_redesign)
# --------------------------------------------------------------------------- #
class TestHealerSpec:
    def test_unknown_name_rejected_eagerly(self):
        with pytest.raises(ConfigurationError) as excinfo:
            HealerSpec("perfect_healer")
        assert "forgiving_graph" in str(excinfo.value)

    def test_fault_schedule_option_rejected(self):
        with pytest.raises(ConfigurationError):
            HealerSpec(
                "distributed_forgiving_graph",
                {"fault_schedule": fault_schedule("drop", seed=0)},
            )

    def test_non_distributed_healer_rejects_faults(self):
        with pytest.raises(ConfigurationError):
            HealerSpec("forgiving_graph", fault="drop")

    def test_make_healer_is_deprecated(self):
        graph = make_graph("ring", 8)
        with pytest.deprecated_call():
            make_healer("forgiving_graph", graph)

    @pytest.mark.parametrize("name", sorted(available_healers()))
    def test_shim_equivalence_all_healers(self, name):
        """make_healer and HealerSpec.build produce bit-identical sessions."""
        graph = make_graph("power_law", 24, seed=4)
        with pytest.warns(DeprecationWarning):
            via_shim = make_healer(name, graph)
        via_spec = HealerSpec(name).build(graph)
        rng = random.Random(11)
        for _ in range(6):
            victims = sorted(via_shim.alive_nodes, key=repr)
            if len(victims) <= 3:
                break
            victim = rng.choice(victims)
            via_shim.delete(victim)
            via_spec.delete(victim)
        assert set(via_shim.actual_graph().edges) == set(via_spec.actual_graph().edges)

    def test_shim_equivalence_with_fault_schedule(self):
        """The shim's fault_schedule kwarg equals the spec's fault axis."""
        graph = make_graph("power_law", 24, seed=4)
        with pytest.warns(DeprecationWarning):
            via_shim = make_healer(
                "distributed_forgiving_graph",
                graph,
                fault_schedule=fault_schedule("drop", seed=7),
            )
        via_spec = HealerSpec("distributed_forgiving_graph", fault=FaultSpec("drop", seed=7)).build(graph)
        rng = random.Random(2)
        for _ in range(6):
            victims = sorted(via_shim.alive_nodes, key=repr)
            victim = rng.choice(victims)
            r1 = via_shim.delete(victim)
            r2 = via_spec.delete(victim)
            assert (r1.messages, r1.dropped_messages, r1.retransmissions) == (
                r2.messages,
                r2.dropped_messages,
                r2.retransmissions,
            )
        assert set(via_shim.actual_graph().edges) == set(via_spec.actual_graph().edges)


# --------------------------------------------------------------------------- #
# ServiceConfig (the top of the typed stack)
# --------------------------------------------------------------------------- #
class TestServiceConfig:
    def test_round_trip(self):
        config = ServiceConfig(
            graph=GraphSpec("power_law", 40),
            fault="drop",
            seed=3,
            checkpoint_every=8,
            batch_window=2,
        )
        assert ServiceConfig.from_json(config.to_json()) == config

    def test_rejects_explicit_schedule(self):
        with pytest.raises(ConfigurationError):
            ServiceConfig(fault=fault_schedule("drop", seed=0))

    def test_rejects_non_distributed_healer(self):
        with pytest.raises(ConfigurationError):
            ServiceConfig(healer="forgiving_graph")

    def test_rejects_unknown_fault_preset(self):
        with pytest.raises(ConfigurationError):
            ServiceConfig(fault="gamma-rays")


# --------------------------------------------------------------------------- #
# the store: typed codec + checkpoint round-trip
# --------------------------------------------------------------------------- #
class TestStore:
    def test_codec_round_trips_protocol_values(self):
        from repro.core.ports import Port

        values = [
            None,
            True,
            False,
            0,
            -3,
            "node-a",
            Port("a", "b"),
            Port(1, 2),
            ("rt", Port(1, 2), Port(3, 4)),
            ("real", frozenset((5, 6))),
            frozenset(("x", "y")),
        ]
        for value in values:
            assert decode_value(encode_value(value)) == value

    def test_codec_rejects_exotic_types(self):
        with pytest.raises(ConfigurationError):
            encode_value(object())

    def test_checkpoint_round_trip(self, tmp_path):
        """Records, links, census and transcript survive the store verbatim."""
        graph = make_graph("power_law", 32, seed=6)
        healer = DistributedForgivingGraph.from_graph(graph)
        rng = random.Random(9)
        for _ in range(8):
            healer.delete_batch([rng.choice(sorted(healer.alive_nodes, key=repr))])
        store = CheckpointStore(tmp_path / "run.db")
        store.initialize({"probe": True}, graph)
        ckpt_id = store.write_checkpoint(healer, seq=8)

        network = healer.network
        records = store.load_records(ckpt_id)
        from repro.distributed.processor import _RECORD_COLUMNS

        for node, processor in network.processors.items():
            stored = records[node]
            assert set(stored) == set(dict(processor.edges.items()))
            for neighbor, record in processor.edges.items():
                for name, _col, _kind in _RECORD_COLUMNS:
                    assert stored[neighbor][name] == getattr(record, name), (
                        f"{node}->{neighbor}.{name} did not round-trip"
                    )
        assert store.load_links(ckpt_id) == network.export_link_sources()
        info = store.latest_checkpoint()
        assert info.ckpt_id == ckpt_id
        assert info.seq == 8
        assert info.n_ever == network.n_ever
        assert set(info.alive) == set(network.processors)
        assert store.genesis_graph().number_of_edges() == graph.number_of_edges()
        store.close()

    def test_schema_version_guard(self, tmp_path):
        path = tmp_path / "run.db"
        store = CheckpointStore(path)
        store.initialize({}, make_graph("ring", 4))
        store._set_meta("schema_version", "999")
        store._conn.commit()
        store.close()
        with pytest.raises(ConfigurationError):
            CheckpointStore(path)

    def test_double_initialize_rejected(self, tmp_path):
        store = CheckpointStore(tmp_path / "run.db")
        store.initialize({}, make_graph("ring", 4))
        with pytest.raises(ConfigurationError):
            store.initialize({}, make_graph("ring", 4))
        store.close()


def _drive(daemon, steps, seed, pump_every=5):
    """Two interleaved client streams of seeded churn."""
    clients = [daemon.client("alice"), daemon.client("bob")]
    rng = random.Random(seed)
    next_id = 10_000
    for i in range(steps):
        client = clients[i % 2]
        alive = sorted(daemon._projected_alive, key=repr)
        if rng.random() < 0.3:
            client.insert(next_id, rng.sample(alive, min(3, len(alive))))
            next_id += 1
        else:
            client.delete(rng.choice(alive))
        if (i + 1) % pump_every == 0:
            daemon.pump()
    daemon.pump()


# --------------------------------------------------------------------------- #
# the daemon: churn, crash-recover, rejoin, determinism
# --------------------------------------------------------------------------- #
class TestHealerDaemon:
    def test_churn_applies_and_checkpoints(self, tmp_path):
        config = ServiceConfig(
            graph=GraphSpec("power_law", 40), seed=3, checkpoint_every=8, batch_window=3
        )
        daemon = HealerDaemon.create(tmp_path / "run.db", config)
        _drive(daemon, 24, seed=7)
        daemon.healer.verify_consistency()
        status = daemon.status()
        assert status["ops_applied"] == 24
        assert status["journal"]["applied"] == 24
        assert status["checkpoints"] >= 2
        assert status["recovery"]["fixed_point_noisy"] == 0  # lossless: silent
        assert status["latency_ms"]["p50"] > 0
        daemon.close()

    def test_validation_rejects_bad_submissions(self, tmp_path):
        config = ServiceConfig(graph=GraphSpec("ring", 8), seed=0)
        daemon = HealerDaemon.create(tmp_path / "run.db", config)
        client = daemon.client("c")
        with pytest.raises(ConfigurationError):
            client.delete("nonexistent")
        with pytest.raises(ConfigurationError):
            client.insert(0)  # identifier already alive
        client.delete(0)
        with pytest.raises(ConfigurationError):
            client.delete(0)  # projected dead before the pump
        daemon.close()

    def test_kill_and_restart_reconverges(self, tmp_path):
        """Abandoning the daemon mid-churn loses nothing the journal holds."""
        db = tmp_path / "run.db"
        config = ServiceConfig(
            graph=GraphSpec("power_law", 40), seed=3, checkpoint_every=8, batch_window=3
        )
        daemon = HealerDaemon.create(db, config)
        _drive(daemon, 22, seed=7)
        expected_alive = set(daemon._projected_alive)
        # Submit (journal) a tail that is never pumped, then "crash".
        rng = random.Random(99)
        client = daemon.client("tail")
        for _ in range(3):
            client.delete(rng.choice(sorted(daemon._projected_alive, key=repr)))
        expected_alive = set(daemon._projected_alive)
        daemon.store.close()
        del daemon

        restored, report = HealerDaemon.restore(db)
        assert report.checkpoint_seq > 0
        assert report.suffix_ops >= 3
        assert report.converged and report.audit_clean and report.verified
        assert set(restored.healer.alive_nodes) == expected_alive
        restored.healer.verify_consistency()
        assert restored.status()["restarts"] == 1
        restored.close()

    def test_restart_without_checkpoint_replays_full_path(self, tmp_path):
        db = tmp_path / "run.db"
        config = ServiceConfig(graph=GraphSpec("power_law", 32), seed=5, checkpoint_every=0)
        daemon = HealerDaemon.create(db, config)
        _drive(daemon, 10, seed=1)
        daemon.store.close()
        del daemon
        restored, report = HealerDaemon.restore(db)
        assert report.checkpoint_seq == 0
        assert report.prefix_ops == 0
        assert report.suffix_ops == 10
        assert report.converged and report.audit_clean and report.verified
        restored.close()

    def test_restart_under_faulty_preset(self, tmp_path):
        db = tmp_path / "run.db"
        config = ServiceConfig(
            graph=GraphSpec("erdos_renyi", 36),
            fault="drop",
            seed=5,
            checkpoint_every=6,
            batch_window=2,
        )
        daemon = HealerDaemon.create(db, config)
        _drive(daemon, 15, seed=2, pump_every=4)
        daemon.store.close()
        del daemon
        restored, report = HealerDaemon.restore(db)
        assert report.converged and report.audit_clean and report.verified
        restored.close()

    def test_stale_rejoin_heals_through_digest_recovery(self, tmp_path):
        """A participant restarting from a stale checkpoint image is healed."""
        healed_with_retransmissions = 0
        for seed in range(4):
            config = ServiceConfig(
                graph=GraphSpec("power_law", 40), seed=3, checkpoint_every=0
            )
            daemon = HealerDaemon.create(tmp_path / f"run{seed}.db", config)
            _drive(daemon, 8 + seed, seed=seed)
            report = daemon.rejoin_stale()
            assert report.converged, report
            assert report.audit_clean, report
            assert report.verified, report
            if report.stale is not None and report.records_rolled_back:
                assert report.retransmissions > 0  # genuine divergence healed
                healed_with_retransmissions += 1
            daemon.close()
        assert healed_with_retransmissions > 0

    def test_concurrent_streams_deterministic_under_fixed_seed(self, tmp_path):
        """Same seed, same submissions => bit-identical service state."""
        outcomes = []
        for run in range(2):
            config = ServiceConfig(
                graph=GraphSpec("power_law", 40), seed=9, checkpoint_every=8, batch_window=3
            )
            daemon = HealerDaemon.create(tmp_path / f"det{run}.db", config)
            _drive(daemon, 20, seed=13)
            status = daemon.status()
            outcomes.append(
                (
                    set(daemon.healer.actual_graph().edges),
                    set(daemon.healer.network_graph().edges),
                    sorted(daemon.healer.alive_nodes, key=repr),
                    status["deletes"],
                    status["inserts"],
                    status["waves"],
                    status["recovery"],
                    [
                        (op.seq, op.kind, op.node, op.apply_rank)
                        for op in daemon.store.journal_ops()
                    ],
                )
            )
            daemon.close()
        assert outcomes[0] == outcomes[1]

    def test_status_endpoint_serves_live_json(self, tmp_path):
        import json
        from urllib.request import urlopen

        config = ServiceConfig(graph=GraphSpec("power_law", 32), seed=1)
        daemon = HealerDaemon.create(tmp_path / "run.db", config)
        _drive(daemon, 6, seed=3)
        server = daemon.serve_status(port=0)
        try:
            with urlopen(server.url) as response:
                payload = json.loads(response.read())
            assert payload["ops_applied"] == 6
            assert payload["journal"]["applied"] == 6
        finally:
            daemon.close()


class TestServiceMetrics:
    def test_percentiles_and_rates(self):
        metrics = ServiceMetrics(latency_window=8)
        for ms in (1.0, 2.0, 3.0, 4.0):
            metrics.record_insert(ms)
        snap = metrics.snapshot()
        assert snap["latency_ms"]["p50"] == 2.0
        assert snap["latency_ms"]["p99"] == 4.0
        assert snap["ops_applied"] == 4
        assert snap["ops_per_sec"] > 0

    def test_window_bounds_samples(self):
        metrics = ServiceMetrics(latency_window=4)
        for ms in range(10):
            metrics.record_insert(float(ms))
        assert metrics.snapshot()["latency_ms"]["samples"] == 4
