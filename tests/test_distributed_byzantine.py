"""Byzantine payload faults: message-native accountable detection (PR 6).

Three layers of coverage:

* primitives — lazy message seals, descriptor content checksums, and the
  fault layer's guarantee that every injected lie is a *detectable* lie
  (stale seal or stale checksum) while authored forgeries verify clean;
* end-to-end per lie class — corrupted descriptors, digest status/record
  lies, equivocated assignments and forged digests each end in an
  accusation that names the right processor, quarantines it, and still
  lets the recovery reach its silent fixed point with the plan audit
  poisoned;
* accounting — the oracle-side injection log vs the protocol-side
  transcript (every delivered lie accused, zero false accusations, honest
  runs under every delivery preset accusation-free), and the per-deletion
  ``ByzantineReport`` threaded through ``DeletionCostReport`` into the
  session's ``StepEvent`` stream.
"""

import dataclasses

import pytest

from repro.adversary import MaxDegreeDeletion, RandomDeletion
from repro.adversary.schedule import deletion_only_schedule
from repro.core.ports import Port
from repro.distributed import DistributedForgivingGraph
from repro.distributed.accountability import (
    AccountabilityTranscript,
    InjectionLog,
)
from repro.distributed.faults import (
    BYZANTINE_PRESETS,
    DELIVERY_PRESETS,
    ByzantinePolicy,
    FaultSchedule,
    fault_schedule,
)
from repro.distributed.merge import PieceSummary
from repro.distributed.messages import (
    SEALED_KINDS,
    Digest,
    PrimaryRootList,
)
from repro.distributed.metrics import aggregate_byzantine
from repro.distributed.processor import Processor
from repro.engine import AttackSession
from repro.generators import make_graph


def make_summary(num_leaves: int = 1) -> PieceSummary:
    port = Port(processor=1, neighbor=2)
    return PieceSummary(
        root_port=port,
        root_is_leaf=num_leaves == 1,
        num_leaves=num_leaves,
        height=0 if num_leaves == 1 else 1,
        representative=port,
    )


def byzantine_attack(
    *,
    policy: ByzantinePolicy,
    fraction: float = 0.35,
    n: int = 48,
    steps: int = 18,
    seed: int = 9,
    delivery=None,
) -> DistributedForgivingGraph:
    """A max-degree attack with the given lie policy, both quarantines armed."""
    graph = make_graph("power_law", n, seed=seed)
    kwargs = {"default": delivery} if delivery is not None else {}
    schedule = FaultSchedule(
        seed=seed,
        name="byz-test",
        byzantine_fraction=fraction,
        byzantine_policy=policy,
        **kwargs,
    )
    healer = DistributedForgivingGraph.from_graph(
        graph,
        fault_schedule=schedule,
        quarantine_oracle=True,
        quarantine_plan_audit=True,
    )
    strategy = MaxDegreeDeletion()
    for _ in range(steps):
        victim = strategy.choose_victim(healer)
        if victim is None or healer.num_alive <= 3:
            break
        healer.delete(victim)
    return healer


def assert_accountable(healer: DistributedForgivingGraph) -> None:
    """The run-level acceptance bar of the byzantine gate."""
    schedule = healer.fault_schedule
    transcript = healer.network.transcript
    injection = healer.network.injection_log
    accused = set(transcript.accused)
    # Every processor whose lie was actually delivered is accused — and
    # nobody else: lies dropped in flight never reached a verifier.
    assert accused == injection.origins_with_delivered_lies
    assert all(schedule.is_byzantine(node) for node in accused)
    # Quarantine is the crash machinery: accused processors are gone.
    assert healer.network.quarantined == accused
    assert all(not healer.network.has_processor(node) for node in accused)
    # Recovery reached the silent fixed point around every quarantine,
    # with the repair plan's global knowledge poisoned throughout.
    assert all(report.converged for report in healer.cost_reports)


class TestIntegrityPrimitives:
    def test_fresh_sealed_messages_verify_clean(self):
        message = PrimaryRootList(
            sender=1, receiver=2, deleted=0, roots=(make_summary(),)
        )
        assert message.kind in SEALED_KINDS
        assert message.seal_valid()
        assert Processor._verify(message) is None

    def test_post_seal_mutation_is_detected(self):
        message = PrimaryRootList(
            sender=1, receiver=2, deleted=0, roots=(make_summary(),)
        )
        _ = message.seal  # the fault layer freezes the honest MAC first
        message.roots = (make_summary(num_leaves=2),)
        assert not message.seal_valid()
        assert Processor._verify(message) == "stale-seal"

    def test_descriptor_checksum_survives_copies_but_not_tampering(self):
        honest = make_summary()
        relayed = dataclasses.replace(honest)
        assert relayed.checksum_valid()  # honest copies re-derive cleanly
        tampered = dataclasses.replace(honest, num_leaves=2, root_is_leaf=False)
        object.__setattr__(tampered, "checksum", honest.checksum)
        object.__setattr__(tampered, "_checksum_ok", None)
        assert not tampered.checksum_valid()

    def test_authored_forgery_verifies_clean_locally(self):
        # A byzantine *author* reseals a self-consistent lie: no local
        # check can catch it — that is what cross-witnessing is for.
        forged = dataclasses.replace(make_summary(), num_leaves=2)
        assert forged.checksum_valid()
        message = Digest(
            sender=1,
            receiver=2,
            deleted=0,
            rt_index=0,
            probed=True,
            stripped=True,
            pieces=(forged,),
        )
        assert Processor._verify(message) is None

    def test_corrupt_in_place_always_yields_a_detectable_lie(self):
        policy = ByzantinePolicy(
            corrupt_pieces=1.0, lie_status=1.0, lie_records=1.0, equivocate=1.0
        )
        schedule = FaultSchedule(seed=3, byzantine={1: policy})
        for build in (
            lambda: PrimaryRootList(
                sender=1, receiver=2, deleted=0, roots=(make_summary(),)
            ),
            lambda: Digest(
                sender=1,
                receiver=2,
                deleted=0,
                rt_index=0,
                probed=True,
                stripped=True,
                pieces=(make_summary(),),
            ),
        ):
            message = build()
            reason = schedule.corrupt_in_place(message)
            assert reason is not None
            assert Processor._verify(message) is not None


class TestDeterminism:
    def test_membership_is_stable_and_seeded(self):
        a = FaultSchedule(
            seed=5, byzantine_fraction=0.2, byzantine_policy=BYZANTINE_PRESETS["byzantine"].policy
        )
        b = FaultSchedule(
            seed=5, byzantine_fraction=0.2, byzantine_policy=BYZANTINE_PRESETS["byzantine"].policy
        )
        picks = [node for node in range(300) if a.is_byzantine(node)]
        assert picks == [node for node in range(300) if b.is_byzantine(node)]
        # The fraction is actually realized (the crc32 hash this replaced
        # could leave a whole population honest).
        assert 0.1 < len(picks) / 300 < 0.3
        other = FaultSchedule(
            seed=6, byzantine_fraction=0.2, byzantine_policy=BYZANTINE_PRESETS["byzantine"].policy
        )
        assert picks != [node for node in range(300) if other.is_byzantine(node)]

    def test_same_seed_replays_the_same_lies_and_accusations(self):
        def fingerprint():
            healer = byzantine_attack(policy=BYZANTINE_PRESETS["byzantine"].policy)
            transcript = healer.network.transcript
            injection = healer.network.injection_log
            return (
                injection.total_sent,
                injection.total_delivered,
                [(a.accused, a.reporter, a.reason, a.round) for a in transcript.accusations],
            )

        assert fingerprint() == fingerprint()


# Each lie class paired with the weakest delivery regime that exercises it.
# Authored forgeries (``forge``) fire only during *multi-sweep* recoveries —
# the target must be a piece the receiver already confirmed, and under
# reliable delivery recovery is a single silent sweep with nothing confirmed
# at tick time — so that class runs over the chaos delivery policy.
LIE_CLASSES = {
    "corrupt-pieces": (ByzantinePolicy(corrupt_pieces=1.0), None),
    "lie-status": (ByzantinePolicy(lie_status=1.0), None),
    "lie-records": (ByzantinePolicy(lie_records=1.0), None),
    "equivocate": (ByzantinePolicy(equivocate=1.0), None),
    "forge": (ByzantinePolicy(forge=1.0), DELIVERY_PRESETS["chaos"]),
}


class TestLieClasses:
    @pytest.mark.parametrize("lie", sorted(LIE_CLASSES))
    def test_each_lie_class_is_detected_attributed_and_contained(self, lie):
        policy, delivery = LIE_CLASSES[lie]
        healer = byzantine_attack(policy=policy, delivery=delivery)
        injection = healer.network.injection_log
        assert injection.total_sent > 0, f"{lie}: the attack never exercised the lie"
        assert_accountable(healer)
        assert len(healer.network.transcript) > 0

    def test_preset_policy_combines_all_classes(self):
        healer = byzantine_attack(policy=BYZANTINE_PRESETS["byzantine"].policy)
        assert healer.network.injection_log.total_sent > 0
        assert_accountable(healer)

    def test_accusations_carry_evidence_messages(self):
        healer = byzantine_attack(policy=BYZANTINE_PRESETS["byzantine"].policy)
        for accusation in healer.network.transcript.accusations:
            assert accusation.evidence  # at least the lying message itself
            described = accusation.describe()
            assert str(accusation.accused) in described
            assert accusation.reason in described


class TestQuarantineIsCrashSemantics:
    def test_insert_next_to_a_quarantined_neighbor_is_safe(self):
        healer = byzantine_attack(policy=BYZANTINE_PRESETS["byzantine"].policy)
        # A quarantined processor the oracle still counts alive (the attack
        # may delete quarantined nodes too — those are plain dead).
        quarantined = next(
            q for q in sorted(healer.network.quarantined, key=repr)
            if healer.is_alive(q)
        )
        alive_neighbor = next(
            node
            for node in healer.alive_nodes
            if healer.network.has_processor(node)
        )
        healer.insert("fresh", attach_to=[quarantined, alive_neighbor])
        # Oracle records both edges; the protocol only wired the live one.
        processor = healer.network.processors["fresh"]
        assert alive_neighbor in processor.edges
        assert quarantined not in processor.edges

    def test_deleting_an_already_quarantined_victim_is_safe(self):
        healer = byzantine_attack(policy=BYZANTINE_PRESETS["byzantine"].policy)
        quarantined = next(
            q for q in sorted(healer.network.quarantined, key=repr)
            if healer.is_alive(q)
        )
        report = healer.delete(quarantined)
        assert report.converged
        assert not healer.is_alive(quarantined)


class TestReportThreading:
    def test_cost_reports_carry_byzantine_deltas(self):
        healer = byzantine_attack(policy=BYZANTINE_PRESETS["byzantine"].policy)
        reports = [r.byzantine for r in healer.cost_reports]
        assert all(b is not None for b in reports)
        totals = aggregate_byzantine(reports)
        injection = healer.network.injection_log
        transcript = healer.network.transcript
        assert totals["lies_sent"] == injection.total_sent
        assert totals["lies_delivered"] == injection.total_delivered
        assert totals["accusations"] == len(transcript)
        assert totals["accused"] == len(transcript.accused)
        assert totals["false_accusations"] == 0
        accused_with_delivered = injection.origins_with_delivered_lies
        if accused_with_delivered:
            assert totals["max_containment_radius"] >= 1
        # The containment radius is the oracle's count of distinct
        # processors the liar's payloads reached.
        for report in reports:
            for origin, radius in report.containment.items():
                assert radius == injection.containment_radius(origin)

    def test_as_row_exposes_the_containment_columns(self):
        healer = byzantine_attack(policy=BYZANTINE_PRESETS["byzantine"].policy)
        lying = next(
            r for r in healer.cost_reports if r.byzantine and r.byzantine.newly_accused
        )
        row = lying.as_row()
        assert row["lies_delivered"] > 0
        assert row["accusations"] > 0
        assert row["containment_radius"] >= 1

    def test_step_events_stream_the_byzantine_report(self):
        graph = make_graph("power_law", 48, seed=9)
        healer = DistributedForgivingGraph.from_graph(
            graph,
            fault_schedule=fault_schedule("byzantine", seed=9),
            quarantine_plan_audit=True,
        )
        schedule = deletion_only_schedule(
            steps=18, strategy=MaxDegreeDeletion(), min_survivors=3
        )
        session = AttackSession(
            healer,
            schedule,
            healer_name="distributed_forgiving_graph",
            measure_every=0,
            measure_final=False,
        )
        saw_byzantine = False
        for event in session.stream():
            if event.kind != "delete" or event.cost_report is None:
                continue
            byzantine = event.cost_report.byzantine
            assert byzantine is not None
            if byzantine.newly_accused:
                saw_byzantine = True
                assert byzantine.quarantined_total >= len(byzantine.newly_accused)
        assert saw_byzantine, "attack too short to surface an accusation"


class TestHonestRunsStayAccusationFree:
    """Satellite: delivery faults are never mistaken for byzantine lies."""

    @pytest.mark.parametrize("preset", sorted(DELIVERY_PRESETS))
    def test_no_accusations_under_delivery_faults(self, preset):
        graph = make_graph("power_law", 40, seed=21)
        healer = DistributedForgivingGraph.from_graph(
            graph, fault_schedule=fault_schedule(preset, seed=21)
        )
        strategy = RandomDeletion(seed=21)
        for _ in range(14):
            victim = strategy.choose_victim(healer)
            if victim is None or healer.num_alive <= 3:
                break
            healer.delete(victim)
        transcript = healer.network.transcript
        assert len(transcript) == 0
        assert not healer.network.quarantined
        assert healer.network.injection_log.total_sent == 0


class TestAccountabilityLedger:
    def test_injection_log_radius_and_latency(self):
        log = InjectionLog()
        log.note_sent("liar", round=3)
        log.note_sent("liar", round=5)
        log.note_delivered("liar", "a")
        log.note_delivered("liar", "b")
        log.note_delivered("liar", "a")  # same receiver counted once
        assert log.total_sent == 2
        assert log.total_delivered == 3
        assert log.containment_radius("liar") == 2
        assert log.origins_with_delivered_lies == {"liar"}

        transcript = AccountabilityTranscript()
        transcript.record(
            accused="liar", reporter="a", reason="stale-seal", evidence=(), round=7
        )
        assert log.detection_latency("liar", transcript) == 4  # 7 - 3
        assert log.detection_latency("never-caught", transcript) is None

    def test_sent_but_undelivered_lies_are_not_expected_catches(self):
        log = InjectionLog()
        log.note_sent("dropped-liar", round=1)
        assert log.origins_with_delivered_lies == set()

    def test_transcript_first_accusation_round_is_sticky(self):
        transcript = AccountabilityTranscript()
        transcript.record(
            accused="x", reporter="a", reason="stale-seal", evidence=(), round=4
        )
        transcript.record(
            accused="x", reporter="b", reason="conflicting-descriptor", evidence=(), round=9
        )
        assert transcript.first_accusation_round["x"] == 4
        assert len(transcript) == 2
        assert transcript.accused == {"x"}
        assert transcript.reporters("x") == {"a", "b"}
