"""Unit tests for the repair-protocol planning layer (phases of Section 4.2)."""

import pytest

from repro import ForgivingGraph
from repro.core.errors import UnknownNodeError
from repro.distributed.protocol import _balanced_tree_edges, plan_repair


class TestPlanRepair:
    def test_plan_for_fresh_node_has_only_trivial_anchors(self):
        fg = ForgivingGraph.from_edges([(0, i) for i in range(1, 6)])
        plan = plan_repair(fg, 0)
        assert plan.victim == 0
        assert sorted(plan.neighbors) == [1, 2, 3, 4, 5]
        assert plan.probe_paths == []           # no RTs exist yet
        assert sorted(plan.anchors) == [1, 2, 3, 4, 5]

    def test_plan_includes_affected_rt_probe_paths(self):
        fg = ForgivingGraph.from_edges([(i, i + 1) for i in range(8)])
        fg.delete(3)
        fg.delete(5)
        plan = plan_repair(fg, 4)  # node 4 sits between the two RTs
        assert len(plan.probe_paths) == 2
        # Probe paths walk the right spine: their length is bounded by depth+1.
        for path, rt in zip(plan.probe_paths, fg.affected_reconstruction_trees(4)):
            assert 1 <= len(path) <= rt.depth + 1

    def test_primary_root_counts_are_popcounts(self):
        fg = ForgivingGraph.from_edges([(0, i) for i in range(1, 14)])
        fg.delete(0)
        # Attack a leaf next: its only RT has 13 leaves -> popcount(13) = 3.
        plan = plan_repair(fg, 1)
        assert plan.primary_root_counts == [3]

    def test_affected_rts_requires_known_node(self):
        fg = ForgivingGraph.from_edges([(0, 1)])
        with pytest.raises(UnknownNodeError):
            fg.affected_reconstruction_trees(99)


class TestBalancedTreeEdges:
    def test_empty_and_single(self):
        assert _balanced_tree_edges([]) == []
        assert _balanced_tree_edges(["a"]) == []

    def test_edge_count_is_n_minus_one(self):
        anchors = [f"a{i}" for i in range(9)]
        edges = _balanced_tree_edges(anchors)
        assert len(edges) == 8

    def test_structure_is_a_tree_of_logarithmic_depth(self):
        import networkx as nx

        anchors = [f"a{i}" for i in range(16)]
        tree = nx.Graph(_balanced_tree_edges(anchors))
        assert nx.is_tree(tree)
        lengths = nx.single_source_shortest_path_length(tree, anchors[0])
        assert max(lengths.values()) <= 5  # ~log2(16) + 1


class TestEngineRepairHooks:
    def test_last_repair_rt_and_helpers_are_exposed(self):
        fg = ForgivingGraph.from_edges([(0, i) for i in range(1, 9)])
        fg.delete(0)
        assert fg.last_repair_rt is not None
        assert fg.last_repair_rt.size == 8
        assert len(fg.last_new_helpers) == 7
        assert fg.last_released_helper_ports == []

    def test_released_ports_populated_on_second_deletion(self):
        fg = ForgivingGraph.from_edges([(0, i) for i in range(1, 10)] + [(1, 100)])
        fg.delete(0)
        fg.delete(1)  # breaks the previous RT: some helpers get released
        assert fg.last_repair_rt is not None
        # released ports never belong to the dead processor
        assert all(port.processor != 1 for port in fg.last_released_helper_ports)
