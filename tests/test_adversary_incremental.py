"""Randomized-churn equivalence of incremental adversary structures.

The heap/journal-based targeted strategies must pick *exactly* the node the
retained sorted reference implementations pick, at every step of arbitrary
churn.  These tests drive a shared healer through randomized insert/delete
sequences, querying both implementations before each move.
"""

import numpy as np
import pytest

from repro import ForgivingGraph
from repro.adversary import SurvivorDegreeTracker
from repro.adversary.strategies import (
    MaxDegreeDeletion,
    MaxDegreeDeletionReference,
    MinDegreeDeletion,
    MinDegreeDeletionReference,
    StarInsertion,
    StarInsertionReference,
    available_deletion_strategies,
    make_deletion_strategy,
)
from repro.baselines import make_healer
from repro.generators import make_graph


def churn(fg, rng, steps, pick_victim, delete_probability=0.6, fresh_start=10_000):
    """Drive ``fg`` through randomized churn, yielding before every move."""
    fresh = fresh_start
    for step in range(steps):
        yield step
        if rng.random() < delete_probability and fg.num_alive > 3:
            victim = pick_victim()
            if victim is not None:
                fg.delete(victim)
        else:
            fresh += 1
            alive = sorted(fg.alive_nodes, key=repr)
            count = min(int(rng.integers(1, 4)), len(alive))
            picks = [alive[i] for i in rng.choice(len(alive), size=count, replace=False)]
            fg.insert(fresh, attach_to=picks)


@pytest.mark.parametrize(
    "incremental_cls,reference_cls",
    [
        (MaxDegreeDeletion, MaxDegreeDeletionReference),
        (MinDegreeDeletion, MinDegreeDeletionReference),
    ],
)
@pytest.mark.parametrize("topology,seed", [("power_law", 7), ("erdos_renyi", 11)])
def test_deletion_equivalence_under_churn(incremental_cls, reference_cls, topology, seed):
    fg = ForgivingGraph.from_graph(make_graph(topology, 80, seed=seed))
    incremental, reference = incremental_cls(), reference_cls()
    rng = np.random.default_rng(seed)
    choice = {}

    def pick():
        choice["victim"] = incremental.choose_victim(fg)
        return choice["victim"]

    for step in churn(fg, rng, steps=120, pick_victim=pick):
        fast = incremental.choose_victim(fg)
        slow = reference.choose_victim(fg)
        assert fast == slow, f"divergence at step {step}: {fast!r} != {slow!r}"


def test_star_insertion_equivalence_under_churn():
    fg = ForgivingGraph.from_graph(make_graph("power_law", 60, seed=3))
    incremental, reference = StarInsertion(), StarInsertionReference()
    rng = np.random.default_rng(3)
    deleter = MaxDegreeDeletion()

    for step in churn(fg, rng, steps=100, pick_victim=lambda: deleter.choose_victim(fg)):
        assert incremental.choose_attachments(fg) == reference.choose_attachments(fg), (
            f"divergence at step {step}"
        )


def test_tracker_rebinds_to_a_different_healer():
    a = ForgivingGraph.from_graph(make_graph("star", 10))
    b = ForgivingGraph.from_graph(make_graph("ring", 10))
    strategy = MaxDegreeDeletion()
    assert strategy.choose_victim(a) == 0  # the hub
    # Same strategy object pointed at a different healer: must re-seed.
    assert strategy.choose_victim(b) in b.alive_nodes
    b.delete(strategy.choose_victim(b))
    assert strategy.choose_victim(b) in b.alive_nodes


def test_tracker_supports_detection():
    fg = ForgivingGraph.from_graph(make_graph("ring", 8))
    assert SurvivorDegreeTracker.supports(fg)
    baseline = make_healer("no_heal", make_graph("ring", 8))
    assert not SurvivorDegreeTracker.supports(baseline)


def test_incremental_strategies_fall_back_on_baselines():
    """Baselines expose no journal: strategies silently use the reference scan."""
    graph = make_graph("star", 12)
    healer = make_healer("cycle_heal", graph)
    assert MaxDegreeDeletion().choose_victim(healer) == 0
    victim = MinDegreeDeletion().choose_victim(healer)
    assert victim in healer.alive_nodes and victim != 0


def test_reference_strategies_are_registered():
    names = available_deletion_strategies()
    assert "max_degree_reference" in names
    assert "min_degree_reference" in names
    fg = ForgivingGraph.from_graph(make_graph("star", 10))
    assert make_deletion_strategy("max_degree_reference").choose_victim(fg) == 0


def test_degree_touch_log_grows_with_repairs():
    fg = ForgivingGraph.from_graph(make_graph("star", 16))
    before = len(fg.degree_touch_log)
    fg.delete(0)
    assert len(fg.degree_touch_log) > before
    # Insertion journals the newcomer even without attachments being edges yet.
    mid = len(fg.degree_touch_log)
    fg.insert("fresh", attach_to=[1])
    assert len(fg.degree_touch_log) > mid
