"""End-to-end theorem compliance tests.

These integration tests drive the full pipeline (generator -> adversary ->
Forgiving Graph -> analysis) across topologies and adversaries and assert the
paper's guarantees directly — the executable counterpart of Theorem 1 and
Theorem 2.
"""

import math

import networkx as nx
import pytest

from repro import ForgivingGraph
from repro.adversary import deletion_only_schedule, make_deletion_strategy
from repro.analysis import (
    check_connectivity_preserved,
    guarantee_report,
    lower_bound_stretch,
    stretch_report,
    verify_tradeoff_against_lower_bound,
)
from repro.baselines import make_healer
from repro.generators import make_graph

TOPOLOGIES = ["erdos_renyi", "power_law", "grid", "ring", "binary_tree", "star", "path"]
STRATEGIES = ["random", "max_degree", "min_degree", "cut"]


@pytest.mark.parametrize("topology", TOPOLOGIES)
@pytest.mark.parametrize("strategy", ["random", "max_degree"])
def test_theorem1_on_topology_and_adversary(topology, strategy):
    """Theorem 1: degree factor O(1) and stretch <= log2(n) after a heavy attack."""
    graph = make_graph(topology, 48, seed=13)
    fg = ForgivingGraph.from_graph(graph, check_invariants=True)
    schedule = deletion_only_schedule(
        steps=24, strategy=make_deletion_strategy(strategy, seed=1), seed=1
    )
    schedule.run(fg)

    assert check_connectivity_preserved(fg)
    assert fg.degree_increase_factor() <= 4.0 + 1e-9
    stretch = stretch_report(fg)
    assert stretch.max_stretch <= max(math.log2(fg.nodes_ever), 1.0) + 1e-9


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_theorem1_holds_at_every_intermediate_step(strategy):
    """The guarantees are 'at any time T' statements, so check after every move."""
    graph = make_graph("erdos_renyi", 30, seed=3)
    fg = ForgivingGraph.from_graph(graph, check_invariants=True)
    chooser = make_deletion_strategy(strategy, seed=2)
    for _ in range(20):
        victim = chooser.choose_victim(fg)
        if victim is None or fg.num_alive <= 2:
            break
        fg.delete(victim)
        assert fg.degree_increase_factor() <= 4.0 + 1e-9
        assert stretch_report(fg).max_stretch <= max(math.log2(fg.nodes_ever), 1.0) + 1e-9


@pytest.mark.parametrize("n", [16, 32, 64, 128])
def test_theorem2_star_lower_bound_consistency(n):
    """Theorem 2 on the star: measured (degree, stretch) never beats the floor."""
    star = make_graph("star", n)
    for healer_name in ("forgiving_graph", "forgiving_tree", "cycle_heal", "surrogate_heal"):
        healer = make_healer(healer_name, star)
        healer.delete(0)
        report = guarantee_report(healer, healer_name=healer_name)
        check = verify_tradeoff_against_lower_bound(
            n=n, measured_degree_factor=report.degree_factor, measured_stretch=report.stretch
        )
        if report.degree_factor <= 3.0:
            assert check.consistent, (
                f"{healer_name} on star({n}) appears to beat the Theorem 2 lower bound"
            )


@pytest.mark.parametrize("n", [32, 64, 128])
def test_forgiving_graph_stretch_is_within_constant_of_lower_bound_on_star(n):
    """The FG trade-off is asymptotically optimal: its star stretch is Theta(log n)."""
    fg = ForgivingGraph.from_graph(make_graph("star", n), check_invariants=True)
    fg.delete(0)
    measured = stretch_report(fg).max_stretch
    floor = lower_bound_stretch(n, 3.0)
    ceiling = math.log2(n)
    assert floor - 1e-9 <= measured <= ceiling + 1e-9
    # within a small constant factor of the unavoidable floor
    assert measured <= 4.0 * floor


def test_diameter_increase_matches_forgiving_tree_style_bound():
    """Deleting one node of degree d multiplies local distances by at most O(log d)."""
    d = 64
    fg = ForgivingGraph.from_edges([(0, i) for i in range(1, d + 1)], check_invariants=True)
    fg.delete(0)
    healed = fg.actual_graph()
    assert nx.diameter(healed) <= 2 * math.ceil(math.log2(d))


def test_insertions_never_trigger_repair_work():
    """Insertions are free: no reconstruction trees are created or modified."""
    fg = ForgivingGraph.from_graph(make_graph("erdos_renyi", 20, seed=1), check_invariants=True)
    fg.delete(sorted(fg.alive_nodes)[0])
    rts_before = {rt.rt_id for rt in fg.reconstruction_trees()}
    for i in range(10):
        fg.insert(1000 + i, attach_to=sorted(fg.alive_nodes)[:3])
    assert {rt.rt_id for rt in fg.reconstruction_trees()} == rts_before


def test_large_scale_attack_stays_within_bounds():
    """A heavier run (200 nodes, 150 deletions) keeps all guarantees."""
    graph = make_graph("power_law", 200, seed=17)
    fg = ForgivingGraph.from_graph(graph)  # invariant checking off for speed
    schedule = deletion_only_schedule(
        steps=150, strategy=make_deletion_strategy("max_degree"), seed=17
    )
    schedule.run(fg)
    assert fg.degree_increase_factor() <= 4.0 + 1e-9
    report = stretch_report(fg, max_sources=30, seed=0)
    assert report.max_stretch <= math.log2(fg.nodes_ever) + 1e-9
    assert check_connectivity_preserved(fg)
