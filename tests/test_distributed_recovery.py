"""The gossip-digest anti-entropy recovery (PR 5).

Pins the tentpole claims:

* recovery is **message-native**: ``reconverge()`` reaches the fixed point
  with the repair plan's global knowledge *poisoned* (any read raises) and
  the oracle quarantined, under lossless and every fault preset — the
  digest protocol works from per-processor local knowledge plus messages
  delivered through ``Network.deliver_round`` alone;
* the retained plan-based audit is an oracle: after a digest recovery it
  finds nothing left to retransmit, and under the poison it raises;
* recovery has its own cost ledger (``RecoveryCostReport``): detection
  (digest) traffic split from retransmissions, Lemma-4-style per-sweep
  budgets, threaded into ``DeletionCostReport`` and the engine's
  ``StepEvent`` stream;
* the protocol is deterministic given the fault schedule's seed, survives
  a non-leader participant crashing mid-recovery, and a recovery that hits
  its round budget mid-delivery reports ``converged=False`` plus the
  leftover in-flight count instead of leaking traffic into the next repair
  (the PR 5 satellite fix);
* the batched ``Network.deliver_round`` is observably identical to the
  retained ``deliver_round_reference`` allocation pattern.
"""

import pytest

from repro.adversary import MaxDegreeDeletion, RandomDeletion
from repro.distributed import (
    DistributedForgivingGraph,
    RecoveryCostReport,
    fault_schedule,
)
from repro.generators import make_graph


def attack(healer, steps=15, strategy=None, reconverge_lossless=False):
    strategy = strategy if strategy is not None else RandomDeletion(seed=5)
    for _ in range(steps):
        victim = strategy.choose_victim(healer)
        if victim is None or healer.num_alive <= 3:
            break
        healer.delete(victim)
        if reconverge_lossless and healer.fault_schedule is None:
            healer.reconverge()
    return healer


def faulty_healer(preset, seed=5, **kwargs):
    return DistributedForgivingGraph.from_graph(
        make_graph("power_law", 40, seed=3),
        fault_schedule=fault_schedule(preset, seed=seed),
        **kwargs,
    )


class TestNoGlobalKnowledge:
    """The no-global-knowledge guard of the ISSUE's test checklist."""

    @pytest.mark.parametrize("preset", ["lossless", "drop", "delay", "reorder", "chaos"])
    def test_recovery_converges_with_plan_audit_poisoned(self, preset):
        healer = faulty_healer(preset, quarantine_oracle=True, quarantine_plan_audit=True)
        attack(healer, steps=15, reconverge_lossless=True)
        assert len(healer.recovery_reports) > 0
        assert all(r.converged for r in healer.recovery_reports)
        healer.verify_consistency()

    def test_plan_audit_raises_under_the_poison(self):
        healer = faulty_healer("drop", quarantine_plan_audit=True)
        attack(healer, steps=3)
        with pytest.raises(AssertionError, match="global knowledge"):
            healer.audit_reference()

    def test_audit_reference_finds_nothing_after_digest_recovery(self):
        """The digest fixed point is the one the global audit recognizes."""
        healer = faulty_healer("chaos")
        strategy = RandomDeletion(seed=5)
        for _ in range(12):
            victim = strategy.choose_victim(healer)
            if victim is None or healer.num_alive <= 3:
                break
            report = healer.delete(victim)
            assert report.converged
            assert healer.audit_reference() == []
        healer.verify_consistency()


class TestDeterminism:
    @pytest.mark.parametrize("preset", ["lossless", "drop", "delay", "reorder", "chaos"])
    def test_recovery_is_deterministic_given_the_seed(self, preset):
        def run():
            healer = faulty_healer(preset, seed=13, quarantine_plan_audit=True)
            attack(healer, steps=12, strategy=RandomDeletion(seed=2), reconverge_lossless=True)
            return [r.as_row() for r in healer.recovery_reports]

        first, second = run(), run()
        assert first == second
        assert len(first) > 0


class TestRecoveryLedger:
    def test_lossless_detection_costs_one_silent_sweep(self):
        healer = DistributedForgivingGraph.from_graph(make_graph("power_law", 40, seed=3))
        attack(healer, steps=10, reconverge_lossless=True)
        assert len(healer.recovery_reports) > 0
        for report in healer.recovery_reports:
            assert report.converged
            assert report.sweeps == 1
            assert report.retransmissions == 0
            assert report.digest_messages > 0
            assert report.within_digest_budget
            assert report.within_round_budget

    def test_faulty_recovery_traffic_within_budgets(self):
        healer = faulty_healer("chaos")
        attack(healer, steps=15)
        recoveries = healer.recovery_reports
        assert sum(r.retransmissions for r in recoveries) > 0
        assert all(r.within_digest_budget for r in recoveries)
        assert all(r.within_round_budget for r in recoveries)

    def test_recovery_threaded_into_deletion_report(self):
        healer = faulty_healer("drop")
        attack(healer, steps=10)
        faulted = [r for r in healer.cost_reports if r.recovery is not None]
        assert len(faulted) == len(healer.cost_reports)
        for report in faulted:
            assert isinstance(report.recovery, RecoveryCostReport)
            assert report.retransmissions == report.recovery.retransmissions
            assert report.reconvergence_rounds == report.recovery.rounds
            assert report.converged == report.recovery.converged
            row = report.as_row()
            assert row["recovery_sweeps"] == report.recovery.sweeps
            assert row["digest_messages"] == report.recovery.digest_messages
            assert row["digest_bits"] == report.recovery.digest_bits

    def test_recovery_reaches_step_events(self):
        from repro.adversary.schedule import deletion_only_schedule
        from repro.engine import AttackSession

        healer = faulty_healer("drop")
        schedule = deletion_only_schedule(
            steps=10, strategy=MaxDegreeDeletion(), min_survivors=3
        )
        session = AttackSession(healer, schedule, measure_every=0, measure_final=False)
        recoveries = [
            event.cost_report.recovery
            for event in session.stream()
            if event.cost_report is not None
        ]
        assert recoveries and all(r is not None for r in recoveries)


class TestRoundBudgetExhaustion:
    """Satellite fix: hitting max_rounds mid-delivery is loud, not silent."""

    def test_budget_exhaustion_reports_leftover_and_discards_it(self):
        healer = faulty_healer("drop", auto_reconverge=False)
        strategy = RandomDeletion(seed=5)
        starved = None
        for _ in range(15):
            victim = strategy.choose_victim(healer)
            if victim is None or healer.num_alive <= 3:
                break
            healer.delete(victim)
            report = healer.reconverge(max_rounds=1)
            if not report.converged:
                starved = report
                break
            assert report.in_flight_leftover == 0
        assert starved is not None, "max_rounds=1 should starve some recovery"
        assert starved.in_flight_leftover > 0
        # The leftover traffic was discarded, not leaked into the next repair.
        assert healer.network.in_flight == 0
        # Regression (PR 6 satellite): the discarded in-flight messages are
        # *dropped* messages — they must land in the recovery window's
        # ``dropped`` tally, not vanish from the ledger.
        assert starved.dropped >= starved.in_flight_leftover
        # A full-budget pass afterwards still reaches the fixed point.
        final = healer.reconverge()
        assert final.converged
        healer.verify_consistency()

    def test_converged_recovery_reports_no_leftover(self):
        healer = faulty_healer("chaos")
        attack(healer, steps=10)
        for report in healer.recovery_reports:
            assert report.converged
            assert report.in_flight_leftover == 0


class TestCrashMidRecovery:
    def test_non_leader_crash_mid_recovery_terminates_cleanly(self):
        healer = faulty_healer("drop", auto_reconverge=False)
        strategy = MaxDegreeDeletion()
        crashed = False
        for _ in range(15):
            victim = strategy.choose_victim(healer)
            if victim is None or healer.num_alive <= 4:
                break
            healer.delete(victim)
            runtime = healer._runtime
            bystanders = [
                node
                for node in runtime.participants
                if node != runtime.leader and healer.network.has_processor(node)
            ]
            if not crashed and len(bystanders) > 1:
                # Crash one non-leader participant between the repair and
                # its recovery: its context and records die with it.
                healer.network.remove_processor(bystanders[0])
                crashed = True
                report = healer.reconverge()
                # The recovery must terminate without protocol errors:
                # obligations towards the crashed peer are waived, requests
                # to it are never sent, and no traffic is left behind.
                assert report.sweeps >= 1
                assert healer.network.in_flight == 0
            else:
                healer.reconverge()
        assert crashed, "attack too short to stage a crash"

    def test_crash_does_not_block_later_repairs(self):
        healer = faulty_healer("drop", auto_reconverge=False)
        strategy = RandomDeletion(seed=7)
        victim = strategy.choose_victim(healer)
        healer.delete(victim)
        runtime = healer._runtime
        bystanders = [
            node
            for node in runtime.participants
            if node != runtime.leader and healer.network.has_processor(node)
        ]
        if bystanders:
            healer.network.remove_processor(bystanders[0])
        healer.reconverge()
        # The network keeps serving repairs for other victims.
        survivors = [
            node
            for node in sorted(healer.alive_nodes, key=str)
            if healer.network.has_processor(node) and healer.num_alive > 4
        ]
        for node in survivors[:2]:
            healer.delete(node)
            healer.reconverge()


class TestBatchedDelivery:
    """Satellite: one per-round buffer in Network.deliver_round."""

    @pytest.mark.parametrize("preset", ["lossless", "chaos"])
    def test_batched_and_reference_delivery_agree(self, preset):
        def run(batched):
            healer = faulty_healer(preset, seed=11)
            healer.network.batched_delivery = batched
            attack(healer, steps=12, strategy=RandomDeletion(seed=4))
            return [r.as_row() for r in healer.cost_reports]

        assert run(True) == run(False)

    def test_drop_in_flight_clears_queues(self):
        healer = DistributedForgivingGraph.from_edges([(0, i) for i in range(1, 6)])
        network = healer.network
        from repro.distributed import DeletionNotice

        network.send(DeletionNotice(sender=0, receiver=1, deleted=99))
        assert network.in_flight == 1
        assert network.drop_in_flight() == 1
        assert network.in_flight == 0
        assert network.drop_in_flight() == 0
