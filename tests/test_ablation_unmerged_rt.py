"""Tests for the merge-step ablation baseline (``unmerged_rt``).

The ablation exists to show *why* the Forgiving Graph merges reconstruction
trees: without merging, sustained attacks pile virtual roles onto the same
survivors and the degree guarantee is lost, while connectivity and local
distances remain fine.
"""

import networkx as nx
from repro.adversary import MaxDegreeDeletion, deletion_only_schedule
from repro.baselines import UnmergedRTHealing, available_healers, make_healer
from repro.generators import make_graph


def test_registered_in_registry():
    assert "unmerged_rt" in available_healers()


def test_single_deletion_behaves_like_a_reconstruction_tree():
    healer = UnmergedRTHealing.from_edges([(0, i) for i in range(1, 17)])
    healer.delete(0)
    healed = healer.actual_graph()
    assert nx.is_connected(healed)
    assert nx.diameter(healed) <= 8  # 2 * log2(16): same local guarantee as an RT
    assert max(dict(healed.degree()).values()) <= 4


def test_connectivity_is_preserved_under_attack(power_law_60):
    healer = UnmergedRTHealing.from_graph(power_law_60)
    deletion_only_schedule(steps=40, strategy=MaxDegreeDeletion(), seed=0).run(healer)
    assert nx.is_connected(healer.actual_graph())


def test_degree_guarantee_is_lost_without_merging():
    """The ablation's whole point: sustained attack breaks the constant-factor bound."""
    graph = make_graph("power_law", 150, seed=7)
    merged = make_healer("forgiving_graph", graph)
    unmerged = make_healer("unmerged_rt", graph)
    for healer in (merged, unmerged):
        deletion_only_schedule(steps=90, strategy=MaxDegreeDeletion(), seed=1).run(healer)
    assert merged.degree_increase_factor() <= 4.0 + 1e-9
    assert unmerged.degree_increase_factor() > merged.degree_increase_factor()
    assert unmerged.degree_increase_factor() > 5.0
