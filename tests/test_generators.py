"""Unit tests for the initial-topology generators."""

import networkx as nx
import numpy as np
import pytest

from repro.core.errors import ConfigurationError
from repro.generators import GraphSpec, available_topologies, make_graph
from repro.generators.graphs import (
    binary_tree_graph,
    erdos_renyi_graph,
    grid_graph,
    power_law_graph,
    random_regular_graph,
    star_graph,
)


class TestMakeGraph:
    @pytest.mark.parametrize("topology", sorted(["star", "path", "ring", "grid", "binary_tree", "erdos_renyi", "power_law", "random_regular"]))
    def test_all_topologies_are_connected(self, topology):
        graph = make_graph(topology, 50, seed=3)
        assert nx.is_connected(graph)

    @pytest.mark.parametrize("topology", ["star", "path", "ring", "binary_tree", "power_law"])
    def test_exact_size(self, topology):
        assert make_graph(topology, 37, seed=1).number_of_nodes() == 37

    def test_available_topologies_is_sorted_and_complete(self):
        names = available_topologies()
        assert names == sorted(names)
        assert "power_law" in names and "star" in names

    def test_unknown_topology_raises(self):
        with pytest.raises(ConfigurationError):
            make_graph("moebius", 10)

    def test_integer_labels(self):
        graph = make_graph("grid", 25, seed=0)
        assert all(isinstance(node, int) for node in graph.nodes)

    def test_deterministic_given_seed(self):
        a = make_graph("erdos_renyi", 40, seed=5)
        b = make_graph("erdos_renyi", 40, seed=5)
        assert set(a.edges) == set(b.edges)

    def test_different_seeds_differ(self):
        a = make_graph("erdos_renyi", 60, seed=1)
        b = make_graph("erdos_renyi", 60, seed=2)
        assert set(a.edges) != set(b.edges)

    def test_accepts_numpy_generator(self):
        rng = np.random.default_rng(7)
        graph = make_graph("power_law", 30, seed=rng)
        assert graph.number_of_nodes() == 30


class TestSpecificTopologies:
    def test_star_hub_degree(self):
        graph = star_graph(20)
        assert graph.degree[0] == 19

    def test_binary_tree_shape(self):
        graph = binary_tree_graph(15)
        degrees = sorted(dict(graph.degree()).values(), reverse=True)
        assert degrees[0] <= 3
        assert nx.is_tree(graph)

    def test_grid_is_roughly_square(self):
        graph = grid_graph(36)
        assert graph.number_of_nodes() == 36

    def test_erdos_renyi_average_degree(self):
        graph = erdos_renyi_graph(300, seed=1, avg_degree=8.0)
        avg = 2 * graph.number_of_edges() / graph.number_of_nodes()
        assert 5.0 < avg < 11.0

    def test_power_law_has_hubs(self):
        graph = power_law_graph(200, seed=2, attachment=3)
        degrees = sorted(dict(graph.degree()).values(), reverse=True)
        assert degrees[0] > 3 * degrees[len(degrees) // 2]

    def test_random_regular_degree(self):
        graph = random_regular_graph(50, seed=3, degree=4)
        assert all(d == 4 for _, d in graph.degree())

    def test_size_validation(self):
        with pytest.raises(ConfigurationError):
            star_graph(1)


class TestGraphSpec:
    def test_build(self):
        spec = GraphSpec(topology="ring", n=12)
        graph = spec.build(seed=0)
        assert graph.number_of_nodes() == 12

    def test_build_with_params(self):
        spec = GraphSpec(topology="erdos_renyi", n=80, params={"avg_degree": 10.0})
        graph = spec.build(seed=0)
        avg = 2 * graph.number_of_edges() / graph.number_of_nodes()
        assert avg > 6.0

    def test_label(self):
        assert GraphSpec(topology="star", n=8).label() == "star(n=8)"

    def test_equality(self):
        assert GraphSpec("star", 8) == GraphSpec("star", 8)
        assert GraphSpec("star", 8) != GraphSpec("star", 9)
