"""Unit tests for the experiment harness: configs, runner, sweeps, reporting."""

import math
from pathlib import Path

import pytest

from repro.core.errors import ConfigurationError
from repro.experiments import (
    AttackConfig,
    ExperimentConfig,
    format_table,
    rows_to_csv,
    run_attack,
    run_healer_comparison,
    sweep_graph_sizes,
    sweep_healers,
    sweep_strategies,
    write_report,
)
from repro.generators import GraphSpec


@pytest.fixture
def tiny_config():
    return ExperimentConfig(
        name="unit",
        graph=GraphSpec(topology="erdos_renyi", n=24),
        attack=AttackConfig(strategy="random", delete_fraction=0.4),
        healers=("forgiving_graph", "no_heal"),
        seed=1,
        stretch_sources=12,
    )


class TestConfig:
    def test_attack_steps_for(self):
        assert AttackConfig(delete_fraction=0.5).steps_for(100) == 50
        assert AttackConfig(delete_fraction=0.01).steps_for(10) == 1

    def test_attack_validation(self):
        with pytest.raises(ConfigurationError):
            AttackConfig(strategy="nuke")
        with pytest.raises(ConfigurationError):
            AttackConfig(delete_fraction=0.0)
        with pytest.raises(ConfigurationError):
            AttackConfig(delete_probability=2.0)
        with pytest.raises(ConfigurationError):
            AttackConfig(insertion_degree=0)

    def test_experiment_validation(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(name="x", graph=GraphSpec("hypercube", 8))
        with pytest.raises(ConfigurationError):
            ExperimentConfig(name="x", graph=GraphSpec("ring", 8), healers=("quantum_heal",))

    def test_describe_is_flat(self, tiny_config):
        description = tiny_config.describe()
        assert description["topology"] == "erdos_renyi"
        assert description["n0"] == 24


class TestRunner:
    def test_run_attack_outcome_fields(self, tiny_config):
        outcome = run_attack(tiny_config, "forgiving_graph")
        assert outcome.healer_name == "forgiving_graph"
        assert outcome.deletions > 0
        assert outcome.peak_degree_factor <= 4.0 + 1e-9
        assert outcome.final_report.connected
        row = outcome.as_row()
        assert row["healer"] == "forgiving_graph"
        assert "stretch" in row

    def test_run_attack_with_series(self, tiny_config):
        outcome = run_attack(tiny_config, "forgiving_graph", track_series=True, measure_every=2)
        assert outcome.series
        assert all("stretch" in point for point in outcome.series)

    def test_comparison_uses_same_graph(self, tiny_config):
        outcomes = run_healer_comparison(tiny_config)
        assert [o.healer_name for o in outcomes] == list(tiny_config.healers)
        # Both healers saw the same number of deletions of the same graph.
        assert outcomes[0].deletions == outcomes[1].deletions

    def test_forgiving_graph_beats_no_heal_on_connectivity(self, tiny_config):
        outcomes = {o.healer_name: o for o in run_healer_comparison(tiny_config)}
        assert outcomes["forgiving_graph"].final_report.connected
        # no_heal will usually disconnect; at minimum it can never report a
        # *better* (lower) stretch than a connected healer on the same attack.
        assert (
            math.isinf(outcomes["no_heal"].peak_stretch)
            or outcomes["no_heal"].peak_stretch >= 1.0
        )


class TestSweeps:
    def test_sweep_graph_sizes_rows(self):
        rows = sweep_graph_sizes(
            "unit-sweep", "ring", sizes=[16, 32], healer="forgiving_graph", stretch_sources=8
        )
        assert len(rows) == 2
        assert [row["n0"] for row in rows] == [16, 32]

    def test_sweep_healers_rows(self):
        rows = sweep_healers(
            "unit-cmp", "erdos_renyi", n=24, healers=("forgiving_graph", "cycle_heal"), stretch_sources=8
        )
        assert {row["healer"] for row in rows} == {"forgiving_graph", "cycle_heal"}

    def test_sweep_strategies_rows(self):
        rows = sweep_strategies(
            "unit-strat", "erdos_renyi", n=24, strategies=("random", "max_degree"), stretch_sources=8
        )
        assert {row["attack"] for row in rows} == {"random", "max_degree"}


class TestReporting:
    def test_format_table_alignment_and_values(self):
        rows = [{"a": 1, "b": True}, {"a": 2.5, "b": False}]
        text = format_table(rows, title="demo")
        assert "### demo" in text
        assert "| a " in text and "| b " in text
        assert "yes" in text and "no" in text
        assert "2.5" in text

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([])

    def test_format_table_handles_missing_keys(self):
        text = format_table([{"a": 1}, {"b": 2}])
        assert "a" in text and "b" in text

    def test_rows_to_csv(self, tmp_path):
        path = rows_to_csv([{"x": 1, "y": "inf"}], tmp_path / "out.csv")
        content = Path(path).read_text()
        assert "x,y" in content
        assert "1,inf" in content

    def test_write_report_sections(self, tmp_path):
        path = write_report(
            [("Section A", [{"k": 1}]), ("Section B", [{"k": 2}], "preamble text")],
            tmp_path / "report.md",
            title="Unit report",
        )
        content = Path(path).read_text()
        assert "# Unit report" in content
        assert "## Section A" in content
        assert "preamble text" in content
