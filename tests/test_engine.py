"""Unit tests for the unified attack-session engine (repro.engine)."""

import math

import pytest

from repro import AttackSession, ForgivingGraph
from repro.adversary import churn_schedule, deletion_only_schedule
from repro.baselines import make_healer
from repro.engine import SessionResult, StepEvent
from repro.generators import make_graph


@pytest.fixture
def healer():
    return ForgivingGraph.from_graph(make_graph("power_law", 40, seed=1))


class TestAttackSessionRun:
    def test_run_returns_summary(self, healer):
        session = AttackSession(healer, deletion_only_schedule(steps=12, seed=0), seed=0)
        result = session.run()
        assert isinstance(result, SessionResult)
        assert result.deletions == 12
        assert result.insertions == 0
        assert result.steps == 12
        assert result.final_report.connected
        assert result.peak_degree_factor <= 4.0 + 1e-9
        assert result.wall_clock_seconds > 0

    def test_counters_split_by_kind(self, healer):
        session = AttackSession(healer, churn_schedule(steps=30, delete_probability=0.5, seed=3))
        result = session.run()
        assert result.deletions + result.insertions == result.steps == 30
        assert result.deletions > 0 and result.insertions > 0

    def test_result_none_before_completion(self, healer):
        session = AttackSession(healer, deletion_only_schedule(steps=5, seed=0))
        assert session.result is None
        session.run()
        assert session.result is not None

    def test_track_series(self, healer):
        session = AttackSession(
            healer,
            deletion_only_schedule(steps=12, seed=0),
            measure_every=3,
            track_series=True,
        )
        result = session.run()
        # every 3rd step plus the final measurement
        assert len(result.series) == 12 // 3 + 1
        assert all("stretch" in point and "degree_factor" in point for point in result.series)

    def test_works_with_baselines(self):
        graph = make_graph("erdos_renyi", 30, seed=2)
        for name in ("no_heal", "cycle_heal"):
            session = AttackSession(
                make_healer(name, graph),
                deletion_only_schedule(steps=8, seed=2),
                healer_name=name,
            )
            result = session.run()
            assert result.healer_name == name
            assert result.deletions == 8


class TestAttackSessionStream:
    def test_stream_yields_typed_events(self, healer):
        session = AttackSession(healer, deletion_only_schedule(steps=10, seed=0), measure_every=4)
        events = list(session.stream())
        assert len(events) == 10
        assert all(isinstance(event, StepEvent) for event in events)
        assert [e.kind for e in events] == ["delete"] * 10
        # cumulative counters are monotone and end at the totals
        assert [e.deletions for e in events] == list(range(1, 11))
        assert events[-1].deletions == session.result.deletions

    def test_measurements_land_on_cadence(self, healer):
        session = AttackSession(healer, deletion_only_schedule(steps=10, seed=0), measure_every=4)
        events = list(session.stream())
        measured = [e.step for e in events if e.report is not None]
        assert measured == [4, 8]
        # the final measurement still happens (it is not attached to an event)
        assert session.result.final_report is not None

    def test_measure_every_zero_disables_periodic_measurement(self, healer):
        session = AttackSession(
            healer, deletion_only_schedule(steps=9, seed=0), measure_every=0, measure_final=False
        )
        events = list(session.stream())
        assert all(event.report is None for event in events)
        assert session.result.final_report is None
        # peaks were never observed
        assert session.result.peak_stretch == 0.0

    def test_stream_peaks_match_reports(self, healer):
        session = AttackSession(healer, deletion_only_schedule(steps=12, seed=1), measure_every=3)
        reports = [e.report for e in session.stream() if e.report is not None]
        reports.append(session.result.final_report)
        assert session.result.peak_stretch == pytest.approx(
            max(r.stretch for r in reports)
        )
        assert session.result.peak_degree_factor == pytest.approx(
            max(r.degree_factor for r in reports)
        )

    def test_session_is_single_use(self, healer):
        """Replaying a finalized session would re-attack the healer: it raises."""
        session = AttackSession(healer, deletion_only_schedule(steps=4, seed=0))
        first = session.run()
        alive_after = healer.num_alive
        with pytest.raises(RuntimeError):
            session.run()
        assert healer.num_alive == alive_after  # the healer was not touched again
        assert session.result is first

    def test_abandoned_stream_can_be_finalized(self, healer):
        session = AttackSession(healer, deletion_only_schedule(steps=20, seed=0))
        stream = session.stream()
        for _ in range(5):
            next(stream)
        assert session.result is None
        result = session.finalize()
        assert result.steps == 5
        assert result.final_report is not None
        assert result.wall_clock_seconds > 0  # real elapsed, not a 0.0 stub

    def test_abandoned_stream_cannot_be_restarted(self, healer):
        """Re-streaming after an early exit would replay moves on the mutated healer."""
        session = AttackSession(healer, deletion_only_schedule(steps=20, seed=0))
        stream = session.stream()
        for _ in range(3):
            next(stream)
        with pytest.raises(RuntimeError):
            next(session.stream())

    def test_measure_now_on_demand(self, healer):
        session = AttackSession(healer, deletion_only_schedule(steps=6, seed=0), measure_every=0)
        report = session.measure_now()
        assert report.connected
        assert math.isfinite(report.stretch)


class TestEngineMatchesLegacySemantics:
    def test_session_equals_runner_outcome(self):
        """The runner is a thin wrapper: same schedule, same measurements, same peaks."""
        from repro.experiments import ExperimentConfig, run_attack
        from repro.generators import GraphSpec

        config = ExperimentConfig(
            name="engine-parity",
            graph=GraphSpec(topology="erdos_renyi", n=30),
            seed=5,
            stretch_sources=16,
        )
        first = run_attack(config, "forgiving_graph")
        second = run_attack(config, "forgiving_graph")
        assert first.peak_stretch == second.peak_stretch
        assert first.peak_degree_factor == second.peak_degree_factor
        assert first.deletions == second.deletions
