"""Tests of the virtual-graph / healed-graph homomorphism (Section 3).

The healed graph ``G`` must be exactly the quotient of the virtual graph
under the "owning processor" map: every virtual edge between nodes owned by
different processors appears in ``G``, self-loops vanish, and nothing else is
ever added.
"""

import networkx as nx
import pytest

from repro import ForgivingGraph
from repro.generators import make_graph


def quotient_of_virtual(fg: ForgivingGraph) -> nx.Graph:
    virtual = fg.virtual_graph()
    quotient = nx.Graph()
    quotient.add_nodes_from(fg.alive_nodes)
    for u, v in virtual.edges:
        pu = virtual.nodes[u]["processor"]
        pv = virtual.nodes[v]["processor"]
        if pu != pv:
            quotient.add_edge(pu, pv)
    return quotient


@pytest.mark.parametrize("victims", [(0,), (0, 3), (1, 2, 3), (5, 1, 3, 2)])
def test_actual_graph_is_quotient_of_virtual(victims):
    fg = ForgivingGraph.from_graph(make_graph("erdos_renyi", 16, seed=1), check_invariants=True)
    for victim in victims:
        if fg.is_alive(victim) and fg.num_alive > 2:
            fg.delete(victim)
    actual = fg.actual_graph()
    quotient = quotient_of_virtual(fg)
    assert set(actual.nodes) == set(quotient.nodes)
    assert set(map(frozenset, actual.edges)) == set(map(frozenset, quotient.edges))


def test_virtual_nodes_owned_by_alive_processors_only():
    fg = ForgivingGraph.from_graph(make_graph("power_law", 20, seed=2), check_invariants=True)
    for victim in (0, 1, 2, 3, 4):
        if fg.num_alive > 2:
            fg.delete(victim)
    virtual = fg.virtual_graph()
    alive = fg.alive_nodes
    for label, data in virtual.nodes(data=True):
        assert data["processor"] in alive


def test_helper_degree_in_virtual_graph_is_at_most_three():
    """Helper (virtual) nodes have degree at most 3 — the key to Theorem 1.1."""
    fg = ForgivingGraph.from_graph(make_graph("erdos_renyi", 30, seed=3), check_invariants=True)
    for victim in sorted(fg.alive_nodes)[:20]:
        if fg.num_alive > 2:
            fg.delete(victim)
    virtual = fg.virtual_graph()
    for label in virtual.nodes:
        kind, _payload = label
        if kind == "helper":
            assert virtual.degree[label] <= 3


def test_leaf_degree_in_virtual_graph_is_at_most_one():
    """RT leaves have exactly one virtual edge (to their parent helper)."""
    fg = ForgivingGraph.from_graph(make_graph("erdos_renyi", 30, seed=4), check_invariants=True)
    for victim in sorted(fg.alive_nodes)[:15]:
        if fg.num_alive > 2:
            fg.delete(victim)
    virtual = fg.virtual_graph()
    for label in virtual.nodes:
        kind, _payload = label
        if kind == "leaf":
            assert virtual.degree[label] <= 1


def test_per_processor_virtual_ownership_matches_lemma3():
    """Each processor owns at most one leaf and one helper per G' edge."""
    fg = ForgivingGraph.from_graph(make_graph("power_law", 30, seed=5), check_invariants=True)
    for victim in sorted(fg.alive_nodes)[:20]:
        if fg.num_alive > 2:
            fg.delete(victim)
    virtual = fg.virtual_graph()
    seen = set()
    for label in virtual.nodes:
        kind, payload = label
        if kind in ("leaf", "helper"):
            key = (kind, payload)
            assert key not in seen
            seen.add(key)
