"""Public-API hygiene: exports exist, are importable and are documented."""

import importlib
import inspect

import pytest

import repro


PUBLIC_MODULES = [
    "repro",
    "repro.core",
    "repro.core.haft",
    "repro.core.reconstruction_tree",
    "repro.core.forgiving_graph",
    "repro.core.ports",
    "repro.core.errors",
    "repro.distributed",
    "repro.distributed.messages",
    "repro.distributed.network",
    "repro.distributed.processor",
    "repro.distributed.protocol",
    "repro.distributed.simulator",
    "repro.distributed.metrics",
    "repro.distributed.faults",
    "repro.service",
    "repro.service.store",
    "repro.service.metrics",
    "repro.baselines",
    "repro.adversary",
    "repro.generators",
    "repro.analysis",
    "repro.engine",
    "repro.experiments",
    "repro.experiments.catalog",
    "repro.adversary.incremental",
]


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_module_imports_and_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), f"{module_name} lacks a module docstring"


@pytest.mark.parametrize(
    "module_name",
    [
        "repro",
        "repro.core",
        "repro.distributed",
        "repro.baselines",
        "repro.adversary",
        "repro.analysis",
        "repro.engine",
        "repro.experiments",
        "repro.service",
    ],
)
def test_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    assert hasattr(module, "__all__")
    for name in module.__all__:
        assert hasattr(module, name), f"{module_name}.__all__ lists missing name {name}"


def test_version_string():
    assert repro.__version__.count(".") == 2


def test_top_level_quickstart_docstring_example():
    """The doctest-style example in the package docstring must actually work."""
    from repro import ForgivingGraph

    fg = ForgivingGraph.from_edges([(0, 1), (1, 2), (2, 3), (3, 0)])
    fg.delete(1)
    assert sorted(fg.actual_graph().nodes) == [0, 2, 3]


@pytest.mark.parametrize(
    "cls_path",
    [
        "repro.core.forgiving_graph.ForgivingGraph",
        "repro.core.reconstruction_tree.ReconstructionTree",
        "repro.distributed.simulator.DistributedForgivingGraph",
        "repro.baselines.base.SelfHealer",
        "repro.adversary.schedule.AttackSchedule",
        "repro.engine.AttackSession",
        "repro.adversary.incremental.SurvivorDegreeTracker",
    ],
)
def test_public_classes_have_documented_public_methods(cls_path):
    module_name, _, cls_name = cls_path.rpartition(".")
    cls = getattr(importlib.import_module(module_name), cls_name)
    assert cls.__doc__ and cls.__doc__.strip()
    undocumented = [
        name
        for name, member in inspect.getmembers(cls, predicate=inspect.isfunction)
        if not name.startswith("_") and not (member.__doc__ and member.__doc__.strip())
    ]
    assert not undocumented, f"{cls_path} has undocumented public methods: {undocumented}"


def test_healer_protocol_is_uniform():
    """ForgivingGraph, DistributedForgivingGraph and every baseline share the healer API."""
    from repro import ForgivingGraph
    from repro.baselines import available_healers, make_healer
    from repro.distributed import DistributedForgivingGraph
    from repro.generators import make_graph

    graph = make_graph("ring", 8)
    healers = [make_healer(name, graph) for name in available_healers()]
    healers.append(DistributedForgivingGraph.from_graph(graph))
    for healer in healers:
        for attribute in ("insert", "delete", "actual_graph", "g_prime_view", "g_prime_degree",
                          "alive_nodes", "num_alive", "nodes_ever", "degree_increase_factor"):
            assert hasattr(healer, attribute), f"{type(healer).__name__} lacks {attribute}"
