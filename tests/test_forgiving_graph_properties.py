"""Property-based tests: random adversarial histories never break the invariants.

These tests generate arbitrary interleavings of insertions and deletions
(hypothesis chooses both the initial topology seed and the move sequence) and
assert the full invariant suite plus the externally observable guarantees
after every history.  ``check_invariants=True`` additionally re-validates the
internal structure after every single move.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ForgivingGraph
from repro.analysis import check_connectivity_preserved, stretch_report
from repro.generators import make_graph

# A move is (is_deletion, index) — the index picks the victim / attachment set
# deterministically from the sorted alive nodes, so shrinking works well.
moves = st.lists(
    st.tuples(st.booleans(), st.integers(min_value=0, max_value=10_000)),
    min_size=1,
    max_size=40,
)


def apply_history(fg: ForgivingGraph, history, min_survivors=2) -> None:
    fresh = 10_000
    for is_deletion, index in history:
        alive = sorted(fg.alive_nodes)
        if not alive:
            break
        if is_deletion and fg.num_alive > min_survivors:
            fg.delete(alive[index % len(alive)])
        else:
            count = 1 + index % 3
            attach = alive[: min(count, len(alive))]
            fg.insert(fresh, attach_to=attach)
            fresh += 1


@given(seed=st.integers(min_value=0, max_value=50), history=moves)
@settings(max_examples=30, deadline=None)
def test_random_histories_keep_all_invariants(seed, history):
    graph = make_graph("erdos_renyi", 24, seed=seed)
    fg = ForgivingGraph.from_graph(graph, check_invariants=True)
    apply_history(fg, history)
    fg.check_invariants()  # explicit final check (raises on violation)
    assert check_connectivity_preserved(fg)


@given(seed=st.integers(min_value=0, max_value=50), history=moves)
@settings(max_examples=25, deadline=None)
def test_random_histories_keep_degree_bounded(seed, history):
    graph = make_graph("power_law", 24, seed=seed)
    fg = ForgivingGraph.from_graph(graph, check_invariants=False)
    apply_history(fg, history)
    # Hard structural bound: 1 leaf edge + 3 helper edges per G' edge.
    assert fg.degree_increase_factor() <= 4.0 + 1e-9


@given(seed=st.integers(min_value=0, max_value=50), history=moves)
@settings(max_examples=20, deadline=None)
def test_random_histories_keep_stretch_within_log_n(seed, history):
    graph = make_graph("erdos_renyi", 20, seed=seed)
    fg = ForgivingGraph.from_graph(graph, check_invariants=False)
    apply_history(fg, history)
    report = stretch_report(fg)
    bound = max(math.log2(fg.nodes_ever), 1.0)
    assert report.max_stretch <= bound + 1e-9


@given(seed=st.integers(min_value=0, max_value=50), history=moves)
@settings(max_examples=20, deadline=None)
def test_helper_count_always_leaves_minus_one(seed, history):
    """Lemma 3 corollary: every RT with L leaves has exactly L-1 helpers."""
    graph = make_graph("erdos_renyi", 20, seed=seed)
    fg = ForgivingGraph.from_graph(graph, check_invariants=False)
    apply_history(fg, history)
    for rt in fg.reconstruction_trees():
        assert len(rt.helpers) == max(rt.size - 1, 0)
        rt.validate()


@given(seed=st.integers(min_value=0, max_value=30), history=moves)
@settings(max_examples=15, deadline=None)
def test_deleting_everything_leaves_clean_state(seed, history):
    """Drive the graph down to a single node: no stale RTs or helper records may remain."""
    graph = make_graph("ring", 12, seed=seed)
    fg = ForgivingGraph.from_graph(graph, check_invariants=True)
    apply_history(fg, history, min_survivors=2)
    # Now deliberately delete everything that is left except one node.
    while fg.num_alive > 1:
        fg.delete(sorted(fg.alive_nodes)[0])
    assert fg.actual_graph().number_of_edges() == 0
    (survivor,) = fg.alive_nodes
    for rt in fg.reconstruction_trees():
        # Whatever RTs remain can only involve the lone survivor's ports, so
        # their virtual edges all collapse to self-loops in the healed graph.
        assert rt.processors() == {survivor}
        rt.validate()
