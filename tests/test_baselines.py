"""Unit tests for the baseline healers and the healer registry."""

import networkx as nx
import pytest

from repro.baselines import (
    CliqueHealing,
    CycleHealing,
    ForgivingTreeHealing,
    NoHealing,
    SurrogateHealing,
    available_healers,
    make_healer,
)
from repro.core.errors import (
    ConfigurationError,
    DeletedNodeError,
    DuplicateNodeError,
    UnknownNodeError,
)
from repro.generators import make_graph


ALL_BASELINES = [NoHealing, CycleHealing, CliqueHealing, SurrogateHealing, ForgivingTreeHealing]


class TestSharedBehaviour:
    @pytest.mark.parametrize("cls", ALL_BASELINES)
    def test_construction_and_views(self, cls, small_er):
        healer = cls.from_graph(small_er)
        assert healer.num_alive == small_er.number_of_nodes()
        assert set(healer.actual_graph().edges) == set(small_er.edges)
        assert set(healer.g_prime_view().edges) == set(small_er.edges)

    @pytest.mark.parametrize("cls", ALL_BASELINES)
    def test_insert_and_delete_bookkeeping(self, cls):
        healer = cls.from_edges([(0, 1), (1, 2), (2, 0)])
        healer.insert(7, attach_to=[0, 2])
        assert healer.is_alive(7)
        healer.delete(1)
        assert not healer.is_alive(1)
        assert 1 in healer.g_prime_view()
        assert 1 not in healer.actual_graph()
        assert healer.deleted_nodes == {1}

    @pytest.mark.parametrize("cls", ALL_BASELINES)
    def test_error_conditions(self, cls):
        healer = cls.from_edges([(0, 1), (1, 2)])
        with pytest.raises(UnknownNodeError):
            healer.delete(99)
        healer.delete(1)
        with pytest.raises(DeletedNodeError):
            healer.delete(1)
        with pytest.raises(DuplicateNodeError):
            healer.insert(0)
        with pytest.raises(UnknownNodeError):
            healer.insert(50, attach_to=[1])

    @pytest.mark.parametrize("cls", ALL_BASELINES)
    def test_g_prime_degree(self, cls):
        healer = cls.from_edges([(0, 1), (0, 2), (0, 3)])
        healer.delete(1)
        assert healer.g_prime_degree(0) == 3


class TestNoHealing:
    def test_disconnects_on_cut_vertex(self):
        healer = NoHealing.from_edges([(0, 1), (1, 2)])
        healer.delete(1)
        assert not nx.has_path(healer.actual_graph(), 0, 2)

    def test_degree_factor_never_exceeds_one(self, power_law_60):
        healer = NoHealing.from_graph(power_law_60)
        for victim in sorted(healer.alive_nodes)[:30]:
            if healer.num_alive > 2:
                healer.delete(victim)
        assert healer.degree_increase_factor() <= 1.0


class TestCycleHealing:
    def test_neighbors_form_a_cycle(self):
        healer = CycleHealing.from_edges([(0, i) for i in range(1, 6)])
        healer.delete(0)
        healed = healer.actual_graph()
        assert nx.is_connected(healed)
        assert all(d == 2 for _, d in healed.degree())

    def test_two_neighbors_single_edge(self):
        healer = CycleHealing.from_edges([(0, 1), (0, 2)])
        healer.delete(0)
        assert healer.actual_graph().number_of_edges() == 1

    def test_degree_increase_is_moderate(self, power_law_60):
        healer = CycleHealing.from_graph(power_law_60)
        for victim in sorted(healer.alive_nodes)[:30]:
            if healer.num_alive > 2:
                healer.delete(victim)
        # Cycle healing adds at most 2 edges per adjacent deletion, so the
        # factor stays far below the clique healer's blow-up even though it
        # is not bounded by the Forgiving Graph's constant.
        assert healer.degree_increase_factor() <= 8.0

    def test_stretch_can_blow_up_on_repeated_hub_deletion(self):
        """The weakness Theorem 2 predicts: the ring around the hole keeps growing."""
        star = make_graph("star", 64)
        healer = CycleHealing.from_graph(star)
        healer.delete(0)
        healed = healer.actual_graph()
        # survivors form one large cycle: diameter ~ n/2, while G' distance was 2.
        assert nx.diameter(healed) >= healer.num_alive // 2


class TestCliqueHealing:
    def test_neighbors_form_a_clique(self):
        healer = CliqueHealing.from_edges([(0, i) for i in range(1, 5)])
        healer.delete(0)
        healed = healer.actual_graph()
        assert healed.number_of_edges() == 6  # C(4, 2)

    def test_degree_explosion_on_star(self):
        healer = CliqueHealing.from_graph(make_graph("star", 40))
        healer.delete(0)
        assert healer.degree_increase_factor() >= 30


class TestSurrogateHealing:
    def test_single_surrogate_absorbs_all_edges(self):
        healer = SurrogateHealing.from_edges([(0, i) for i in range(1, 8)])
        healer.delete(0)
        healed = healer.actual_graph()
        degrees = sorted(dict(healed.degree()).values(), reverse=True)
        assert degrees[0] == 6  # one node connected to all others
        assert nx.is_connected(healed)

    def test_no_action_for_single_neighbor(self):
        healer = SurrogateHealing.from_edges([(0, 1), (1, 2)])
        healer.delete(0)
        assert healer.actual_graph().number_of_edges() == 1


class TestForgivingTree:
    def test_spanning_structure_stays_a_forest(self, power_law_60):
        healer = ForgivingTreeHealing.from_graph(power_law_60)
        for victim in sorted(healer.alive_nodes)[:35]:
            if healer.num_alive > 2:
                healer.delete(victim)
        assert nx.is_forest(healer.spanning_tree())

    def test_connectivity_preserved(self, power_law_60):
        healer = ForgivingTreeHealing.from_graph(power_law_60)
        for victim in sorted(healer.alive_nodes)[:35]:
            if healer.num_alive > 2:
                healer.delete(victim)
        assert nx.is_connected(healer.actual_graph())

    def test_degree_overhead_is_small(self, power_law_60):
        healer = ForgivingTreeHealing.from_graph(power_law_60)
        for victim in sorted(healer.alive_nodes)[:35]:
            if healer.num_alive > 2:
                healer.delete(victim)
        g_prime = healer.g_prime_view()
        healed = healer.actual_graph()
        overheads = [
            healed.degree[v] - g_prime.degree[v] for v in healer.alive_nodes
        ]
        # The Forgiving Tree promises an additive O(1) overhead; our
        # reproduction stays within a small constant as well.
        assert max(overheads) <= 6

    def test_hub_deletion_keeps_local_distances_logarithmic(self):
        healer = ForgivingTreeHealing.from_graph(make_graph("star", 65))
        healer.delete(0)
        healed = healer.actual_graph()
        assert nx.is_connected(healed)
        assert nx.diameter(healed) <= 16  # ~2 log2(64)

    def test_insert_attaches_to_tree(self):
        healer = ForgivingTreeHealing.from_edges([(0, 1), (1, 2)])
        healer.insert(9, attach_to=[2, 0])
        assert 9 in healer.spanning_tree()
        assert healer.spanning_tree().degree[9] == 1

    def test_helper_roles_tracked(self):
        healer = ForgivingTreeHealing.from_graph(make_graph("star", 16))
        healer.delete(0)
        roles = healer.helper_roles()
        assert sum(roles.values()) >= 1
        assert all(node in healer.alive_nodes for node in roles)


class TestRegistry:
    def test_available_healers_contains_all(self):
        names = available_healers()
        assert "forgiving_graph" in names
        assert {"no_heal", "cycle_heal", "clique_heal", "surrogate_heal", "forgiving_tree"} <= set(names)

    def test_make_healer_builds_working_objects(self, small_er):
        for name in available_healers():
            healer = make_healer(name, small_er)
            victim = sorted(healer.alive_nodes)[0]
            healer.delete(victim)
            assert not healer.is_alive(victim)

    def test_make_healer_does_not_mutate_input(self, small_er):
        edges_before = set(small_er.edges)
        healer = make_healer("clique_heal", small_er)
        healer.delete(sorted(healer.alive_nodes)[0])
        assert set(small_er.edges) == edges_before

    def test_unknown_healer(self, small_er):
        with pytest.raises(ConfigurationError):
            make_healer("magic_heal", small_er)
