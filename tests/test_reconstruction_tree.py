"""Unit tests for reconstruction trees and the representative mechanism (Section 4.2)."""

import pytest

from repro.core.errors import InvariantViolationError
from repro.core.ports import Port
from repro.core.reconstruction_tree import (
    ReconstructionTree,
    RTHelper,
    RTLeaf,
    compute_haft,
    extract_surviving_complete_trees,
    iter_rt_nodes,
    representative_of,
)


def make_leaves(processors, neighbor="dead"):
    """One trivial leaf per processor, all for edges towards the same dead node."""
    return [RTLeaf(Port(p, neighbor)) for p in processors]


class TestRTLeaf:
    def test_protocol_fields(self):
        leaf = RTLeaf(Port("a", "v"))
        assert leaf.is_leaf
        assert leaf.height == 0
        assert leaf.num_leaves == 1
        assert leaf.processor == "a"

    def test_representative_of_leaf_is_itself(self):
        leaf = RTLeaf(Port("a", "v"))
        assert representative_of(leaf) is leaf


class TestComputeHaft:
    def test_single_leaf(self):
        (leaf,) = make_leaves(["a"])
        root, helpers = compute_haft([leaf])
        assert root is leaf
        assert helpers == []

    def test_two_leaves_creates_one_helper(self):
        leaves = make_leaves(["a", "b"])
        root, helpers = compute_haft(leaves)
        assert isinstance(root, RTHelper)
        assert len(helpers) == 1
        assert root.num_leaves == 2
        # The helper is simulated by the representative of one of the leaves
        # and inherits the other leaf as its representative.
        assert root.simulated_by.processor in {"a", "b"}
        assert root.representative.processor in {"a", "b"}
        assert root.representative.port != root.simulated_by

    def test_helper_count_is_leaves_minus_one(self):
        for count in (2, 3, 5, 8, 13):
            leaves = make_leaves([f"p{i}" for i in range(count)])
            root, helpers = compute_haft(leaves)
            assert len(helpers) == count - 1
            assert root.num_leaves == count

    def test_each_processor_simulates_at_most_one_helper(self):
        """Lemma 3 part 1, at the scale of a single merge."""
        leaves = make_leaves([f"p{i}" for i in range(13)])
        _root, helpers = compute_haft(leaves)
        simulators = [helper.simulated_by for helper in helpers]
        assert len(simulators) == len(set(simulators))

    def test_helper_is_ancestor_of_its_own_leaf(self):
        leaves = make_leaves([f"p{i}" for i in range(9)])
        root, helpers = compute_haft(leaves)
        rt = ReconstructionTree.from_merge(root)
        for port, helper in rt.helpers.items():
            node = rt.leaves[port]
            ancestors = []
            while node is not None:
                ancestors.append(node)
                node = node.parent
            assert helper in ancestors

    def test_result_is_valid_rt(self):
        leaves = make_leaves([f"p{i}" for i in range(11)])
        root, _ = compute_haft(leaves)
        ReconstructionTree.from_merge(root).validate()

    def test_busy_port_violation_is_detected(self):
        leaves = make_leaves(["a", "b"])
        with pytest.raises(InvariantViolationError):
            compute_haft(leaves, busy_ports={Port("a", "dead"), Port("b", "dead")})

    def test_merging_unequal_trees(self):
        first_root, _ = compute_haft(make_leaves(["a", "b", "c", "d"]))
        extra = make_leaves(["e"], neighbor="other")[0]
        root, helpers = compute_haft([first_root, extra])
        assert root.num_leaves == 5
        ReconstructionTree.from_merge(root).validate()

    def test_requires_at_least_one_tree(self):
        with pytest.raises(ValueError):
            compute_haft([])

    def test_merge_order_is_invariant_under_id_relabeling(self):
        """Regression: tie-breaking uses the ids' natural total order, not reprs.

        Two isomorphic inputs whose node ids map onto each other by an
        order-preserving relabeling must produce structurally identical
        hafts.  Under the old repr-based comparison, int processors sorted
        lexicographically ("10" < "2"), so relabeling ints to zero-padded
        strings (whose lexicographic order matches the ints' natural order)
        changed the merge order and hence the resulting tree.
        """
        processors = [1, 2, 3, 10, 11, 12, 13]  # repr order != natural order
        relabel = {p: f"{p:04d}" for p in processors}

        def build(ids, neighbor):
            root, _ = compute_haft(make_leaves(ids, neighbor))
            return root

        int_root = build(processors, neighbor=99)
        str_root = build([relabel[p] for p in processors], neighbor=relabel.get(99, "0099"))

        def walk(a, b):
            if isinstance(a, RTLeaf):
                assert isinstance(b, RTLeaf)
                assert relabel[a.port.processor] == b.port.processor
                return
            assert isinstance(b, RTHelper)
            assert relabel[a.simulated_by.processor] == b.simulated_by.processor
            assert relabel[a.representative.port.processor] == b.representative.port.processor
            walk(a.left, b.left)
            walk(a.right, b.right)

        walk(int_root, str_root)


class TestReconstructionTree:
    def test_trivial(self):
        rt = ReconstructionTree.trivial(Port("a", "v"))
        assert rt.size == 1
        assert rt.depth == 0
        rt.validate()

    def test_from_merge_builds_lookup_tables(self):
        root, helpers = compute_haft(make_leaves(["a", "b", "c"]))
        rt = ReconstructionTree.from_merge(root)
        assert set(p.processor for p in rt.leaves) == {"a", "b", "c"}
        assert len(rt.helpers) == 2
        rt.validate()

    def test_processors(self):
        root, _ = compute_haft(make_leaves(["a", "b", "c"]))
        rt = ReconstructionTree.from_merge(root)
        assert rt.processors() == {"a", "b", "c"}

    def test_virtual_edges_count(self):
        root, _ = compute_haft(make_leaves([f"p{i}" for i in range(6)]))
        rt = ReconstructionTree.from_merge(root)
        # A tree over (leaves + helpers) nodes has that many nodes minus one edges.
        total_nodes = rt.size + len(rt.helpers)
        assert len(list(rt.virtual_edges())) == total_nodes - 1

    def test_leaf_distance_bounds(self):
        root, _ = compute_haft(make_leaves([f"p{i}" for i in range(16)]))
        rt = ReconstructionTree.from_merge(root)
        ports = sorted(rt.leaves)
        worst = max(rt.leaf_distance(ports[0], other) for other in ports[1:])
        assert worst <= 2 * rt.depth
        assert rt.depth == 4

    def test_leaf_distance_requires_member_ports(self):
        rt = ReconstructionTree.trivial(Port("a", "v"))
        with pytest.raises(KeyError):
            rt.leaf_distance(Port("a", "v"), Port("zzz", "v"))

    def test_validate_detects_duplicate_leaf_port(self):
        root, _ = compute_haft(make_leaves(["a", "b"]))
        rt = ReconstructionTree.from_merge(root)
        # Corrupt: point another leaf record at the same port.
        duplicate = RTLeaf(Port("a", "dead"))
        rt.leaves[Port("zz", "dead")] = duplicate
        with pytest.raises(InvariantViolationError):
            rt.validate()

    def test_validate_detects_wrong_representative(self):
        root, helpers = compute_haft(make_leaves(["a", "b", "c", "d"]))
        rt = ReconstructionTree.from_merge(root)
        helpers[0].representative = helpers[-1].representative
        with pytest.raises(InvariantViolationError):
            # Either the representative check or the lookup-table check fires.
            rt.validate()


class TestExtractSurvivingCompleteTrees:
    def build_rt(self, processors, neighbor="dead"):
        root, _ = compute_haft(make_leaves(processors, neighbor))
        return ReconstructionTree.from_merge(root)

    def test_deleting_a_leaf_owner_keeps_other_leaves(self):
        rt = self.build_rt(["a", "b", "c", "d"])
        pieces, released = extract_surviving_complete_trees(rt, "c")
        surviving = sorted(
            leaf.port.processor for piece in pieces for leaf in iter_rt_nodes(piece) if isinstance(leaf, RTLeaf)
        )
        assert surviving == ["a", "b", "d"]

    def test_all_pieces_are_complete_and_alive(self):
        rt = self.build_rt([f"p{i}" for i in range(13)])
        pieces, _ = extract_surviving_complete_trees(rt, "p5")
        from repro.core.haft import is_complete

        for piece in pieces:
            assert is_complete(piece)
            for node in iter_rt_nodes(piece):
                owner = node.port.processor if isinstance(node, RTLeaf) else node.simulated_by.processor
                assert owner != "p5"

    def test_released_helpers_do_not_belong_to_dead_processor(self):
        rt = self.build_rt([f"p{i}" for i in range(9)])
        _pieces, released = extract_surviving_complete_trees(rt, "p0")
        assert all(port.processor != "p0" for port in released)

    def test_deleting_sole_leaf_yields_nothing(self):
        rt = self.build_rt(["a"])
        pieces, released = extract_surviving_complete_trees(rt, "a")
        assert pieces == []
        assert released == []

    def test_unrelated_deletion_strips_whole_rt(self):
        rt = self.build_rt(["a", "b", "c"])
        pieces, _released = extract_surviving_complete_trees(rt, "zzz")
        total = sum(piece.num_leaves for piece in pieces)
        assert total == 3

    def test_remerge_after_extraction_is_valid(self):
        rt = self.build_rt([f"p{i}" for i in range(11)])
        pieces, released = extract_surviving_complete_trees(rt, "p3")
        root, _ = compute_haft(pieces)
        merged = ReconstructionTree.from_merge(root)
        merged.validate()
        assert merged.size == 10
