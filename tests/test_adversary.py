"""Unit tests for adversary strategies and attack schedules."""

import pytest

from repro import ForgivingGraph
from repro.adversary import (
    AttackSchedule,
    CutAdversary,
    HighBetweennessDeletion,
    MaxDegreeDeletion,
    MinDegreeDeletion,
    PreferentialInsertion,
    RandomDeletion,
    RandomInsertion,
    ScriptedDeletion,
    SingleLinkInsertion,
    StarInsertion,
    available_deletion_strategies,
    churn_schedule,
    deletion_only_schedule,
    insertion_burst_schedule,
    make_deletion_strategy,
)
from repro.core.errors import ConfigurationError
from repro.generators import make_graph


@pytest.fixture
def healer():
    return ForgivingGraph.from_graph(make_graph("power_law", 40, seed=1))


class TestDeletionStrategies:
    def test_random_deletion_picks_alive_node(self, healer):
        victim = RandomDeletion(seed=0).choose_victim(healer)
        assert victim in healer.alive_nodes

    def test_random_deletion_is_deterministic_given_seed(self, healer):
        assert RandomDeletion(seed=3).choose_victim(healer) == RandomDeletion(seed=3).choose_victim(healer)

    def test_max_degree_targets_the_hub(self):
        star = make_graph("star", 20)
        healer = ForgivingGraph.from_graph(star)
        assert MaxDegreeDeletion().choose_victim(healer) == 0

    def test_min_degree_targets_a_leaf(self):
        star = make_graph("star", 20)
        healer = ForgivingGraph.from_graph(star)
        assert MinDegreeDeletion().choose_victim(healer) != 0

    def test_betweenness_targets_the_bridge(self):
        # Two cliques joined by node 100: it carries all cross-paths.
        edges = [(i, j) for i in range(5) for j in range(i + 1, 5)]
        edges += [(10 + i, 10 + j) for i in range(5) for j in range(i + 1, 5)]
        edges += [(0, 100), (100, 10)]
        healer = ForgivingGraph.from_edges(edges)
        assert HighBetweennessDeletion(seed=0).choose_victim(healer) == 100

    def test_cut_adversary_prefers_articulation_points(self):
        healer = ForgivingGraph.from_edges([(0, 1), (1, 2), (2, 3)])
        victim = CutAdversary().choose_victim(healer)
        assert victim in {1, 2}

    def test_cut_adversary_falls_back_to_max_degree(self):
        healer = ForgivingGraph.from_graph(make_graph("ring", 10))
        assert CutAdversary().choose_victim(healer) in healer.alive_nodes

    def test_scripted_deletion_follows_script_and_skips_dead(self, healer):
        strategy = ScriptedDeletion([0, 1, 2])
        first = strategy.choose_victim(healer)
        assert first == 0
        healer.delete(0)
        healer.delete(1)
        assert strategy.choose_victim(healer) == 2

    def test_scripted_deletion_exhausts(self, healer):
        strategy = ScriptedDeletion([0])
        strategy.choose_victim(healer)
        assert strategy.choose_victim(healer) is None

    def test_registry(self):
        for name in available_deletion_strategies():
            assert make_deletion_strategy(name, seed=0) is not None
        with pytest.raises(ConfigurationError):
            make_deletion_strategy("nuke_everything")


class TestInsertionStrategies:
    def test_random_insertion_count(self, healer):
        picks = RandomInsertion(k=3, seed=0).choose_attachments(healer)
        assert len(picks) == 3
        assert len(set(picks)) == 3
        assert all(p in healer.alive_nodes for p in picks)

    def test_random_insertion_requires_positive_k(self):
        with pytest.raises(ConfigurationError):
            RandomInsertion(k=0)

    def test_preferential_insertion_prefers_hubs(self):
        star = make_graph("star", 50)
        healer = ForgivingGraph.from_graph(star)
        hits = sum(
            1
            for _ in range(30)
            if 0 in PreferentialInsertion(k=1, seed=_).choose_attachments(healer)
        )
        assert hits > 5  # the hub carries roughly a third of the attachment weight

    def test_single_link_insertion(self, healer):
        assert len(SingleLinkInsertion(seed=0).choose_attachments(healer)) == 1

    def test_star_insertion_targets_current_hub(self):
        star = make_graph("star", 30)
        healer = ForgivingGraph.from_graph(star)
        assert StarInsertion().choose_attachments(healer) == [0]


class TestSchedules:
    def test_deletion_only_schedule_runs_expected_steps(self, healer):
        schedule = deletion_only_schedule(steps=10, seed=0)
        events = schedule.run(healer)
        assert len(events) == 10
        assert all(event.kind == "delete" for event in events)

    def test_min_survivors_is_respected(self):
        healer = ForgivingGraph.from_graph(make_graph("ring", 8))
        schedule = deletion_only_schedule(steps=50, seed=0, min_survivors=3)
        schedule.run(healer)
        assert healer.num_alive >= 3

    def test_pure_deletion_schedule_stops_at_floor_without_inserting(self):
        """A delete_probability=1.0 schedule ends at the survivor floor; it
        must never fall back to insertions (that would be a churn run)."""
        healer = ForgivingGraph.from_graph(make_graph("ring", 8))
        schedule = deletion_only_schedule(steps=50, seed=0, min_survivors=3)
        events = schedule.run(healer)
        assert all(event.kind == "delete" for event in events)
        assert len(events) == 5  # 8 nodes down to the floor of 3, then stop
        assert healer.num_alive == 3

    def test_churn_schedule_mixes_kinds(self, healer):
        schedule = churn_schedule(steps=40, delete_probability=0.5, seed=1)
        events = schedule.run(healer)
        kinds = {event.kind for event in events}
        assert kinds == {"insert", "delete"}

    def test_insertion_burst_only_inserts(self, healer):
        before = healer.num_alive
        events = insertion_burst_schedule(steps=15, seed=2).run(healer)
        assert all(event.kind == "insert" for event in events)
        assert healer.num_alive == before + 15

    def test_on_event_callback_sees_every_move(self, healer):
        seen = []
        schedule = churn_schedule(steps=12, delete_probability=0.4, seed=3)
        schedule.run(healer, on_event=lambda event, h: seen.append(event.step))
        assert len(seen) == 12

    def test_inserted_ids_do_not_collide(self, healer):
        events = insertion_burst_schedule(steps=10, seed=4).run(healer)
        inserted = [event.node for event in events]
        assert len(inserted) == len(set(inserted))

    def test_victim_degree_recorded(self):
        healer = ForgivingGraph.from_graph(make_graph("star", 10))
        schedule = AttackSchedule(steps=1, deletion_strategy=MaxDegreeDeletion(), seed=0)
        (event,) = schedule.run(healer)
        assert event.victim_degree == 9

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            AttackSchedule(steps=-1)
        with pytest.raises(ConfigurationError):
            AttackSchedule(steps=1, delete_probability=1.5)
