"""Adversarial corner cases: the situations most likely to break the data structure.

Each test encodes a specific attack pattern chosen to stress one part of the
mechanism (representative exhaustion, repeated merging, disconnected ``G'``,
heterogeneous node identifiers, immediate re-attack of freshly healed areas).
"""

import math

import networkx as nx
from repro import ForgivingGraph
from repro.analysis import check_connectivity_preserved, stretch_report
from repro.generators import make_graph


class TestRepeatedReAttack:
    def test_delete_every_rt_leaf_owner_in_turn(self):
        """Keep deleting survivors that own RT leaves: RTs must keep collapsing cleanly."""
        fg = ForgivingGraph.from_edges([(0, i) for i in range(1, 17)], check_invariants=True)
        fg.delete(0)
        # Now repeatedly delete the processor owning the first leaf of the RT.
        for _ in range(12):
            rts = fg.reconstruction_trees()
            if not rts or fg.num_alive <= 2:
                break
            victim = sorted(rts[0].processors(), key=repr)[0]
            fg.delete(victim)
        assert check_connectivity_preserved(fg)

    def test_alternating_insert_delete_on_same_region(self):
        """The adversary keeps re-attacking the area it just forced to heal."""
        fg = ForgivingGraph.from_graph(make_graph("ring", 12), check_invariants=True)
        fresh = 100
        for round_number in range(15):
            victim = sorted(fg.alive_nodes, key=repr)[0]
            if fg.num_alive > 2:
                fg.delete(victim)
            anchors = sorted(fg.alive_nodes, key=repr)[:2]
            fg.insert(fresh, attach_to=anchors)
            # Immediately kill the newcomer half of the time.
            if round_number % 2 == 0:
                fg.delete(fresh)
            fresh += 1
        assert check_connectivity_preserved(fg)
        assert fg.degree_increase_factor() <= 4.0 + 1e-9

    def test_drain_a_clique_completely(self):
        """Deleting a clique node by node exercises maximal RT merging."""
        n = 10
        edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
        fg = ForgivingGraph.from_edges(edges, check_invariants=True)
        for victim in range(n - 2):
            fg.delete(victim)
        healed = fg.actual_graph()
        assert nx.is_connected(healed)
        assert fg.degree_increase_factor() <= 4.0 + 1e-9


class TestDisconnectedGPrime:
    def test_two_islands_heal_independently(self):
        edges = [(0, 1), (1, 2), (2, 0)] + [(10, 11), (11, 12), (12, 10)]
        fg = ForgivingGraph.from_edges(edges, check_invariants=True)
        fg.delete(1)
        fg.delete(11)
        healed = fg.actual_graph()
        assert nx.has_path(healed, 0, 2)
        assert nx.has_path(healed, 10, 12)
        assert not nx.has_path(healed, 0, 10)  # healing never bridges G' components

    def test_island_reduced_to_single_node(self):
        edges = [(0, 1)] + [(10, 11), (11, 12)]
        fg = ForgivingGraph.from_edges(edges, check_invariants=True)
        fg.delete(1)
        fg.delete(11)
        assert check_connectivity_preserved(fg)
        assert fg.is_alive(0) and fg.is_alive(10) and fg.is_alive(12)


class TestHeterogeneousIdentifiers:
    def test_mixed_node_id_types(self):
        edges = [("gateway", 1), (1, (2, "rack")), ((2, "rack"), "gateway"), (1, 7)]
        fg = ForgivingGraph.from_edges(edges, check_invariants=True)
        fg.delete(1)
        fg.insert("new-node", attach_to=["gateway", 7])
        fg.delete("gateway")
        assert check_connectivity_preserved(fg)
        assert fg.degree_increase_factor() <= 4.0 + 1e-9

    def test_string_only_network(self):
        names = [f"peer-{i}" for i in range(12)]
        edges = [(names[i], names[(i + 1) % 12]) for i in range(12)]
        fg = ForgivingGraph.from_edges(edges, check_invariants=True)
        for victim in names[:6]:
            fg.delete(victim)
        assert check_connectivity_preserved(fg)


class TestWorstCaseStretchPressure:
    def test_double_star_bridge(self):
        """Two hubs joined by an edge, both deleted back to back."""
        edges = [("hub_a", f"a{i}") for i in range(16)]
        edges += [("hub_b", f"b{i}") for i in range(16)]
        edges += [("hub_a", "hub_b")]
        fg = ForgivingGraph.from_edges(edges, check_invariants=True)
        fg.delete("hub_a")
        fg.delete("hub_b")
        report = stretch_report(fg)
        assert report.max_stretch <= math.log2(fg.nodes_ever) + 1e-9
        assert check_connectivity_preserved(fg)

    def test_long_path_centre_collapse(self):
        """Delete the middle half of a long path: distances rely entirely on RTs."""
        n = 40
        fg = ForgivingGraph.from_edges([(i, i + 1) for i in range(n - 1)], check_invariants=True)
        for victim in range(n // 4, 3 * n // 4):
            fg.delete(victim)
        report = stretch_report(fg)
        assert report.max_stretch <= math.log2(fg.nodes_ever) + 1e-9

    def test_binary_tree_root_path_attack(self):
        """Delete the whole root-to-leaf spine of a binary tree."""
        fg = ForgivingGraph.from_graph(make_graph("binary_tree", 63), check_invariants=True)
        victim = 0
        while victim < 63 and fg.num_alive > 2:
            fg.delete(victim)
            victim = 2 * victim + 1
        assert check_connectivity_preserved(fg)
        assert stretch_report(fg).max_stretch <= math.log2(fg.nodes_ever) + 1e-9
