"""Unit tests for the ForgivingGraph engine: construction, insertion, deletion, views."""

import networkx as nx
import pytest

from repro import ForgivingGraph
from repro.core.errors import (
    DeletedNodeError,
    DuplicateNodeError,
    InvalidEdgeError,
    UnknownNodeError,
)


class TestConstruction:
    def test_from_edges(self):
        fg = ForgivingGraph.from_edges([(0, 1), (1, 2)])
        assert fg.num_alive == 3
        assert fg.nodes_ever == 3
        assert fg.actual_graph().number_of_edges() == 2

    def test_from_edges_with_isolated_nodes(self):
        fg = ForgivingGraph.from_edges([(0, 1)], nodes=[5, 6])
        assert fg.num_alive == 4
        assert fg.is_alive(5)

    def test_from_graph(self, small_er):
        fg = ForgivingGraph.from_graph(small_er)
        assert fg.num_alive == small_er.number_of_nodes()
        assert set(fg.actual_graph().edges) == set(small_er.edges)

    def test_rejects_self_loop(self):
        with pytest.raises(InvalidEdgeError):
            ForgivingGraph.from_edges([(1, 1)])

    def test_contains_and_len(self):
        fg = ForgivingGraph.from_edges([(0, 1), (1, 2)])
        assert 0 in fg
        assert 99 not in fg
        assert len(fg) == 3

    def test_repr_mentions_counts(self):
        fg = ForgivingGraph.from_edges([(0, 1)])
        assert "alive=2" in repr(fg)


class TestViews:
    def test_g_prime_is_a_copy(self):
        fg = ForgivingGraph.from_edges([(0, 1), (1, 2)])
        view = fg.g_prime_view()
        view.add_edge(10, 11)
        assert fg.nodes_ever == 3

    def test_actual_graph_is_a_copy(self):
        fg = ForgivingGraph.from_edges([(0, 1), (1, 2)])
        view = fg.actual_graph()
        view.remove_node(0)
        assert fg.is_alive(0)

    def test_g_prime_keeps_deleted_nodes(self):
        fg = ForgivingGraph.from_edges([(0, 1), (1, 2)])
        fg.delete(1)
        assert 1 in fg.g_prime_view()
        assert 1 not in fg.actual_graph()

    def test_g_prime_degree(self):
        fg = ForgivingGraph.from_edges([(0, 1), (0, 2), (0, 3)])
        assert fg.g_prime_degree(0) == 3
        fg.delete(1)
        assert fg.g_prime_degree(0) == 3  # G' ignores deletions

    def test_g_prime_degree_unknown_node(self):
        fg = ForgivingGraph.from_edges([(0, 1)])
        with pytest.raises(UnknownNodeError):
            fg.g_prime_degree(42)

    def test_virtual_graph_labels(self):
        fg = ForgivingGraph.from_edges([(0, 1), (1, 2)], check_invariants=True)
        fg.delete(1)
        virtual = fg.virtual_graph()
        kinds = {label[0] for label in virtual.nodes}
        assert "real" in kinds and "leaf" in kinds
        for label, data in virtual.nodes(data=True):
            assert "processor" in data


class TestInsertion:
    def test_insert_adds_to_both_views(self):
        fg = ForgivingGraph.from_edges([(0, 1)])
        fg.insert(2, attach_to=[0, 1])
        assert fg.is_alive(2)
        assert fg.actual_graph().degree[2] == 2
        assert fg.g_prime_view().degree[2] == 2

    def test_insert_isolated(self):
        fg = ForgivingGraph.from_edges([(0, 1)])
        fg.insert(2)
        assert fg.is_alive(2)
        assert fg.actual_graph().degree[2] == 0

    def test_insert_duplicate_rejected(self):
        fg = ForgivingGraph.from_edges([(0, 1)])
        with pytest.raises(DuplicateNodeError):
            fg.insert(0)

    def test_insert_reusing_deleted_id_rejected(self):
        fg = ForgivingGraph.from_edges([(0, 1), (1, 2)])
        fg.delete(2)
        with pytest.raises(DeletedNodeError):
            fg.insert(2)

    def test_insert_attach_to_dead_node_rejected(self):
        fg = ForgivingGraph.from_edges([(0, 1), (1, 2)])
        fg.delete(1)
        with pytest.raises(UnknownNodeError):
            fg.insert(9, attach_to=[1])

    def test_insert_attach_to_self_rejected(self):
        fg = ForgivingGraph.from_edges([(0, 1)])
        with pytest.raises(InvalidEdgeError):
            fg.insert(9, attach_to=[9])

    def test_insert_duplicate_attachments_collapse(self):
        fg = ForgivingGraph.from_edges([(0, 1)])
        fg.insert(2, attach_to=[0, 0, 0])
        assert fg.actual_graph().degree[2] == 1

    def test_insertion_is_logged(self):
        fg = ForgivingGraph.from_edges([(0, 1)])
        fg.insert(2, attach_to=[0])
        event = fg.events[-1]
        assert event.kind == "insert"
        assert event.node == 2
        assert event.attached_to == (0,)


class TestDeletion:
    def test_delete_removes_from_actual(self):
        fg = ForgivingGraph.from_edges([(0, 1), (1, 2)], check_invariants=True)
        fg.delete(1)
        assert not fg.is_alive(1)
        assert 1 not in fg.actual_graph()

    def test_delete_unknown_node(self):
        fg = ForgivingGraph.from_edges([(0, 1)])
        with pytest.raises(UnknownNodeError):
            fg.delete(42)

    def test_double_delete_rejected(self):
        fg = ForgivingGraph.from_edges([(0, 1), (1, 2)])
        fg.delete(1)
        with pytest.raises(DeletedNodeError):
            fg.delete(1)

    def test_delete_isolated_node(self):
        fg = ForgivingGraph.from_edges([(0, 1)], nodes=[5], check_invariants=True)
        report = fg.delete(5)
        assert report.degree_in_g_prime == 0
        assert report.new_rt_size == 0

    def test_delete_leaf_node(self):
        fg = ForgivingGraph.from_edges([(0, 1), (1, 2)], check_invariants=True)
        report = fg.delete(0)
        # The only neighbour (1) has nobody to be reconnected to: trivial RT.
        assert report.new_rt_size == 1
        assert report.helpers_created == 0

    def test_repair_report_fields(self):
        fg = ForgivingGraph.from_edges([(0, i) for i in range(1, 6)], check_invariants=True)
        report = fg.delete(0)
        assert report.deleted_node == 0
        assert report.degree_in_g_prime == 5
        assert report.new_rt_size == 5
        assert report.helpers_created == 4
        assert report.merged_complete_trees == 5

    def test_deletion_is_logged_with_report(self):
        fg = ForgivingGraph.from_edges([(0, 1), (1, 2)])
        fg.delete(1)
        event = fg.events[-1]
        assert event.kind == "delete"
        assert event.report is not None
        assert event.report.deleted_node == 1

    def test_connectivity_preserved_after_cut_vertex_deletion(self):
        # 1 is a cut vertex of the path 0-1-2.
        fg = ForgivingGraph.from_edges([(0, 1), (1, 2)], check_invariants=True)
        fg.delete(1)
        healed = fg.actual_graph()
        assert nx.has_path(healed, 0, 2)

    def test_deleting_all_but_one_node(self):
        fg = ForgivingGraph.from_edges([(i, i + 1) for i in range(5)], check_invariants=True)
        for node in range(5):
            fg.delete(node)
        assert fg.num_alive == 1
        assert fg.actual_graph().number_of_edges() == 0

    def test_degree_increase_factor_of_specific_node(self):
        fg = ForgivingGraph.from_edges([(0, 1), (1, 2), (2, 0)], check_invariants=True)
        fg.delete(0)
        assert fg.degree_increase_factor(1) >= 0.5
        assert fg.degree_increase_factor() <= 4.0
