"""Property-based tests (hypothesis) for half-full trees — Lemmas 1 and 2."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.haft import (
    binary_decomposition,
    build_haft,
    depth,
    haft_shape_signature,
    is_haft,
    leaves,
    merge,
    primary_roots,
    strip,
    validate_haft,
)

sizes = st.integers(min_value=1, max_value=600)
small_sizes = st.integers(min_value=1, max_value=120)


@given(sizes)
@settings(max_examples=80, deadline=None)
def test_built_haft_is_always_valid(size):
    validate_haft(build_haft(list(range(size))))


@given(sizes)
@settings(max_examples=80, deadline=None)
def test_depth_is_ceil_log2(size):
    root = build_haft(list(range(size)))
    expected = math.ceil(math.log2(size)) if size > 1 else 0
    assert depth(root) == expected


@given(sizes)
@settings(max_examples=80, deadline=None)
def test_primary_root_sizes_are_binary_decomposition(size):
    root = build_haft(list(range(size)))
    assert [node.num_leaves for node in primary_roots(root)] == binary_decomposition(size)


@given(sizes)
@settings(max_examples=60, deadline=None)
def test_strip_partitions_leaves(size):
    payloads = list(range(size))
    pieces = strip(build_haft(payloads))
    collected = sorted(leaf.payload for piece in pieces for leaf in leaves(piece))
    assert collected == payloads


@given(sizes)
@settings(max_examples=60, deadline=None)
def test_haft_shape_is_unique_per_size(size):
    a = haft_shape_signature(build_haft(list(range(size))))
    b = haft_shape_signature(build_haft([str(i) for i in range(size)]))
    assert a == b


@given(st.lists(small_sizes, min_size=1, max_size=6))
@settings(max_examples=60, deadline=None)
def test_merge_behaves_like_binary_addition(size_list):
    """Lemma 2 / Figure 5: merge(h1..hk) == haft(sum of leaf counts)."""
    offset = 0
    hafts = []
    for size in size_list:
        hafts.append(build_haft(list(range(offset, offset + size))))
        offset += size
    merged = merge(hafts)
    total = sum(size_list)
    assert is_haft(merged)
    assert merged.num_leaves == total
    assert haft_shape_signature(merged) == haft_shape_signature(build_haft(list(range(total))))


@given(st.lists(small_sizes, min_size=1, max_size=6))
@settings(max_examples=60, deadline=None)
def test_merge_preserves_payload_multiset(size_list):
    offset = 0
    hafts = []
    expected = []
    for size in size_list:
        payloads = list(range(offset, offset + size))
        expected.extend(payloads)
        hafts.append(build_haft(payloads))
        offset += size
    merged = merge(hafts)
    assert sorted(leaf.payload for leaf in leaves(merged)) == sorted(expected)


@given(sizes)
@settings(max_examples=40, deadline=None)
def test_strip_then_merge_roundtrip(size):
    """Stripping a haft and re-merging the pieces reproduces the same shape."""
    original_signature = haft_shape_signature(build_haft(list(range(size))))
    pieces = strip(build_haft(list(range(size))))
    rebuilt = merge(pieces)
    assert haft_shape_signature(rebuilt) == original_signature
