"""Equivalence of the incrementally-maintained healed graph with the rebuild.

The engine applies per-repair edge deltas to a persistent ``G`` instead of
rebuilding it after every deletion; ``_rebuild_actual()`` is the retained
from-scratch builder.  These tests drive randomized churn and adversarial
worst cases and assert after *every* event that the maintained graph matches
the rebuild exactly — nodes, edges and degrees.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import ForgivingGraph
from repro.adversary.schedule import churn_schedule, deletion_only_schedule
from repro.adversary.strategies import make_deletion_strategy
from repro.generators import make_graph


def assert_incremental_matches_rebuild(fg: ForgivingGraph) -> None:
    maintained = fg.actual_view()
    rebuilt = fg._rebuild_actual()
    assert set(maintained.nodes) == set(rebuilt.nodes)
    assert {frozenset(e) for e in maintained.edges} == {frozenset(e) for e in rebuilt.edges}
    assert {v: maintained.degree[v] for v in maintained} == {
        v: rebuilt.degree[v] for v in rebuilt
    }
    # the edge-multiplicity ledger matches the edge set it is meant to index
    assert len(fg._edge_mult) == maintained.number_of_edges()


@pytest.mark.parametrize("topology", ["erdos_renyi", "power_law", "star", "path"])
@pytest.mark.parametrize("strategy", ["random", "max_degree", "min_degree"])
def test_churn_equivalence_after_every_event(topology, strategy):
    """Randomized mixed churn: delta-maintained G == rebuild after every event."""
    fg = ForgivingGraph.from_graph(make_graph(topology, 40, seed=3))
    schedule = churn_schedule(
        steps=60,
        delete_probability=0.7,
        deletion_strategy=make_deletion_strategy(strategy, seed=5),
        seed=7,
    )
    schedule.run(fg, on_event=lambda _event, healer: assert_incremental_matches_rebuild(healer))
    assert_incremental_matches_rebuild(fg)


def test_deletion_only_equivalence_down_to_minimum():
    """Pure deletions down to two survivors keep the maintained G exact."""
    fg = ForgivingGraph.from_graph(make_graph("erdos_renyi", 50, seed=11))
    schedule = deletion_only_schedule(steps=48, seed=13)
    schedule.run(fg, on_event=lambda _event, healer: assert_incremental_matches_rebuild(healer))
    assert fg.num_alive == 2
    assert_incremental_matches_rebuild(fg)


def test_repeated_hub_deletion_equivalence():
    """The Theorem 2 star scenario: delete every hub replacement in turn."""
    fg = ForgivingGraph.from_graph(make_graph("star", 33, seed=0))
    victims = sorted(fg.alive_nodes)
    for victim in victims[: len(victims) - 2]:
        if fg.is_alive(victim):
            fg.delete(victim)
            assert_incremental_matches_rebuild(fg)


def test_insertions_and_reconnections_equivalence():
    """Insertions attached to survivors of earlier deletions stay consistent."""
    fg = ForgivingGraph.from_edges([(0, 1), (1, 2), (2, 3), (3, 0)])
    fg.delete(1)
    assert_incremental_matches_rebuild(fg)
    fg.insert(10, attach_to=[0, 2])
    assert_incremental_matches_rebuild(fg)
    fg.delete(2)
    assert_incremental_matches_rebuild(fg)
    fg.insert(11, attach_to=[10])
    fg.insert(12, attach_to=[10, 11, 3])
    assert_incremental_matches_rebuild(fg)
    fg.delete(10)
    assert_incremental_matches_rebuild(fg)


def test_checked_engine_random_churn():
    """check_invariants() (which embeds the cross-check) holds through churn."""
    fg = ForgivingGraph.from_graph(
        make_graph("erdos_renyi", 30, seed=21), check_invariants=True
    )
    rng = np.random.default_rng(2)
    fresh = 1000
    for _ in range(50):
        alive = sorted(fg.alive_nodes)
        if len(alive) > 3 and rng.random() < 0.7:
            fg.delete(alive[int(rng.integers(0, len(alive)))])
        else:
            picks = rng.choice(len(alive), size=min(3, len(alive)), replace=False)
            fg.insert(fresh, attach_to=[alive[int(i)] for i in picks])
            fresh += 1


def test_fast_accessors_agree_with_rebuild():
    """actual_degree / actual_edges / views read the same graph the rebuild gives."""
    fg = ForgivingGraph.from_graph(make_graph("erdos_renyi", 30, seed=9))
    schedule = deletion_only_schedule(steps=12, seed=1)
    schedule.run(fg)
    rebuilt = fg._rebuild_actual()
    assert fg.actual_edges() == set(rebuilt.edges) or {
        frozenset(e) for e in fg.actual_edges()
    } == {frozenset(e) for e in rebuilt.edges}
    for node in fg.alive_nodes:
        assert fg.actual_degree(node) == (rebuilt.degree[node] if node in rebuilt else 0)
    # views are zero-copy: they reflect subsequent engine mutations
    view = fg.actual_view()
    victim = sorted(fg.alive_nodes)[0]
    fg.delete(victim)
    assert victim not in view
    with pytest.raises(Exception):
        view.add_node("nope")
