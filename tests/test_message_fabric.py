"""PR 10 zero-allocation message fabric: slots, pooling, packing, accounting.

The fabric's contract is *bit-exact invisibility*: recycling a message
instance, folding several same-link messages into one packed carrier, or
deferring per-send accounting into a round tally may never change a cost
report, a healed link set, or a metrics counter.  These tests pin that
contract, plus the allocation budget itself (a pooled steady-state flood
must allocate ~zero message objects per round).
"""

import gc

import pytest

from repro.adversary import MaxDegreeDeletion
from repro.distributed import (
    DeletionNotice,
    DistributedForgivingGraph,
    Network,
    Probe,
    Processor,
    fault_schedule,
)
from repro.distributed.faults import DELIVERY_PRESETS
from repro.distributed.messages import (
    Digest,
    DigestRequest,
    Message,
    PackedPayloads,
)
from repro.generators import make_graph

FABRIC_PRESETS = sorted(DELIVERY_PRESETS) + ["byzantine"]


def flood_network(width: int = 8):
    network = Network(strict_links=False)
    for p in range(width):
        network.add_processor(p)
    return network


def run_flood(network, rounds: int, width: int = 8, burst: int = 4) -> None:
    for _ in range(rounds):
        for p in range(width):
            receiver = (p + 1) % width
            for _ in range(burst):
                network.send(network.new(DeletionNotice, p, receiver, -1))
        network.deliver_round()


def replay_attack(preset: str, *, pooled: bool, packed: bool, batched: bool, n: int = 40):
    """Delete-heavy attack under ``preset``; returns (cost keys, healed links)."""
    graph = make_graph("power_law", n, seed=7)
    healer = DistributedForgivingGraph.from_graph(
        graph, fault_schedule=fault_schedule(preset, seed=7)
    )
    network = healer.network
    network.pooled = pooled
    network.packed_batching = packed
    network.batched_accounting = batched
    strategy = MaxDegreeDeletion()
    for _ in range(n // 2):
        victim = strategy.choose_victim(healer)
        if victim is None or healer.num_alive <= 3:
            break
        healer.delete(victim)
    keys = [
        (r.deleted_node, r.messages, r.bits, r.rounds, r.max_messages_per_node)
        for r in healer.cost_reports
    ]
    links = frozenset(frozenset(link) for link in network.iter_links())
    return keys, links


class TestSlots:
    def test_messages_have_no_dict(self):
        for message in (
            DeletionNotice(sender=1, receiver=2, deleted=3),
            Probe(sender=1, receiver=2, deleted=3),
            Digest(sender=1, receiver=2, deleted=3),
            DigestRequest(sender=1, receiver=2, deleted=3),
            PackedPayloads(sender=1, receiver=2),
        ):
            assert not hasattr(message, "__dict__")

    def test_kind_and_sealed_stay_class_attributes(self):
        assert "kind" not in Message.__slots__
        assert DeletionNotice.kind == "DeletionNotice"
        assert Digest.sealed is True
        assert DeletionNotice.sealed is False

    def test_packable_payload_fields_cover_all_slots(self):
        for cls in (DeletionNotice, Probe, Digest, DigestRequest):
            assert cls.packable
            assert set(cls.__slots__) == set(cls._payload_fields)

    def test_reset_matches_init_for_every_field(self):
        constructed = Probe(sender=1, receiver=2, deleted=3, hops=4, rt_index=1)
        recycled = Probe(sender=9, receiver=9, deleted=9, hops=9, rt_index=0)
        recycled.byz_origin = 5
        recycled._seal = 123
        recycled.pinned = True
        recycled.reset(sender=1, receiver=2, deleted=3, hops=4, rt_index=1)
        for slot in ("sender", "receiver", "payload_words", "byz_origin",
                     "_seal", "pinned", "deleted", "target_port", "hops",
                     "rt_index"):
            assert getattr(recycled, slot) == getattr(constructed, slot), slot


class TestPool:
    def test_pool_recycles_released_instances(self):
        network = flood_network()
        message = network.new(DeletionNotice, 0, 1, -1)
        network.release(message)
        assert network.new(DeletionNotice, 0, 1, -1) is message

    def test_pool_reuse_resets_seal_cache(self):
        network = flood_network()
        message = network.new(Digest, 0, 1, -1)
        _ = message.seal  # force the lazy seal into its cache slot
        assert message._seal is not None
        network.release(message)
        again = network.new(Digest, 0, 1, -1)
        assert again is message
        assert again._seal is None

    def test_pinned_instances_are_never_recycled(self):
        network = flood_network()
        message = network.new(DeletionNotice, 0, 1, -1)
        message.pinned = True
        network.release(message)
        assert network.new(DeletionNotice, 0, 1, -1) is not message

    def test_unpooled_twin_never_recycles(self):
        network = flood_network()
        network.pooled = False
        message = network.new(DeletionNotice, 0, 1, -1)
        network.release(message)
        assert network.new(DeletionNotice, 0, 1, -1) is not message

    def test_steady_state_flood_allocates_no_message_objects(self):
        network = flood_network()
        burst = 4
        warmup = Processor.RECEIVE_TRACE_LIMIT // burst + 8
        run_flood(network, warmup, burst=burst)
        gc.collect()
        before = sum(1 for obj in gc.get_objects() if isinstance(obj, Message))
        run_flood(network, 30, burst=burst)
        gc.collect()
        after = sum(1 for obj in gc.get_objects() if isinstance(obj, Message))
        assert after - before == 0

    def test_message_ids_are_per_network_deterministic(self):
        def delivered_ids():
            network = flood_network(width=4)
            seen = []
            run_flood(network, 3, width=4, burst=2)
            for p in network.processors.values():
                seen.extend(m.message_id for m in p.received)
            return seen

        assert delivered_ids() == delivered_ids()


class TestPackedCarrier:
    def test_same_link_burst_folds_into_one_carrier(self):
        network = flood_network()
        for _ in range(3):
            network.send(network.new(DeletionNotice, 0, 1, -1))
        assert len(network._outbox) == 1
        carrier = network._outbox[0]
        assert type(carrier) is PackedPayloads
        assert carrier.count == 3
        assert carrier.part_cls is DeletionNotice

    def test_carrier_payload_words_is_exact_sum_of_parts(self):
        network = flood_network()
        words = []
        for ports in ((), (1,), (1, 2, 3)):
            message = network.new(DigestRequest, 0, 1, -1, tuple(ports))
            words.append(message.payload_words)
            network.send(message)
        carrier = network._outbox[0]
        assert carrier.payload_words == sum(words)

    def test_in_flight_counts_logical_parts_not_carriers(self):
        network = flood_network()
        for _ in range(5):
            network.send(network.new(DeletionNotice, 0, 1, -1))
        assert len(network._outbox) == 1
        assert network.pending_messages == 5
        assert network.in_flight == 5
        assert network.in_flight_for(-1) == 5

    def test_different_receivers_never_fold(self):
        network = flood_network()
        network.send(network.new(DeletionNotice, 0, 1, -1))
        network.send(network.new(DeletionNotice, 0, 2, -1))
        assert len(network._outbox) == 2

    def test_delivery_faults_disable_packing(self):
        network = Network(
            strict_links=False, fault_schedule=fault_schedule("drop", seed=1)
        )
        for p in range(3):
            network.add_processor(p)
        for _ in range(4):
            network.send(network.new(DeletionNotice, 0, 1, -1))
        assert all(type(m) is DeletionNotice for m in network._outbox)
        assert len(network._outbox) == 4

    def test_packed_delivery_matches_unpacked_counts(self):
        packed = flood_network()
        plain = flood_network()
        plain.packed_batching = False
        run_flood(packed, 5)
        run_flood(plain, 5)
        for p in range(8):
            assert (
                packed.processors[p].received_by_kind
                == plain.processors[p].received_by_kind
            )

    def test_column_lane_rebuilds_parts_when_unpooled(self):
        network = flood_network()
        network.pooled = False
        for hops in (1, 2, 3):
            network.send(network.new(Probe, 0, 1, -1, None, hops, 0))
        carrier = network._outbox[0]
        assert not carrier.parts  # column lane, not the stash lane
        assert carrier.count == 3
        network.deliver_round()
        delivered = [m for m in network.processors[1].received if m.kind == "Probe"]
        assert [m.hops for m in delivered] == [1, 2, 3]


class TestPackedAccusationOrdering:
    def test_response_to_liar_sent_before_later_lie_quarantines(self, monkeypatch):
        """A part's responses leave before the NEXT part is verified.

        Regression: one carrier from a (byzantine) sender holds an honest
        part whose handler answers the sender, followed by a lie.  The
        unbatched loop sends the answer while the liar still exists and only
        then hits the lie; collecting the carrier's responses and sending
        them after the fact made the quarantine land first, turning the
        answer into a ``ProtocolError: receiver does not exist``.
        """
        from repro.distributed.processor import _HANDLER_CACHE

        network = flood_network(width=2)
        honest = network.new(Digest, 1, 0, -1)
        lie = network.new(Digest, 1, 0, -1)
        _ = lie.seal  # freeze the author's seal, then tamper
        lie.probed = not lie.probed
        assert not lie.seal_valid()

        def answer_the_sender(processor, message):
            return [network.new(Digest, 0, message.sender, -1, None, True, True, True)]

        cls = type(network.processors[0])
        monkeypatch.setitem(_HANDLER_CACHE, (cls, "Digest"), answer_the_sender)

        carrier = network.new(PackedPayloads, sender=1, receiver=0)
        carrier.begin(Digest)
        carrier.stash(honest)
        carrier.stash(lie)
        network._outbox.append(carrier)
        network.deliver_round()  # raised ProtocolError before the fix

        assert 1 in network.quarantined
        assert 1 not in network.processors
        answers = [m for m in network._outbox if m.receiver == 1]
        assert len(answers) == 1  # sent while the liar still existed
        network.deliver_round()  # undeliverable answer is released, no error


class TestAccounting:
    def test_batched_tally_is_invisible_through_metrics_property(self):
        network = flood_network()
        network.send(network.new(DeletionNotice, 0, 1, -1))
        network.send(network.new(DeletionNotice, 0, 1, -1))
        assert network.metrics.total_messages == 2
        network.send(network.new(DeletionNotice, 0, 1, -1))
        assert network.metrics.total_messages == 3

    def test_batched_accounting_matches_reference_counters(self):
        batched = flood_network()
        reference = flood_network()
        reference.batched_accounting = False
        run_flood(batched, 6)
        run_flood(reference, 6)
        for field in ("total_messages", "total_bits", "total_dropped", "total_rounds"):
            assert getattr(batched.metrics, field) == getattr(
                reference.metrics, field
            ), field


class TestEquivalence:
    @pytest.mark.parametrize("preset", FABRIC_PRESETS)
    def test_fabric_is_bit_identical_to_pr9_twin(self, preset):
        fabric = replay_attack(preset, pooled=True, packed=True, batched=True)
        twin = replay_attack(preset, pooled=False, packed=False, batched=False)
        assert fabric == twin

    def test_column_lane_is_bit_identical_to_stash_lane(self):
        stash = replay_attack("lossless", pooled=True, packed=True, batched=True)
        column = replay_attack("lossless", pooled=False, packed=True, batched=True)
        assert stash == column
