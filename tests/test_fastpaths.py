"""Fastpath-vs-networkx agreement for the CSR measurement engine.

:mod:`repro.analysis.fastpaths` re-implements the distance, stretch and
connectivity primitives on int-indexed CSR arrays (bitset BFS, component
labels).  These tests pin them to the networkx ground truth — including
:func:`repro.analysis.stretch.stretch_report_reference`, the seed's original
measurement code retained verbatim — on healed, churned and disconnected
graphs.
"""

from __future__ import annotations

import math

import networkx as nx
import numpy as np
import pytest

from repro import ForgivingGraph
from repro.adversary.schedule import churn_schedule, deletion_only_schedule
from repro.adversary.strategies import make_deletion_strategy
from repro.analysis import (
    MeasurementSession,
    check_connectivity_preserved,
    degree_report,
    guarantee_report,
    pairwise_stretch,
    snapshot_healer,
    stretch_report,
    stretch_report_reference,
)
from repro.analysis.fastpaths import CSRGraph, NodeIndex
from repro.baselines import make_healer
from repro.generators import make_graph


def churned_forgiving_graph(n=40, seed=17, steps=30, strategy="random"):
    fg = ForgivingGraph.from_graph(make_graph("erdos_renyi", n, seed=seed))
    schedule = deletion_only_schedule(
        steps=steps, strategy=make_deletion_strategy(strategy, seed=seed), seed=seed
    )
    schedule.run(fg)
    return fg


# --------------------------------------------------------------------------- #
# BFS distances
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("topology", ["erdos_renyi", "power_law", "star", "grid"])
def test_bfs_distances_match_networkx(topology):
    graph = make_graph(topology, 36, seed=5)
    index = NodeIndex()
    index.extend(graph.nodes)
    csr = CSRGraph.from_graph(graph, index)
    sources = np.arange(len(index))
    dist = csr.bfs_distances(sources)
    for s_i in range(len(index)):
        source = index.node_at(s_i)
        ref = nx.single_source_shortest_path_length(graph, source)
        for t_i in range(len(index)):
            expected = ref.get(index.node_at(t_i), math.inf)
            assert dist[s_i, t_i] == expected


def test_bfs_distances_disconnected_and_isolated():
    graph = nx.path_graph(5)
    graph.add_edge("a", "b")
    graph.add_node("lonely")
    index = NodeIndex()
    index.extend(["lonely", *graph.nodes])  # isolated node first: empty CSR rows
    csr = CSRGraph.from_graph(graph, index)
    dist = csr.bfs_distances(index.indices_of([0, "a", "lonely"]))
    assert dist[0, index.index_of(4)] == 4
    assert math.isinf(dist[0, index.index_of("a")])
    assert dist[1, index.index_of("b")] == 1
    assert math.isinf(dist[1, index.index_of(0)])
    assert dist[2, index.index_of("lonely")] == 0
    assert np.isinf(np.delete(dist[2], index.index_of("lonely"))).all()


def test_bfs_single_source_batch_consistency():
    """One big batch and per-source calls agree (different bit-word layouts)."""
    fg = churned_forgiving_graph(n=50, seed=23)
    snap = snapshot_healer(fg)
    all_sources = np.arange(len(snap.index))
    batched = snap.actual.bfs_distances(all_sources)
    for s in [0, 7, len(snap.index) - 1]:
        single = snap.actual.bfs_distances(np.array([s]))[0]
        assert np.array_equal(batched[s], single)


# --------------------------------------------------------------------------- #
# components / connectivity
# --------------------------------------------------------------------------- #
def test_component_labels_match_networkx():
    graph = nx.disjoint_union(nx.path_graph(6), nx.cycle_graph(5))
    graph.add_node(99)
    index = NodeIndex()
    index.extend(graph.nodes)
    csr = CSRGraph.from_graph(graph, index)
    labels = csr.component_labels()
    for component in nx.connected_components(graph):
        ids = [index.index_of(v) for v in component]
        assert len({labels[i] for i in ids}) == 1
    reps = [next(iter(c)) for c in nx.connected_components(graph)]
    assert len({labels[index.index_of(r)] for r in reps}) == len(reps)


def test_connectivity_preserved_matches_reference_semantics():
    fg = churned_forgiving_graph(n=40, seed=29)
    assert check_connectivity_preserved(fg)
    broken = make_healer("no_heal", make_graph("star", 20, seed=1))
    broken.delete(0)  # hub gone, no healing: leaves are mutually unreachable
    assert not check_connectivity_preserved(broken)


# --------------------------------------------------------------------------- #
# stretch
# --------------------------------------------------------------------------- #
def assert_reports_equal(fast, reference):
    assert fast.max_stretch == reference.max_stretch
    assert fast.pairs_measured == reference.pairs_measured
    assert fast.disconnected_pairs == reference.disconnected_pairs
    assert fast.sampled == reference.sampled
    assert fast.log_n_bound == reference.log_n_bound
    if math.isfinite(reference.mean_stretch):
        assert fast.mean_stretch == pytest.approx(reference.mean_stretch, rel=1e-12)
    else:
        assert math.isinf(fast.mean_stretch)


@pytest.mark.parametrize("strategy", ["random", "max_degree"])
def test_stretch_report_matches_reference_exact(strategy):
    fg = churned_forgiving_graph(n=40, seed=31, strategy=strategy)
    assert_reports_equal(stretch_report(fg), stretch_report_reference(fg))


def test_stretch_report_matches_reference_sampled():
    fg = churned_forgiving_graph(n=60, seed=37, steps=40)
    for seed in (0, 1, 2):
        fast = stretch_report(fg, max_sources=10, seed=seed)
        reference = stretch_report_reference(fg, max_sources=10, seed=seed)
        assert_reports_equal(fast, reference)


def test_stretch_report_matches_reference_on_baselines_and_disconnection():
    healer = make_healer("no_heal", make_graph("star", 16, seed=2))
    healer.delete(0)
    fast = stretch_report(healer)
    reference = stretch_report_reference(healer)
    assert math.isinf(fast.max_stretch)
    assert_reports_equal(fast, reference)


def test_stretch_report_under_churn_with_session():
    """A reused MeasurementSession gives the same numbers as fresh snapshots."""
    fg = ForgivingGraph.from_graph(make_graph("erdos_renyi", 40, seed=41))
    session = MeasurementSession()
    schedule = churn_schedule(steps=30, delete_probability=0.6, seed=43)

    def check(_event, healer):
        with_session = stretch_report(healer, max_sources=8, seed=0, session=session)
        fresh = stretch_report_reference(healer, max_sources=8, seed=0)
        assert_reports_equal(with_session, fresh)

    schedule.run(fg, on_event=check)


def test_pairwise_stretch_values():
    fg = ForgivingGraph.from_edges([(0, 1), (1, 2), (2, 3)])
    assert pairwise_stretch(fg, 0, 3) == 1.0
    fg.delete(1)
    healed = fg.actual_graph()
    g_prime = fg.g_prime_view()
    expected = nx.shortest_path_length(healed, 0, 2) / nx.shortest_path_length(g_prime, 0, 2)
    assert pairwise_stretch(fg, 0, 2) == expected
    # disconnected in G' -> nan; disconnected only in healed -> inf
    fg2 = ForgivingGraph.from_edges([(0, 1)], nodes=[5])
    assert math.isnan(pairwise_stretch(fg2, 0, 5))
    broken = make_healer("no_heal", make_graph("star", 8, seed=3))
    broken.delete(0)
    leaves = sorted(broken.alive_nodes)
    assert math.isinf(pairwise_stretch(broken, leaves[0], leaves[1]))


# --------------------------------------------------------------------------- #
# aggregate report plumbing
# --------------------------------------------------------------------------- #
def test_guarantee_report_with_session_matches_sessionless():
    fg = churned_forgiving_graph(n=40, seed=47)
    session = MeasurementSession()
    with_session = guarantee_report(fg, max_sources=12, seed=0, session=session)
    without = guarantee_report(fg, max_sources=12, seed=0)
    assert with_session.as_row() == without.as_row()
    degrees = degree_report(fg)
    assert with_session.degree_factor == degrees.max_factor


def test_node_index_is_stable_across_snapshots():
    fg = ForgivingGraph.from_graph(make_graph("erdos_renyi", 20, seed=53))
    session = MeasurementSession()
    first = session.snapshot(fg)
    order_before = [first.index.node_at(i) for i in range(len(first.index))]
    fg.insert(1000, attach_to=sorted(fg.alive_nodes)[:2])
    fg.delete(sorted(fg.alive_nodes)[0])
    second = session.snapshot(fg)
    assert [second.index.node_at(i) for i in range(len(order_before))] == order_before
    assert 1000 in second.index
