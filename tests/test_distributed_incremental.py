"""The incremental distributed accounting: O(repair) link upkeep + cost reports.

Pins the accounting invariants of the distributed layer:
``DistributedForgivingGraph.delete`` performs no full-graph work (no
``actual_graph()`` rebuild, no full edge-set diff, no full metrics
snapshot), the message-driven link maintenance is a fixed point of the
retained full-diff oracle resync under randomized churn, per-deletion cost
reports are isolated from each other (a later cheap repair never inherits
an earlier repair's maxima), ``Network.n_ever`` counts additions, and the
distributed healer is a first-class citizen of the unified engine (registry
entry, ``StepEvent.cost_report``, experiment runner).
"""

import numpy as np

from repro.adversary import (
    MaxDegreeDeletion,
    MaxDegreeDeletionReference,
    RandomDeletion,
    churn_schedule,
    deletion_only_schedule,
)
from repro.baselines import available_healers, make_healer
from repro.distributed import DistributedForgivingGraph, Network
from repro.engine import AttackSession
from repro.experiments import AttackConfig, ExperimentConfig, run_attack
from repro.generators import GraphSpec, make_graph


class TestNoFullGraphWork:
    def test_delete_path_never_touches_full_graph_accounting(self, monkeypatch):
        """The acceptance regression: deletions use no O(n + m) accounting."""
        d = DistributedForgivingGraph.from_graph(make_graph("power_law", 40, seed=2))

        def forbidden(*_args, **_kwargs):
            raise AssertionError("full-graph work on the deletion path")

        monkeypatch.setattr(d._engine, "actual_graph", forbidden)
        monkeypatch.setattr(d._engine, "g_prime_view", forbidden)
        monkeypatch.setattr(d._engine, "_rebuild_actual", forbidden)
        monkeypatch.setattr(d.network.metrics, "snapshot", forbidden)
        monkeypatch.setattr(d, "_sync_links_reference", forbidden)

        strategy = MaxDegreeDeletion()
        deleted = 0
        for _ in range(25):
            victim = strategy.choose_victim(d)
            if victim is None or d.num_alive <= 3:
                break
            report = d.delete(victim)
            assert report.rounds >= 1
            deleted += 1
        assert deleted >= 20

    def test_insertions_also_stay_incremental(self, monkeypatch):
        d = DistributedForgivingGraph.from_graph(make_graph("erdos_renyi", 20, seed=3))

        def forbidden(*_args, **_kwargs):
            raise AssertionError("full-graph work on the insertion path")

        monkeypatch.setattr(d._engine, "actual_graph", forbidden)
        monkeypatch.setattr(d, "_sync_links_reference", forbidden)
        d.insert(999, attach_to=sorted(d.alive_nodes)[:3])
        assert d.is_alive(999)


class TestLinkMaintenanceEquivalence:
    def test_message_driven_links_are_a_fixed_point_of_the_oracle_resync(self):
        """After every churn event the message-maintained link set is a fixed
        point of the retained full-diff oracle resync (same links and sources)."""
        rng = np.random.default_rng(11)
        d = DistributedForgivingGraph.from_graph(make_graph("erdos_renyi", 30, seed=11))
        fresh = 10_000
        for _ in range(60):
            alive = sorted(d.alive_nodes)
            if rng.random() < 0.5 and d.num_alive > 4:
                d.delete(alive[int(rng.integers(0, len(alive)))])
            else:
                count = int(rng.integers(1, 4))
                picks = rng.choice(len(alive), size=min(count, len(alive)), replace=False)
                d.insert(fresh, attach_to=[alive[int(i)] for i in picks])
                fresh += 1
            after_delta = d.network.links()
            d._sync_links_reference()
            assert d.network.links() == after_delta
        d.verify_consistency()

    def test_window_accounting_matches_snapshot_diff_reference(self):
        """Per-repair window counters equal the retained snapshot-diff values."""
        d = DistributedForgivingGraph.from_graph(make_graph("power_law", 40, seed=3))
        strategy = RandomDeletion(seed=5)
        for _ in range(20):
            victim = strategy.choose_victim(d)
            if victim is None or d.num_alive <= 3:
                break
            before = d.network.metrics.snapshot()
            report = d.delete(victim)
            after = d.network.metrics
            assert report.messages == after.total_messages - before.total_messages
            assert report.bits == after.total_bits - before.total_bits
            per_node = {
                proc: after.messages_sent_by_node.get(proc, 0)
                - before.messages_sent_by_node.get(proc, 0)
                for proc in after.messages_sent_by_node
            }
            assert report.max_messages_per_node == max(per_node.values(), default=0)


class TestCostReportIsolation:
    def test_small_repair_does_not_inherit_run_maxima(self):
        """A cheap deletion after an expensive one reports its own (tiny) costs."""
        edges = [(0, i) for i in range(1, 33)] + [(100, 101), (101, 102)]
        d = DistributedForgivingGraph.from_edges(edges)
        big = d.delete(0)  # the hub: lots of messages, large primary-root lists
        assert big.messages > 0
        assert big.max_message_bits > 0

        small = d.delete(102)  # isolated pendant: one trivial leaf, no traffic
        assert small.messages == 0
        assert small.max_message_bits == 0
        assert small.max_messages_per_node == 0
        # The run-wide maximum survives on the cumulative metrics only.
        assert d.network.metrics.max_message_bits >= big.max_message_bits

    def test_per_repair_maxima_vary_across_an_attack(self):
        d = DistributedForgivingGraph.from_graph(make_graph("power_law", 60, seed=7))
        strategy = MaxDegreeDeletion()
        for _ in range(40):
            victim = strategy.choose_victim(d)
            if victim is None or d.num_alive <= 3:
                break
            d.delete(victim)
        cumulative = d.network.metrics.max_message_bits
        assert all(r.max_message_bits <= cumulative for r in d.cost_reports)
        # With per-repair accounting the values differ between repairs; the
        # seed accounting reported the cumulative maximum for every report.
        assert len({r.max_message_bits for r in d.cost_reports}) > 1


class TestNetworkNEver:
    def test_n_ever_counts_additions_under_interleaved_add_remove(self):
        net = Network()
        for node in "abc":
            net.add_processor(node)
        assert net.n_ever == 3
        net.remove_processor("a")
        net.remove_processor("b")
        net.add_processor("d")
        net.add_processor("e")
        # 5 processors were ever added although only 3 currently exist; the
        # seed's max(n_ever, len(processors)) would have reported 3.
        assert net.n_ever == 5
        assert len(net.processors) == 3

    def test_re_adding_existing_processor_does_not_double_count(self):
        net = Network()
        net.add_processor("a")
        net.add_processor("a")
        assert net.n_ever == 1

    def test_simulator_cross_checks_network_count_against_engine(self):
        d = DistributedForgivingGraph.from_graph(make_graph("erdos_renyi", 12, seed=4))
        d.insert(500, attach_to=sorted(d.alive_nodes)[:2])
        d.delete(sorted(d.alive_nodes)[0])
        assert d.network.n_ever == d.nodes_ever == 13
        d.verify_consistency()  # includes the n_ever cross-check


class TestEngineIntegration:
    def test_registry_builds_distributed_healer(self):
        assert "distributed_forgiving_graph" in available_healers()
        healer = make_healer("distributed_forgiving_graph", make_graph("ring", 10))
        assert isinstance(healer, DistributedForgivingGraph)
        victim = sorted(healer.alive_nodes)[0]
        report = healer.delete(victim)
        assert report.deleted_node == victim

    def test_step_events_carry_deletion_cost_reports(self):
        d = DistributedForgivingGraph.from_graph(make_graph("erdos_renyi", 24, seed=9))
        schedule = churn_schedule(steps=20, delete_probability=0.6, seed=9)
        session = AttackSession(d, schedule, stretch_sources=8, measure_every=0)
        events = list(session.stream())
        deletions = [e for e in events if e.kind == "delete"]
        assert deletions
        for event in deletions:
            assert event.cost_report is not None
            assert event.cost_report.deleted_node == event.node
        assert all(e.cost_report is None for e in events if e.kind == "insert")
        assert session.result is not None
        assert session.result.final_report.connected

    def test_session_loop_equals_bespoke_loop(self):
        """Routing E5 through AttackSession reproduces the bespoke loop's rows."""
        graph = make_graph("power_law", 60, seed=5)

        driven = DistributedForgivingGraph.from_graph(graph)
        schedule = deletion_only_schedule(
            steps=25, strategy=MaxDegreeDeletion(), min_survivors=3
        )
        session = AttackSession(driven, schedule, measure_every=0, measure_final=False)
        session_rows = [
            e.cost_report.as_row() for e in session.stream() if e.cost_report is not None
        ]

        bespoke = DistributedForgivingGraph.from_graph(graph)
        strategy = MaxDegreeDeletion()
        bespoke_rows = []
        for _ in range(25):
            victim = strategy.choose_victim(bespoke)
            if victim is None or bespoke.num_alive <= 3:
                break
            bespoke_rows.append(bespoke.delete(victim).as_row())

        assert session_rows == bespoke_rows

    def test_runner_drives_distributed_healer(self):
        config = ExperimentConfig(
            name="dist-smoke",
            graph=GraphSpec(topology="erdos_renyi", n=24),
            attack=AttackConfig(strategy="max_degree", delete_fraction=0.3),
            healers=("distributed_forgiving_graph",),
            seed=3,
            stretch_sources=8,
        )
        outcome = run_attack(config, "distributed_forgiving_graph")
        assert outcome.healer_name == "distributed_forgiving_graph"
        assert outcome.deletions > 0
        assert outcome.final_report.connected

    def test_incremental_adversary_matches_reference_on_distributed_healer(self):
        """The lazy-heap fast path engages on the distributed healer and picks
        the same victims as the retained full-scan reference."""
        a = DistributedForgivingGraph.from_graph(make_graph("power_law", 40, seed=6))
        b = DistributedForgivingGraph.from_graph(make_graph("power_law", 40, seed=6))
        incremental, reference = MaxDegreeDeletion(), MaxDegreeDeletionReference()
        for _ in range(25):
            victim_a = incremental.choose_victim(a)
            victim_b = reference.choose_victim(b)
            assert victim_a == victim_b
            if victim_a is None or a.num_alive <= 3:
                break
            a.delete(victim_a)
            b.delete(victim_b)
        a.verify_consistency()
