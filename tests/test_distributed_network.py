"""Unit tests for the message-passing substrate: messages, network, processors."""

import pytest

from repro.core.errors import ProtocolError, UnknownNodeError
from repro.core.ports import Port
from repro.distributed import (
    DeletionNotice,
    HelperAssignment,
    InsertionNotice,
    Network,
    ParentUpdate,
    PrimaryRootList,
    Probe,
    Processor,
)
from repro.distributed.messages import words_to_bits


class TestMessages:
    def test_size_scales_with_log_n(self):
        message = Probe(sender=1, receiver=2, deleted=0)
        assert message.size_bits(n_ever=16) == message.payload_words * 4
        assert message.size_bits(n_ever=1024) == message.payload_words * 10

    def test_primary_root_list_payload_grows_with_roots(self):
        small = PrimaryRootList(sender=1, receiver=2, roots=(Port(1, 0),))
        large = PrimaryRootList(sender=1, receiver=2, roots=tuple(Port(i, 0) for i in range(10)))
        assert large.payload_words > small.payload_words

    def test_kind_names(self):
        assert DeletionNotice(sender=1, receiver=2, deleted=3).kind == "DeletionNotice"
        assert HelperAssignment(sender=1, receiver=2).kind == "HelperAssignment"

    def test_message_ids_are_unique(self):
        a = Probe(sender=1, receiver=2)
        b = Probe(sender=1, receiver=2)
        assert a.message_id != b.message_id

    def test_words_to_bits_minimum(self):
        assert words_to_bits(3, n_ever=2) == 3


class TestNetworkTopology:
    def test_add_and_remove_processor(self):
        net = Network()
        net.add_processor("a")
        assert net.has_processor("a")
        net.remove_processor("a")
        assert not net.has_processor("a")

    def test_remove_unknown_processor(self):
        with pytest.raises(UnknownNodeError):
            Network().remove_processor("ghost")

    def test_connect_and_neighbors(self):
        net = Network()
        for node in "abc":
            net.add_processor(node)
        net.connect("a", "b")
        net.connect("a", "c")
        assert net.are_linked("a", "b")
        assert net.neighbors("a") == ["b", "c"]
        net.disconnect("a", "b")
        assert not net.are_linked("a", "b")

    def test_connect_requires_existing_processors(self):
        net = Network()
        net.add_processor("a")
        with pytest.raises(UnknownNodeError):
            net.connect("a", "ghost")

    def test_removing_processor_drops_its_links(self):
        net = Network()
        for node in "abc":
            net.add_processor(node)
        net.connect("a", "b")
        net.connect("b", "c")
        net.remove_processor("b")
        assert net.links() == set()

    def test_disconnect_tolerates_removed_endpoints(self):
        net = Network()
        for node in "ab":
            net.add_processor(node)
        net.connect("a", "b")
        net.remove_processor("b")
        net.disconnect("a", "b")  # no-op, no raise
        assert not net.are_linked("a", "b")

    def test_neighbors_and_links_use_canonical_natural_order(self):
        """NodeKey ordering: ints compare numerically (2 < 10), not by repr."""
        net = Network()
        for node in (1, 2, 10):
            net.add_processor(node)
        net.connect(1, 10)
        net.connect(1, 2)
        assert net.neighbors(1) == [2, 10]
        assert (2, 10) not in net.links()
        net.connect(10, 2)
        assert (2, 10) in net.links()
        assert net.num_links() == 3


class TestMessageDelivery:
    def make_pair(self):
        net = Network()
        net.add_processor("a")
        net.add_processor("b")
        net.connect("a", "b")
        return net

    def test_messages_are_delivered_next_round(self):
        net = self.make_pair()
        net.send(Probe(sender="a", receiver="b", deleted="x"))
        assert net.pending_messages == 1
        delivered = net.deliver_round()
        assert delivered == 1
        assert net.processors["b"].received_by_kind["Probe"] == 1

    def test_strict_mode_rejects_unlinked_send(self):
        net = Network(strict_links=True)
        net.add_processor("a")
        net.add_processor("b")
        with pytest.raises(ProtocolError):
            net.send(Probe(sender="a", receiver="b"))

    def test_non_strict_mode_allows_unlinked_send(self):
        net = Network(strict_links=False)
        net.add_processor("a")
        net.add_processor("b")
        net.send(Probe(sender="a", receiver="b"))
        assert net.deliver_round() == 1

    def test_send_requires_existing_endpoints(self):
        net = self.make_pair()
        with pytest.raises(ProtocolError):
            net.send(Probe(sender="a", receiver="ghost"))

    def test_metrics_accumulate(self):
        net = self.make_pair()
        net.n_ever = 16
        for _ in range(3):
            net.send(Probe(sender="a", receiver="b"))
        net.deliver_round()
        assert net.metrics.total_messages == 3
        assert net.metrics.total_rounds == 1
        assert net.metrics.messages_sent_by_node["a"] == 3
        assert net.metrics.max_messages_per_node() == 3
        assert net.metrics.total_bits > 0

    def test_run_until_quiet(self):
        net = self.make_pair()
        net.send(Probe(sender="a", receiver="b"))
        rounds = net.run_until_quiet()
        assert rounds == 1
        assert net.pending_messages == 0

    def test_message_to_dead_processor_is_dropped(self):
        net = self.make_pair()
        net.send(Probe(sender="a", receiver="b"))
        net.remove_processor("b")
        assert net.deliver_round() == 0

    def test_repair_window_isolates_its_traffic(self):
        net = self.make_pair()
        net.send(Probe(sender="a", receiver="b"))
        net.deliver_round()  # pre-window traffic
        window = net.begin_repair()
        net.send(Probe(sender="b", receiver="a"))
        net.deliver_round()
        closed = net.end_repair()
        assert closed is window
        assert closed.messages == 1
        assert closed.rounds == 1
        assert dict(closed.messages_by_node) == {"b": 1}
        assert closed.max_messages_per_node() == 1
        assert closed.max_message_bits > 0
        # Cumulative counters still cover the whole run.
        assert net.metrics.total_messages == 2
        assert net.metrics.total_rounds == 2
        # Traffic after end_repair lands only on the cumulative counters.
        net.send(Probe(sender="a", receiver="b"))
        net.deliver_round()
        assert closed.messages == 1
        assert net.metrics.total_messages == 3


class TestProcessorState:
    def test_ensure_edge_initialises_representative(self):
        processor = Processor("v")
        record = processor.ensure_edge("x")
        assert record.representative == Port("v", "x")
        assert record.neighbor_alive

    def test_deletion_notice_marks_neighbor_dead(self):
        processor = Processor("v")
        processor.ensure_edge("x")
        processor.receive(DeletionNotice(sender="v", receiver="v", deleted="x"))
        assert not processor.edges["x"].neighbor_alive

    def test_insertion_notice_creates_record(self):
        processor = Processor("v")
        processor.receive(InsertionNotice(sender="n", receiver="v", inserted="n"))
        assert "n" in processor.edges

    def test_helper_assignment_create_and_release(self):
        processor = Processor("v")
        processor.ensure_edge("x")
        processor.receive(
            HelperAssignment(
                sender="w",
                receiver="v",
                helper_port=Port("v", "x"),
                left_port=Port("a", "x"),
                right_port=Port("b", "x"),
                create=True,
            )
        )
        record = processor.edges["x"]
        assert record.has_helper
        assert record.helper_left == Port("a", "x")
        processor.receive(
            HelperAssignment(sender="w", receiver="v", helper_port=Port("v", "x"), create=False)
        )
        assert not record.has_helper

    def test_helper_assignment_for_other_processor_is_ignored(self):
        processor = Processor("v")
        processor.receive(
            HelperAssignment(sender="w", receiver="v", helper_port=Port("other", "x"), create=True)
        )
        assert "x" not in processor.edges

    def test_parent_update_for_leaf(self):
        processor = Processor("v")
        processor.ensure_edge("x")
        processor.receive(
            ParentUpdate(
                sender="w",
                receiver="v",
                child_port=Port("v", "x"),
                parent_port=Port("w", "x"),
                child_is_helper=False,
            )
        )
        record = processor.edges["x"]
        assert record.rt_parent == Port("w", "x")
        assert record.endpoint == Port("w", "x")
        assert not record.neighbor_alive

    def test_helper_ports_listing(self):
        processor = Processor("v")
        processor.ensure_edge("x")
        processor.edges["x"].has_helper = True
        assert processor.helper_ports() == [Port("v", "x")]
