"""Integration tests: the experiment catalog (E1–E14) at smoke scale.

These are the end-to-end checks that the claims recorded in EXPERIMENTS.md
actually regenerate: every experiment runs, produces rows, and the rows
satisfy the paper's qualitative claims.
"""

import math

import pytest

from repro.experiments.catalog import (
    all_experiments,
    experiment_e1_haft_structure,
    experiment_e2_haft_merge,
    experiment_e3_degree_increase,
    experiment_e4_stretch,
    experiment_e5_repair_cost,
    experiment_e6_invariants,
    experiment_e7_lower_bound,
    experiment_e8_paper_figures,
    experiment_e9_healer_comparison,
    experiment_e10_churn,
    experiment_e12_recovery_cost,
    experiment_e13_byzantine_containment,
    experiment_e14_concurrent_bursts,
)


class TestStructureExperiments:
    def test_e1_haft_claims_hold(self):
        _title, rows, _ = experiment_e1_haft_structure("smoke")
        assert rows
        assert all(row["depth_ok"] and row["strip_ok"] and row["unique_shape"] for row in rows)

    def test_e2_merge_claims_hold(self):
        _title, rows, _ = experiment_e2_haft_merge("smoke")
        assert rows
        for row in rows:
            assert row["valid_haft"]
            assert row["merged_leaves"] == row["total_leaves"]
            assert row["primary_roots"] == row["popcount"]
            assert row["depth"] == row["depth_bound"]


class TestTheorem1Experiments:
    def test_e3_degree_factor_is_constant(self):
        _title, rows, _ = experiment_e3_degree_increase("smoke")
        assert rows
        # The paper's constant is 3; the per-edge accounting of the published
        # mechanism allows up to 4 (see EXPERIMENTS.md), and the factor must
        # not grow with n.
        assert all(row["degree_factor"] <= 4.0 + 1e-9 for row in rows)

    def test_e4_stretch_within_log_bound(self):
        _title, rows, _ = experiment_e4_stretch("smoke")
        assert rows
        assert all(row["stretch"] <= row["stretch_bound"] + 1e-9 for row in rows)
        assert all(row["connected"] for row in rows)

    def test_e5_repair_costs_within_budgets(self):
        _title, rows, _ = experiment_e5_repair_cost("smoke")
        assert rows
        assert all(row["within_budgets"] for row in rows)
        assert all(row["messages_max"] <= row["message_budget_O(d log n)"] for row in rows)

    def test_e6_invariants_hold(self):
        _title, rows, _ = experiment_e6_invariants("smoke")
        (row,) = rows
        assert row["invariant_violations"] == 0
        assert row["helpers_equal_leaves_minus_one"]


class TestTheorem2AndComparisons:
    def test_e7_no_healer_beats_the_lower_bound(self):
        _title, rows, _ = experiment_e7_lower_bound("smoke")
        assert rows
        assert all(row["consistent_with_lower_bound"] for row in rows)

    def test_e7_forgiving_graph_stays_within_ceiling(self):
        _title, rows, _ = experiment_e7_lower_bound("smoke")
        fg_rows = [row for row in rows if row["healer"] == "forgiving_graph"]
        assert fg_rows
        assert all(row["stretch"] <= row["theorem1_ceiling(log2 n)"] + 1e-9 for row in fg_rows)

    def test_e8_paper_figures_reproduce(self):
        _title, rows, _ = experiment_e8_paper_figures("smoke")
        assert all(row["valid"] for row in rows)

    def test_e9_forgiving_graph_wins_both_sides_of_the_tradeoff(self):
        _title, rows, _ = experiment_e9_healer_comparison("smoke")
        fg = [row for row in rows if row["healer"] == "forgiving_graph"]
        clique = [row for row in rows if row["healer"] == "clique_heal"]
        no_heal = [row for row in rows if row["healer"] == "no_heal"]
        assert all(row["degree_factor"] <= 4.0 + 1e-9 and row["connected"] for row in fg)
        assert all(row["stretch"] <= row["stretch_bound"] + 1e-9 for row in fg)
        # The baselines lose at least one side of the trade-off.
        assert any(row["degree_factor"] > 4.0 for row in clique)
        assert any(not row["connected"] or math.isinf(row["stretch"]) for row in no_heal)

    def test_e10_churn_keeps_guarantees(self):
        _title, rows, _ = experiment_e10_churn("smoke")
        assert rows
        assert all(row["connected"] for row in rows)
        assert all(row["stretch"] <= row["stretch_bound"] + 1e-9 for row in rows)
        assert all(row["insertions"] > 0 and row["deletions"] > 0 for row in rows)

    def test_e12_recovery_cost_claims_hold(self):
        _title, rows, _ = experiment_e12_recovery_cost("smoke")
        by_preset = {row["fault_preset"]: row for row in rows}
        assert set(by_preset) == {"lossless", "drop", "delay", "reorder", "chaos"}
        for row in rows:
            # Every preset runs with the plan audit poisoned; converging and
            # matching the oracle certifies message-native recovery.
            assert row["all_converged"]
            assert row["consistent_with_oracle"]
            assert row["within_digest_budgets"] and row["within_round_budgets"]
            assert row["recoveries"] == row["repairs"] > 0
            assert row["digest_messages"] > 0
        # Lossless pays pure detection: one sweep per repair, nothing resent.
        lossless = by_preset["lossless"]
        assert lossless["retransmissions"] == 0
        assert lossless["sweeps"] == lossless["repairs"]
        # Lossy presets genuinely pay for their faults.
        assert by_preset["drop"]["retransmissions"] > 0

    def test_e13_byzantine_containment_claims_hold(self):
        _title, rows, _ = experiment_e13_byzantine_containment("smoke")
        by_fraction = {row["byzantine_fraction"]: row for row in rows}
        assert 0.0 in by_fraction and len(rows) >= 3
        for row in rows:
            # Quarantine leaves a deliberate oracle divergence, but recovery
            # still reaches its silent fixed point around the quarantined.
            assert row["converged"]
            # Every delivered lie accused, no honest processor ever accused.
            assert row["all_lies_caught"]
            assert row["false_accusations"] == 0
        honest = by_fraction[0.0]
        assert honest["lies_sent"] == 0 and honest["accusations"] == 0
        lying = [
            row
            for row in rows
            if row["byzantine_fraction"] > 0 and row["lies_delivered"] > 0
        ]
        assert lying  # the sweep genuinely exercises the byzantine axis
        for row in lying:
            assert row["accused"] > 0
            assert row["max_containment_radius"] >= 1


class TestConcurrentBursts:
    def test_e14_concurrent_admission_beats_sequential_and_goes_silent(self):
        _, rows, _ = experiment_e14_concurrent_bursts("smoke")
        by_admission = {row["admission"]: row for row in rows}
        assert by_admission["sequential"]["round_ratio"] == 1.0
        unbounded = by_admission["unbounded"]
        assert unbounded["waves"] == 1  # the burst is genuinely disjoint
        assert unbounded["round_ratio"] < 1.0
        for row in rows:
            assert row["consistent_with_oracle"]
            if row["admission"] != "sequential":
                assert row["silent_fixed_point"]


class TestCatalogPlumbing:
    def test_all_experiments_returns_fourteen_sections(self):
        sections = all_experiments("smoke")
        assert len(sections) == 14
        titles = [section[0] for section in sections]
        assert all(title.startswith("E") for title in titles)
        assert all(section[1] for section in sections)  # every section has rows

    def test_unknown_scale_is_rejected(self):
        with pytest.raises(ValueError):
            experiment_e1_haft_structure("galactic")
