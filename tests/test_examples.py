"""Smoke tests: the example scripts run end-to-end and print what they promise.

The heavier examples (baseline comparison, distributed cost sweep, churn) are
exercised indirectly through the experiment-catalog tests; here we run the
two quick ones as real subprocesses so a broken public API or a stray import
in the examples fails the suite.
"""

import subprocess
import sys
from pathlib import Path

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: int = 120) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_examples_directory_contents():
    names = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert "quickstart.py" in names
    assert len(names) >= 3  # the deliverable asks for at least three examples


def test_quickstart_example():
    output = run_example("quickstart.py")
    assert "Theorem 1 check" in output
    assert "degree factor" in output
    assert "reconstruction trees" in output.lower()


def test_paper_figures_example():
    output = run_example("paper_figures.py")
    assert "Figure 3" in output
    assert "Figure 5" in output
    assert "Reconstruction Tree" in output
    assert "merge into one RT" in output or "they merge into one RT" in output
