"""Scenario tests for the self-healing behaviour (Sections 3-5, Figures 2, 7, 8)."""

import math

import networkx as nx
import pytest

from repro import ForgivingGraph
from repro.analysis import check_connectivity_preserved, stretch_report
from repro.generators import make_graph


class TestStarScenario:
    """Figure 2 / Theorem 2 setting: a hub with many leaves is deleted."""

    @pytest.mark.parametrize("n_leaves", [2, 3, 4, 7, 8, 15, 16, 31, 63])
    def test_hub_deletion_builds_haft_over_leaves(self, n_leaves):
        fg = ForgivingGraph.from_edges([(0, i) for i in range(1, n_leaves + 1)], check_invariants=True)
        fg.delete(0)
        rts = fg.reconstruction_trees()
        assert len(rts) == 1
        assert rts[0].size == n_leaves
        assert rts[0].depth == (math.ceil(math.log2(n_leaves)) if n_leaves > 1 else 0)

    @pytest.mark.parametrize("n_leaves", [7, 16, 63])
    def test_hub_deletion_diameter_is_logarithmic(self, n_leaves):
        fg = ForgivingGraph.from_edges([(0, i) for i in range(1, n_leaves + 1)], check_invariants=True)
        fg.delete(0)
        healed = fg.actual_graph()
        assert nx.is_connected(healed)
        assert nx.diameter(healed) <= 2 * math.ceil(math.log2(n_leaves))

    @pytest.mark.parametrize("n_leaves", [7, 16, 63])
    def test_hub_deletion_degrees_stay_constant(self, n_leaves):
        fg = ForgivingGraph.from_edges([(0, i) for i in range(1, n_leaves + 1)], check_invariants=True)
        fg.delete(0)
        healed = fg.actual_graph()
        # Every survivor had G' degree 1; virtual structure gives each at most
        # 1 leaf edge + 3 helper edges.
        assert max(dict(healed.degree()).values()) <= 4


class TestRTMerging:
    """Figures 7-8: deleting a node adjacent to existing RTs merges them."""

    def test_adjacent_deletions_merge_into_one_rt(self):
        fg = ForgivingGraph.from_edges([(i, i + 1) for i in range(8)], check_invariants=True)
        fg.delete(3)
        fg.delete(5)
        assert len(fg.reconstruction_trees()) == 2
        fg.delete(4)  # adjacent to both RTs: everything merges
        assert len(fg.reconstruction_trees()) == 1

    def test_merged_rt_contains_all_expected_ports(self):
        fg = ForgivingGraph.from_edges([(i, i + 1) for i in range(8)], check_invariants=True)
        for victim in (3, 5, 4):
            fg.delete(victim)
        (rt,) = fg.reconstruction_trees()
        port_processors = sorted(port.processor for port in rt.ports())
        assert port_processors == [2, 6]  # the two survivors flanking the hole

    def test_far_apart_deletions_stay_separate(self):
        fg = ForgivingGraph.from_edges([(i, i + 1) for i in range(10)], check_invariants=True)
        fg.delete(2)
        fg.delete(7)
        assert len(fg.reconstruction_trees()) == 2

    def test_path_stays_connected_through_many_deletions(self):
        fg = ForgivingGraph.from_edges([(i, i + 1) for i in range(20)], check_invariants=True)
        for victim in range(1, 19, 2):
            fg.delete(victim)
        healed = fg.actual_graph()
        assert nx.is_connected(healed)

    def test_consecutive_interior_deletions(self):
        fg = ForgivingGraph.from_edges([(i, i + 1) for i in range(12)], check_invariants=True)
        for victim in range(3, 9):
            fg.delete(victim)
        healed = fg.actual_graph()
        assert nx.is_connected(healed)
        assert nx.has_path(healed, 0, 11)


class TestGuaranteesOnTopologies:
    @pytest.mark.parametrize("topology", ["erdos_renyi", "power_law", "grid", "ring", "binary_tree"])
    def test_random_attack_keeps_guarantees(self, topology):
        graph = make_graph(topology, 48, seed=3)
        fg = ForgivingGraph.from_graph(graph, check_invariants=True)
        victims = sorted(graph.nodes)[::2][:20]
        for victim in victims:
            if fg.is_alive(victim) and fg.num_alive > 2:
                fg.delete(victim)
        assert check_connectivity_preserved(fg)
        assert fg.degree_increase_factor() <= 4.0
        report = stretch_report(fg)
        assert report.max_stretch <= max(math.log2(fg.nodes_ever), 1.0) + 1e-9

    def test_mixed_insert_delete_guarantees(self):
        fg = ForgivingGraph.from_graph(make_graph("erdos_renyi", 30, seed=5), check_invariants=True)
        fresh = 1000
        for step in range(40):
            if step % 3 == 0:
                targets = sorted(fg.alive_nodes)[:3]
                fg.insert(fresh, attach_to=targets)
                fresh += 1
            else:
                victim = sorted(fg.alive_nodes)[step % fg.num_alive]
                if fg.num_alive > 2:
                    fg.delete(victim)
        assert check_connectivity_preserved(fg)
        assert fg.degree_increase_factor() <= 4.0

    def test_insertion_after_heavy_deletion(self):
        fg = ForgivingGraph.from_graph(make_graph("power_law", 40, seed=9), check_invariants=True)
        for victim in sorted(fg.alive_nodes)[:30]:
            if fg.num_alive > 3:
                fg.delete(victim)
        fg.insert("late", attach_to=sorted(fg.alive_nodes)[:2])
        assert fg.is_alive("late")
        assert check_connectivity_preserved(fg)


class TestStretchAgainstGPrime:
    def test_stretch_is_relative_to_g_prime_not_previous_graph(self):
        """After deleting the hub of a star, leaves were at G' distance 2."""
        n_leaves = 32
        fg = ForgivingGraph.from_edges([(0, i) for i in range(1, n_leaves + 1)], check_invariants=True)
        fg.delete(0)
        report = stretch_report(fg)
        # Healed distance between two leaves is at most 2*log2(32) = 10; their
        # G' distance is 2 (through the deleted hub), so stretch <= 5 = log2(n).
        assert report.max_stretch <= math.log2(fg.nodes_ever) + 1e-9

    def test_repeated_hub_attack(self):
        """The adversary repeatedly deletes the current highest-degree node."""
        fg = ForgivingGraph.from_graph(make_graph("power_law", 60, seed=2), check_invariants=True)
        for _ in range(40):
            if fg.num_alive <= 3:
                break
            healed = fg.actual_graph()
            victim = max(fg.alive_nodes, key=lambda v: healed.degree[v])
            fg.delete(victim)
        report = stretch_report(fg)
        assert report.max_stretch <= math.log2(fg.nodes_ever) + 1e-9
        assert fg.degree_increase_factor() <= 4.0
