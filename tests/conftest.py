"""Shared fixtures for the Forgiving Graph reproduction test-suite."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro import ForgivingGraph
from repro.generators import make_graph


@pytest.fixture
def rng():
    """A deterministic numpy random generator."""
    return np.random.default_rng(20090214)


@pytest.fixture
def star_10():
    """A star graph with hub 0 and 9 leaves."""
    return nx.star_graph(9)


@pytest.fixture
def path_8():
    """A path graph 0-1-...-7."""
    return nx.path_graph(8)


@pytest.fixture
def small_er():
    """A small connected Erdős–Rényi graph (seeded)."""
    return make_graph("erdos_renyi", 30, seed=7)


@pytest.fixture
def power_law_60():
    """A 60-node Barabási–Albert graph (seeded)."""
    return make_graph("power_law", 60, seed=11)


@pytest.fixture
def checked_fg(small_er):
    """A ForgivingGraph over the small ER graph with invariant checking enabled."""
    return ForgivingGraph.from_graph(small_er, check_invariants=True)
