"""The message-native merge under lossless and faulty networks.

Pins the PR 4 tentpole claims:

* the healed structure is computed from message payloads — the engine's
  merge outcome is quarantined (reading it raises) and repairs still work;
* under a lossless network the message-built state (links, source
  multiplicities, helper records) equals the reference oracle after every
  event of randomized churn;
* under seeded drop/delay/reorder schedules processors genuinely diverge
  and the reconvergence loop restores exact agreement with the oracle —
  invariants pass, the healed topology is whole again, and the stretch
  guarantee holds on the *network's* graph, not just the oracle's;
* fault schedules are deterministic given their seed, so every faulty run
  is replayable.
"""

import networkx as nx
import numpy as np
import pytest

from repro.adversary import MaxDegreeDeletion, RandomDeletion
from repro.analysis.bounds import stretch_bound
from repro.core.errors import InvariantViolationError
from repro.distributed import DistributedForgivingGraph, fault_schedule
from repro.distributed.faults import (
    BYZANTINE_PRESETS,
    DELIVERY_PRESETS,
    FAULT_PRESETS,
    FaultSchedule,
    LinkFaultPolicy,
)
from repro.generators import make_graph


def churn(d: DistributedForgivingGraph, steps: int, seed: int, verify_each=None) -> None:
    rng = np.random.default_rng(seed)
    fresh = 10_000
    for _ in range(steps):
        alive = sorted(d.alive_nodes)
        if rng.random() < 0.6 and d.num_alive > 4:
            d.delete(alive[int(rng.integers(0, len(alive)))])
        else:
            count = int(rng.integers(1, 4))
            picks = rng.choice(len(alive), size=min(count, len(alive)), replace=False)
            d.insert(fresh, attach_to=[alive[int(i)] for i in picks])
            fresh += 1
        if verify_each is not None:
            verify_each(d)


class TestLosslessEquivalence:
    def test_randomized_churn_matches_oracle_after_every_event(self):
        """The tentpole acceptance check: message-built state == oracle,
        verified (links, multiplicities, helper records) after every event."""
        d = DistributedForgivingGraph.from_graph(
            make_graph("erdos_renyi", 30, seed=7), quarantine_oracle=True
        )
        churn(d, 60, seed=7, verify_each=lambda healer: healer.verify_consistency())

    def test_network_graph_equals_actual_graph(self):
        d = DistributedForgivingGraph.from_graph(make_graph("power_law", 40, seed=2))
        churn(d, 40, seed=2)
        assert nx.utils.graphs_equal(d.network_graph(), d.actual_graph())

    def test_oracle_quarantine_poisons_merge_outcome(self):
        """Reading the quarantined oracle attributes raises — proving the
        measured path finished without them requires exactly this poison."""
        d = DistributedForgivingGraph.from_edges(
            [(0, i) for i in range(1, 6)], quarantine_oracle=True
        )
        d.delete(0)
        with pytest.raises(AssertionError):
            len(d.engine.last_new_helpers)

    def test_helpers_created_counts_match_oracle_reports(self):
        """Message-native helper counts equal the engine's own repair report."""
        d = DistributedForgivingGraph.from_graph(make_graph("power_law", 40, seed=9))
        strategy = MaxDegreeDeletion()
        for _ in range(20):
            victim = strategy.choose_victim(d)
            if victim is None or d.num_alive <= 3:
                break
            report = d.delete(victim)
            engine_event = d.engine.events[-1]
            assert report.helpers_created == engine_event.report.helpers_created
            assert report.helpers_released == engine_event.report.helpers_released
        d.verify_consistency()


class TestFaultInjection:
    @pytest.mark.parametrize("preset", ["drop", "delay", "reorder", "chaos"])
    def test_seeded_schedules_reconverge_to_oracle(self, preset):
        d = DistributedForgivingGraph.from_graph(
            make_graph("power_law", 40, seed=3),
            fault_schedule=fault_schedule(preset, seed=5),
            quarantine_oracle=True,
        )
        strategy = RandomDeletion(seed=5)
        for _ in range(20):
            victim = strategy.choose_victim(d)
            if victim is None or d.num_alive <= 3:
                break
            report = d.delete(victim)
            assert report.converged
        d.verify_consistency()

    def test_drops_cause_real_divergence_without_reconvergence(self):
        """With auto-reconvergence off, lost messages leave the distributed
        state genuinely inconsistent — the merge is message-native, nothing
        silently falls back to the oracle."""
        diverged = 0
        for seed in range(6):
            d = DistributedForgivingGraph.from_graph(
                make_graph("power_law", 40, seed=3),
                fault_schedule=fault_schedule("drop", seed=seed),
                auto_reconverge=False,
            )
            strategy = RandomDeletion(seed=seed)
            for _ in range(15):
                victim = strategy.choose_victim(d)
                if victim is None or d.num_alive <= 3:
                    break
                d.delete(victim)
            try:
                d.verify_consistency()
            except InvariantViolationError:
                diverged += 1
        assert diverged > 0

    def test_manual_reconverge_repairs_the_divergence(self):
        d = DistributedForgivingGraph.from_graph(
            make_graph("power_law", 40, seed=3),
            fault_schedule=fault_schedule("drop", seed=1),
            auto_reconverge=False,
        )
        strategy = RandomDeletion(seed=1)
        for _ in range(15):
            victim = strategy.choose_victim(d)
            if victim is None or d.num_alive <= 3:
                break
            d.delete(victim)
            recon = d.reconverge()
            assert recon.converged
        d.verify_consistency()

    def test_guarantees_restored_on_the_network_graph(self):
        """After reconvergence the *processors'* topology (not the oracle's)
        is connected and satisfies the Theorem 1.2 stretch bound."""
        d = DistributedForgivingGraph.from_graph(
            make_graph("erdos_renyi", 30, seed=8),
            fault_schedule=fault_schedule("chaos", seed=8),
        )
        strategy = MaxDegreeDeletion()
        for _ in range(12):
            victim = strategy.choose_victim(d)
            if victim is None or d.num_alive <= 3:
                break
            d.delete(victim)
        network_g = d.network_graph()
        assert nx.is_connected(network_g)
        g_prime = d.g_prime_view()
        bound = stretch_bound(d.nodes_ever)
        alive = sorted(d.alive_nodes)[:10]
        for source in alive:
            base = nx.single_source_shortest_path_length(g_prime, source)
            healed = nx.single_source_shortest_path_length(network_g, source)
            for target in alive:
                if target == source or target not in base or base[target] == 0:
                    continue
                assert healed[target] <= bound * base[target] + 1e-9

    def test_faulty_runs_are_deterministic_given_the_seed(self):
        def run(seed):
            d = DistributedForgivingGraph.from_graph(
                make_graph("power_law", 30, seed=4),
                fault_schedule=fault_schedule("chaos", seed=seed),
            )
            strategy = RandomDeletion(seed=2)
            rows = []
            for _ in range(10):
                victim = strategy.choose_victim(d)
                if victim is None or d.num_alive <= 3:
                    break
                rows.append(d.delete(victim).as_row())
            return rows

        assert run(13) == run(13)
        # A different fault seed genuinely changes what the network suffers.
        first, second = run(13), run(14)
        assert [r["deleted"] for r in first] == [r["deleted"] for r in second]
        assert first != second

    def test_dropped_messages_are_counted_per_repair(self):
        d = DistributedForgivingGraph.from_graph(
            make_graph("power_law", 40, seed=6),
            fault_schedule=fault_schedule("drop", seed=3),
        )
        strategy = MaxDegreeDeletion()
        for _ in range(15):
            victim = strategy.choose_victim(d)
            if victim is None or d.num_alive <= 3:
                break
            d.delete(victim)
        assert sum(r.dropped_messages for r in d.cost_reports) > 0
        assert d.network.metrics.total_dropped >= sum(
            r.dropped_messages for r in d.cost_reports
        )


class TestFaultSchedules:
    def test_presets_cover_the_advertised_names(self):
        assert {"lossless", "drop", "delay", "reorder", "chaos"} <= set(FAULT_PRESETS)
        # The byzantine presets are registered too (PR 6) — the delivery
        # registry stays the oracle-equality subset.
        assert {"byzantine", "byzantine-chaos"} <= set(FAULT_PRESETS)
        assert "byzantine" not in DELIVERY_PRESETS
        assert set(BYZANTINE_PRESETS) == {"byzantine", "byzantine-chaos"}

    def test_lossless_preset_builds_no_schedule(self):
        assert fault_schedule("lossless") is None

    def test_byzantine_presets_build_byzantine_schedules(self):
        reliable = fault_schedule("byzantine", seed=1)
        assert reliable is not None and reliable.has_byzantine
        assert reliable.default.is_reliable  # lies over perfect links
        chaotic = fault_schedule("byzantine-chaos", seed=1)
        assert chaotic is not None and chaotic.has_byzantine
        assert not chaotic.default.is_reliable

    def test_unknown_preset_is_rejected(self):
        with pytest.raises(ValueError) as excinfo:
            fault_schedule("quantum-foam")
        # The error names every preset, byzantine ones included.
        message = str(excinfo.value)
        for name in FAULT_PRESETS:
            assert name in message

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            LinkFaultPolicy(drop=1.5)
        with pytest.raises(ValueError):
            LinkFaultPolicy(max_delay=0)

    def test_per_link_overrides(self):
        schedule = FaultSchedule(
            default=LinkFaultPolicy(),
            per_link={("a", "b"): LinkFaultPolicy(drop=1.0)},
            seed=0,
        )
        assert schedule.judge("b", "a") == -1  # unordered pair matches
        assert schedule.judge("a", "c") == 0

    def test_same_seed_same_decisions(self):
        a = FaultSchedule(default=LinkFaultPolicy(drop=0.5), seed=42)
        b = FaultSchedule(default=LinkFaultPolicy(drop=0.5), seed=42)
        assert [a.judge(1, 2) for _ in range(50)] == [b.judge(1, 2) for _ in range(50)]


class TestExperimentsIntegration:
    def test_runner_builds_faulty_distributed_healer(self):
        from repro.experiments import AttackConfig, ExperimentConfig, run_attack
        from repro.generators import GraphSpec

        config = ExperimentConfig(
            name="fault-smoke",
            graph=GraphSpec(topology="erdos_renyi", n=24),
            attack=AttackConfig(
                strategy="max_degree", delete_fraction=0.3, fault_preset="drop"
            ),
            healers=("distributed_forgiving_graph",),
            seed=3,
            stretch_sources=8,
        )
        outcome = run_attack(config, "distributed_forgiving_graph")
        assert outcome.deletions > 0
        assert outcome.final_report.connected

    def test_fault_preset_requires_distributed_healer(self):
        from repro.core.errors import ConfigurationError
        from repro.experiments import AttackConfig, ExperimentConfig, run_attack
        from repro.generators import GraphSpec

        config = ExperimentConfig(
            name="fault-wrong-healer",
            graph=GraphSpec(topology="ring", n=10),
            attack=AttackConfig(fault_preset="drop"),
            healers=("forgiving_graph",),
        )
        with pytest.raises(ConfigurationError):
            run_attack(config, "forgiving_graph")

    def test_unknown_fault_preset_rejected_at_config_time(self):
        from repro.core.errors import ConfigurationError
        from repro.experiments import AttackConfig

        with pytest.raises(ConfigurationError):
            AttackConfig(fault_preset="gamma-rays")

    def test_sweep_fault_presets_rows(self):
        from repro.experiments.sweeps import sweep_fault_presets

        rows = sweep_fault_presets(
            "fault-sweep", "power_law", 24, ["lossless", "drop"], stretch_sources=8
        )
        assert len(rows) == 2
        assert rows[1]["fault_preset"] == "drop"
        assert "fault_preset" not in rows[0]  # lossless rows stay clean
