"""Concurrent epoch-tagged bursts: admission, identity, silence, containment.

PR 8's contract, each clause tested on its own:

* ``delete_batch(concurrency=1)`` is the retained reference twin — bit-
  identical per-deletion cost reports to sequential ``delete`` calls under
  every delivery preset;
* disjoint-footprint bursts are admitted into one shared ``deliver_round``
  stream (one wave) and finish in fewer rounds than the sequential sum,
  healing to the exact same graph at any concurrency;
* overlapping footprints serialize into waves and still match the oracle;
* the piggybacked background anti-entropy goes provably silent on the
  lossless path (an empty fixed-point probe per epoch);
* a byzantine liar inside a concurrent burst is accused with zero false
  accusations — mixed-epoch traffic does not confuse the accountability
  machinery;
* the engine surfaces bursts as first-class ``StepEvent``s with per-victim
  cost reports, and ``receive_trace_limit`` threads through to every
  processor.
"""

from __future__ import annotations

import pytest

from repro.adversary import deletion_burst_schedule
from repro.core.ports import NodeKey
from repro.core.views import g_prime_view_of
from repro.distributed.faults import DELIVERY_PRESETS, fault_schedule
from repro.distributed.simulator import DistributedForgivingGraph
from repro.engine import AttackSession
from repro.experiments.sweeps import select_disjoint_victims
from repro.generators.graphs import make_graph


def _cost_key(report):
    return (
        report.deleted_node,
        report.messages,
        report.bits,
        report.rounds,
        report.max_messages_per_node,
    )


def _disjoint_burst(graph, min_k=3, limit=8):
    """A burst of pairwise-disjoint-footprint victims, away from the hubs."""
    probe = DistributedForgivingGraph.from_graph(graph)
    degree = g_prime_view_of(probe).degree
    candidates = [
        v
        for v in sorted(probe.alive_nodes, key=lambda v: (-degree[v], NodeKey(v)))
        if degree[v] >= 3
    ]
    victims = select_disjoint_victims(probe, candidates[5:], limit=limit)
    if len(victims) < min_k:
        victims = select_disjoint_victims(probe, candidates, limit=limit)
    assert len(victims) >= min_k
    return victims


@pytest.fixture(scope="module")
def burst_graph():
    return make_graph("power_law", 80, seed=8)


@pytest.fixture(scope="module")
def burst_victims(burst_graph):
    return _disjoint_burst(burst_graph)


class TestReferenceTwin:
    @pytest.mark.parametrize("preset", sorted(DELIVERY_PRESETS))
    def test_concurrency_one_is_bit_identical_to_sequential(
        self, burst_graph, burst_victims, preset
    ):
        batch = DistributedForgivingGraph.from_graph(
            burst_graph, fault_schedule=fault_schedule(preset, seed=8)
        )
        batch.delete_batch(burst_victims, concurrency=1)
        loop = DistributedForgivingGraph.from_graph(
            burst_graph, fault_schedule=fault_schedule(preset, seed=8)
        )
        for victim in burst_victims:
            loop.delete(victim)
        assert [_cost_key(r) for r in batch.cost_reports] == [
            _cost_key(r) for r in loop.cost_reports
        ]

    def test_concurrency_one_burst_report_shape(self, burst_graph, burst_victims):
        healer = DistributedForgivingGraph.from_graph(burst_graph)
        burst = healer.delete_batch(burst_victims, concurrency=1)
        assert burst.concurrency == 1
        assert burst.waves == len(burst_victims)
        assert burst.wave_sizes == tuple(1 for _ in burst_victims)
        assert [r.deleted_node for r in burst.reports] == list(burst_victims)


class TestConcurrentAdmission:
    def test_disjoint_burst_runs_in_one_wave_and_fewer_rounds(
        self, burst_graph, burst_victims
    ):
        sequential = DistributedForgivingGraph.from_graph(burst_graph)
        seq = sequential.delete_batch(burst_victims, concurrency=1)
        concurrent = DistributedForgivingGraph.from_graph(burst_graph)
        conc = concurrent.delete_batch(burst_victims, concurrency=None)
        assert conc.waves == 1
        assert conc.wave_sizes == (len(burst_victims),)
        assert conc.rounds < seq.rounds
        concurrent.verify_consistency()

    def test_disjoint_burst_heals_identically_at_any_concurrency(
        self, burst_graph, burst_victims
    ):
        def healed_edges(concurrency):
            healer = DistributedForgivingGraph.from_graph(burst_graph)
            healer.delete_batch(burst_victims, concurrency=concurrency)
            healer.verify_consistency()
            return set(map(frozenset, healer.actual_graph().edges))

        reference = healed_edges(1)
        assert healed_edges(4) == reference
        assert healed_edges(None) == reference

    def test_capped_concurrency_bounds_wave_sizes(self, burst_graph, burst_victims):
        healer = DistributedForgivingGraph.from_graph(burst_graph)
        burst = healer.delete_batch(burst_victims, concurrency=2)
        assert all(size <= 2 for size in burst.wave_sizes)
        assert sum(burst.wave_sizes) == len(burst_victims)
        healer.verify_consistency()

    def test_overlapping_footprints_serialize_into_waves(self, burst_graph):
        probe = DistributedForgivingGraph.from_graph(burst_graph)
        degree = g_prime_view_of(probe).degree
        hub = max(probe.alive_nodes, key=lambda v: (degree[v], NodeKey(v)))
        neighbors = sorted(g_prime_view_of(probe).neighbors(hub), key=NodeKey)[:3]
        victims = [hub, *neighbors]
        healer = DistributedForgivingGraph.from_graph(burst_graph)
        burst = healer.delete_batch(victims, concurrency=None)
        # The hub's footprint contains its neighbours', so at least one
        # victim must wait for a predecessor wave to finish.
        assert burst.waves > 1
        assert sum(burst.wave_sizes) == len(victims)
        healer.verify_consistency()


class TestBackgroundAntiEntropy:
    def test_lossless_fixed_point_probe_is_empty(self, burst_graph, burst_victims):
        healer = DistributedForgivingGraph.from_graph(burst_graph)
        burst = healer.delete_batch(burst_victims, concurrency=None)
        for report in burst.reports:
            assert report.recovery is not None
            assert report.recovery.converged
            assert report.recovery.fixed_point_messages == 0

    def test_faulty_delivery_still_converges_in_shared_fabric(self, burst_graph, burst_victims):
        healer = DistributedForgivingGraph.from_graph(
            burst_graph, fault_schedule=fault_schedule("chaos", seed=8)
        )
        burst = healer.delete_batch(burst_victims, concurrency=None)
        assert all(r.converged for r in burst.reports)
        healer.verify_consistency()


class TestByzantineBurst:
    def test_liar_in_concurrent_burst_accused_without_collateral(
        self, burst_graph, burst_victims
    ):
        schedule = fault_schedule("byzantine", seed=8)
        healer = DistributedForgivingGraph.from_graph(
            burst_graph, fault_schedule=schedule
        )
        burst = healer.delete_batch(burst_victims, concurrency=None)
        assert all(r.converged for r in burst.reports)
        transcript = healer.network.transcript
        accused = set(transcript.accused)
        assert accused  # mixed-epoch traffic still catches the liars
        assert all(schedule.is_byzantine(node) for node in accused)


class TestEngineIntegration:
    def test_burst_schedule_streams_first_class_events(self):
        graph = make_graph("power_law", 60, seed=9)
        healer = DistributedForgivingGraph.from_graph(graph)
        schedule = deletion_burst_schedule(steps=3, burst_size=3, seed=9)
        session = AttackSession(healer, schedule, measure_every=0)
        events = list(session.stream())
        assert events
        for event in events:
            assert event.kind == "burst_delete"
            assert len(event.victims) == 3
            assert {r.deleted_node for r in event.cost_reports} == set(event.victims)
            assert event.cost_report is not None
            assert event.cost_report.deleted_node == event.node
        assert session.result.deletions == sum(len(e.victims) for e in events)
        healer.verify_consistency()

    def test_burst_schedule_is_deterministic_per_seed(self):
        graph = make_graph("power_law", 60, seed=9)

        def run():
            healer = DistributedForgivingGraph.from_graph(graph)
            schedule = deletion_burst_schedule(steps=3, burst_size=3, seed=9)
            AttackSession(healer, schedule, measure_every=0).run()
            return (
                [tuple(b.victims) for b in healer.burst_reports],
                set(map(frozenset, healer.actual_graph().edges)),
            )

        assert run() == run()

    def test_burst_falls_back_to_sequential_deletes_without_delete_batch(self):
        from repro.core.forgiving_graph import ForgivingGraph

        graph = make_graph("power_law", 40, seed=9)
        healer = ForgivingGraph.from_graph(graph)
        schedule = deletion_burst_schedule(steps=2, burst_size=3, seed=9)
        events = schedule.run(healer)
        assert events
        assert all(event.kind == "burst_delete" for event in events)
        assert healer.num_alive == 40 - sum(len(e.victims) for e in events)


class TestReceiveTraceLimit:
    def test_limit_threads_through_to_every_processor(self):
        graph = make_graph("power_law", 40, seed=9)
        healer = DistributedForgivingGraph.from_graph(graph, receive_trace_limit=8)
        assert all(
            p.received.maxlen == 8 for p in healer.network.processors.values()
        )
        victims = _disjoint_burst(graph, min_k=2, limit=4)
        healer.delete_batch(victims, concurrency=None)
        healer.verify_consistency()
        assert all(
            len(p.received) <= 8 for p in healer.network.processors.values()
        )
