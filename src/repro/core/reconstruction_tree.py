"""Reconstruction trees (RTs) — Sections 3 and 4.2 of the paper.

When the adversary deletes a node ``v``, the Forgiving Graph conceptually
replaces ``v`` by a *Reconstruction Tree* ``RT(v)``: a half-full tree whose
leaves are the **ports** of the surviving neighbours (one leaf per ``G'``
edge incident to a deleted node) and whose internal nodes are **helper**
(virtual) nodes, each simulated by a real processor.  After many deletions
the RTs of different deleted nodes merge, so the data structure maintains a
forest of RTs covering all "holes" the adversary has punched into the graph.

The crucial bookkeeping device is the **representative mechanism**
(Section 4.2): every subtree of an RT with ``L`` leaves contains exactly
``L - 1`` helper nodes, each simulated by the processor owning a *distinct*
leaf of that subtree; the one leaf that is not simulating a helper inside the
subtree is the subtree's *representative*, and it is the processor that will
simulate the next helper created on top of the subtree.  This is what keeps
the per-node degree increase bounded (Lemma 3 / Theorem 1.1).

This module provides:

* :class:`RTLeaf` / :class:`RTHelper` — the node types,
* :class:`ReconstructionTree` — a single RT with port-indexed lookups,
* :func:`extract_surviving_complete_trees` — the fragment-strip step run when
  a processor dies (the distributed analogue is ``FindPrRoots`` /
  Algorithm A.5),
* :func:`compute_haft` — the merge of complete trees with the representative
  mechanism (``ComputeHaft`` / Algorithm A.9).

The engine in :mod:`repro.core.forgiving_graph` wires these pieces together.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

from .errors import HaftStructureError, InvariantViolationError
from .haft import validate_haft
from .ports import NodeId, Port, port_order_key

__all__ = [
    "RTLeaf",
    "RTHelper",
    "RTNode",
    "ReconstructionTree",
    "extract_surviving_complete_trees",
    "compute_haft",
    "representative_of",
]


class RTLeaf:
    """A *real node* of the virtual graph: the port of a ``G'`` edge.

    The leaf for port ``(v, x)`` exists exactly while ``v`` is alive and
    ``x`` has been deleted; it is owned (simulated) by processor ``v``.
    """

    __slots__ = ("port", "parent")

    def __init__(self, port: Port) -> None:
        self.port = port
        self.parent: Optional["RTHelper"] = None

    # --- haft-node protocol -------------------------------------------------
    left = None
    right = None
    height = 0
    num_leaves = 1

    @property
    def is_leaf(self) -> bool:
        return True

    @property
    def processor(self) -> NodeId:
        """The real processor that owns (simulates) this leaf."""
        return self.port.processor

    def detach(self) -> None:
        """Disconnect this leaf from its parent helper, if any."""
        parent = self.parent
        if parent is None:
            return
        if parent.left is self:
            parent.left = None
        if parent.right is self:
            parent.right = None
        self.parent = None

    def root(self) -> "RTNode":
        node: RTNode = self
        while node.parent is not None:
            node = node.parent
        return node

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RTLeaf({self.port.processor!r}|{self.port.neighbor!r})"


class RTHelper:
    """A *helper node*: a virtual internal node of an RT.

    ``helper(v, x)`` is simulated by processor ``v`` (the owner of port
    ``(v, x)``) and, by construction, is always an ancestor of the leaf of
    the same port.  A helper has at most three incident virtual edges
    (parent, left child, right child), which is what bounds the degree
    increase of the simulating processor.
    """

    __slots__ = ("simulated_by", "parent", "left", "right", "height", "num_leaves", "representative")

    def __init__(self, simulated_by: Port) -> None:
        self.simulated_by = simulated_by
        self.parent: Optional["RTHelper"] = None
        self.left: Optional[RTNode] = None
        self.right: Optional[RTNode] = None
        self.height = 1
        self.num_leaves = 0
        #: The unique leaf of this helper's subtree whose processor is not
        #: simulating any helper inside the subtree.
        self.representative: Optional[RTLeaf] = None

    @property
    def is_leaf(self) -> bool:
        return False

    @property
    def processor(self) -> NodeId:
        """The real processor simulating this helper node."""
        return self.simulated_by.processor

    def attach_children(self, left: "RTNode", right: "RTNode") -> None:
        """Set both children and refresh the cached height / leaf count."""
        self.left = left
        self.right = right
        left.parent = self
        right.parent = self
        self.height = 1 + max(left.height, right.height)
        self.num_leaves = left.num_leaves + right.num_leaves

    def detach(self) -> None:
        """Disconnect this helper from its parent, if any."""
        parent = self.parent
        if parent is None:
            return
        if parent.left is self:
            parent.left = None
        if parent.right is self:
            parent.right = None
        self.parent = None

    def root(self) -> "RTNode":
        node: RTNode = self
        while node.parent is not None:
            node = node.parent
        return node

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RTHelper(sim={self.simulated_by.processor!r}|{self.simulated_by.neighbor!r}, "
            f"leaves={self.num_leaves}, h={self.height})"
        )


RTNode = Union[RTLeaf, RTHelper]

_rt_id_counter = itertools.count(1)


def representative_of(node: RTNode) -> RTLeaf:
    """Return the representative leaf of ``node`` (the node itself for a leaf)."""
    if isinstance(node, RTLeaf):
        return node
    if node.representative is None:
        raise InvariantViolationError(f"helper {node!r} has no representative")
    return node.representative


class ReconstructionTree:
    """A single reconstruction tree with port-indexed lookup tables.

    Attributes
    ----------
    rt_id:
        A process-unique integer identifier (useful for debugging and for
        grouping nodes of the virtual graph by RT).
    root:
        The root node; an :class:`RTLeaf` for a trivial single-leaf RT,
        otherwise an :class:`RTHelper`.
    leaves:
        Mapping from port to its leaf node.
    helpers:
        Mapping from port to the helper node simulated by that port's
        processor inside this RT (Lemma 3: at most one per port).
    """

    def __init__(self, root: RTNode, leaves: Dict[Port, RTLeaf], helpers: Dict[Port, RTHelper]) -> None:
        self.rt_id = next(_rt_id_counter)
        self.root = root
        self.leaves = leaves
        self.helpers = helpers

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def trivial(cls, port: Port) -> "ReconstructionTree":
        """Create a single-leaf RT for ``port`` (a neighbour that just lost its edge)."""
        leaf = RTLeaf(port)
        return cls(root=leaf, leaves={port: leaf}, helpers={})

    @classmethod
    def from_merge(cls, root: RTNode) -> "ReconstructionTree":
        """Wrap an already-merged tree, rebuilding the lookup tables by traversal."""
        leaves: Dict[Port, RTLeaf] = {}
        helpers: Dict[Port, RTHelper] = {}
        for node in iter_rt_nodes(root):
            if isinstance(node, RTLeaf):
                if node.port in leaves:
                    raise InvariantViolationError(f"port {node.port} appears twice as a leaf")
                leaves[node.port] = node
            else:
                if node.simulated_by in helpers:
                    raise InvariantViolationError(
                        f"port {node.simulated_by} simulates two helpers in one RT"
                    )
                helpers[node.simulated_by] = node
        return cls(root=root, leaves=leaves, helpers=helpers)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        """Number of leaves of this RT."""
        return len(self.leaves)

    @property
    def depth(self) -> int:
        """Height of the RT (0 for a trivial RT)."""
        return self.root.height

    def ports(self) -> Iterable[Port]:
        """Iterate over the leaf ports of this RT."""
        return self.leaves.keys()

    def processors(self) -> Set[NodeId]:
        """Set of real processors owning at least one leaf of this RT."""
        return {port.processor for port in self.leaves}

    def virtual_edges(self) -> Iterator[Tuple[RTNode, RTNode]]:
        """Yield the parent-child edges of this RT (virtual-graph edges)."""
        stack: List[RTNode] = [self.root]
        while stack:
            node = stack.pop()
            if isinstance(node, RTHelper):
                for child in (node.left, node.right):
                    if child is not None:
                        yield (node, child)
                        stack.append(child)

    def leaf_distance(self, a: Port, b: Port) -> int:
        """Tree distance (number of virtual hops) between two leaf ports."""
        if a not in self.leaves or b not in self.leaves:
            raise KeyError(f"ports {a} / {b} are not both leaves of this RT")
        path_a = self._path_to_root(self.leaves[a])
        path_b = self._path_to_root(self.leaves[b])
        ancestors_a = {id(n): i for i, n in enumerate(path_a)}
        for j, node in enumerate(path_b):
            if id(node) in ancestors_a:
                return ancestors_a[id(node)] + j
        raise InvariantViolationError("leaves of the same RT share no common ancestor")

    @staticmethod
    def _path_to_root(node: RTNode) -> List[RTNode]:
        path: List[RTNode] = [node]
        while path[-1].parent is not None:
            path.append(path[-1].parent)
        return path

    # ------------------------------------------------------------------ #
    # validation
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Check every structural invariant of this RT.

        Raises :class:`InvariantViolationError` (or
        :class:`HaftStructureError`) on any inconsistency.  Checked:

        * the tree is a valid haft;
        * the lookup tables match the tree contents exactly;
        * every helper is simulated by the processor of a leaf of this RT
          and is an ancestor of that processor's leaf for the same port;
        * every subtree with ``L`` leaves contains exactly ``L - 1``
          helpers, and the cached representative is the unique leaf of the
          subtree whose port simulates no helper inside the subtree.
        """
        if self.size == 0:
            raise InvariantViolationError("an RT must have at least one leaf")
        if self.size > 1:
            try:
                validate_haft(self.root)  # duck-typed: RT nodes expose the haft protocol
            except HaftStructureError as exc:
                raise InvariantViolationError(f"RT {self.rt_id} is not a valid haft: {exc}") from exc
        seen_leaves: Dict[Port, RTLeaf] = {}
        seen_helpers: Dict[Port, RTHelper] = {}
        for node in iter_rt_nodes(self.root):
            if isinstance(node, RTLeaf):
                if node.port in seen_leaves:
                    raise InvariantViolationError(f"port {node.port} appears twice as a leaf")
                seen_leaves[node.port] = node
            else:
                if node.simulated_by in seen_helpers:
                    raise InvariantViolationError(
                        f"port {node.simulated_by} simulates two helpers in RT {self.rt_id}"
                    )
                seen_helpers[node.simulated_by] = node
        if seen_leaves != self.leaves or seen_helpers != self.helpers:
            raise InvariantViolationError(f"lookup tables of RT {self.rt_id} are stale")
        # helper <-> leaf pairing (Lemma 3 and the ancestor property)
        for port, helper in self.helpers.items():
            if port not in self.leaves:
                raise InvariantViolationError(
                    f"helper for port {port} exists but the port is not a leaf of RT {self.rt_id}"
                )
            leaf = self.leaves[port]
            if not _is_ancestor(helper, leaf):
                raise InvariantViolationError(
                    f"helper for port {port} is not an ancestor of its own leaf"
                )
        # representative mechanism
        for node in iter_rt_nodes(self.root):
            if isinstance(node, RTHelper):
                self._validate_representative(node)

    def _validate_representative(self, helper: RTHelper) -> None:
        subtree_leaves = [n for n in iter_rt_nodes(helper) if isinstance(n, RTLeaf)]
        subtree_helpers = [n for n in iter_rt_nodes(helper) if isinstance(n, RTHelper)]
        if len(subtree_helpers) != len(subtree_leaves) - 1:
            raise InvariantViolationError(
                f"subtree of {helper!r} has {len(subtree_helpers)} helpers "
                f"for {len(subtree_leaves)} leaves"
            )
        simulating_ports = {h.simulated_by for h in subtree_helpers}
        free_leaves = [leaf for leaf in subtree_leaves if leaf.port not in simulating_ports]
        if len(free_leaves) != 1:
            raise InvariantViolationError(
                f"subtree of {helper!r} has {len(free_leaves)} representative candidates"
            )
        if helper.representative is not free_leaves[0]:
            raise InvariantViolationError(
                f"cached representative of {helper!r} is not the free leaf of its subtree"
            )


# ---------------------------------------------------------------------- #
# traversal / utilities
# ---------------------------------------------------------------------- #
def iter_rt_nodes(root: RTNode) -> Iterator[RTNode]:
    """Yield every node of the subtree rooted at ``root`` in pre-order."""
    stack: List[RTNode] = [root]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, RTHelper):
            if node.right is not None:
                stack.append(node.right)
            if node.left is not None:
                stack.append(node.left)


def _is_ancestor(ancestor: RTNode, node: RTNode) -> bool:
    current: Optional[RTNode] = node
    while current is not None:
        if current is ancestor:
            return True
        current = current.parent
    return False


# ---------------------------------------------------------------------- #
# fragment stripping after a deletion (distributed analogue: FindPrRoots)
# ---------------------------------------------------------------------- #
def extract_surviving_complete_trees(
    rt: ReconstructionTree,
    dead_processor: NodeId,
    removed_edges: Optional[List[Tuple[NodeId, NodeId]]] = None,
    dead_nodes: Optional[List[RTNode]] = None,
) -> Tuple[List[RTNode], List[Port]]:
    """Break an RT touched by the deletion of ``dead_processor`` into complete trees.

    All leaves owned by ``dead_processor`` and all helpers simulated by it
    vanish with the processor; the RT falls apart into fragments.  Following
    the paper's repair (Figures 7–8), only the *complete* subtrees that
    survive fully intact are kept — every other surviving helper is "marked
    red" and released (its simulating port becomes free again), while every
    surviving leaf is kept (at worst as a trivial complete tree of one leaf).

    The dismantling walks only the *broken* part of the tree: the paths from
    the dead nodes up to the root, plus the strip spines of the salvaged
    subtrees hanging off those paths.  Intact complete subtrees are never
    entered (completeness is the O(1) counter test of Algorithm A.6), which
    is what keeps the centralized repair cost proportional to the damage
    rather than to the size of the tree.

    Parameters
    ----------
    rt:
        The reconstruction tree to dismantle.  It is consumed by this call:
        afterwards its lookup tables must no longer be used (the engine
        reconciles them itself).
    dead_processor:
        The processor the adversary just deleted.
    removed_edges:
        Optional accumulator.  When given, every virtual edge destroyed by
        the dismantling (i.e. every parent-child edge of ``rt`` that is not
        internal to a surviving complete piece) is appended as a projected
        ``(processor, processor)`` pair.  The engine uses this to apply
        exact healed-graph deltas: edges inside surviving pieces are carried
        over to the merged RT untouched, so only the destroyed glue needs
        accounting.
    dead_nodes:
        The RT nodes (leaves and helpers) owned by ``dead_processor``, when
        the caller already knows them (the engine finds them through its
        port registries in O(degree)).  Computed here by a table scan when
        omitted.

    Returns
    -------
    (complete_roots, released_helper_ports):
        ``complete_roots`` are detached roots of fully-alive complete
        subtrees (largest first), ready to be merged by :func:`compute_haft`.
        ``released_helper_ports`` lists the ports whose helper node was
        discarded (so the engine can clear its helper registry).
    """
    complete_roots: List[RTNode] = []
    released: List[Port] = []

    if dead_nodes is None:
        dead_nodes = [
            leaf for port, leaf in rt.leaves.items() if port.processor == dead_processor
        ]
        dead_nodes += [
            helper
            for port, helper in rt.helpers.items()
            if port.processor == dead_processor
        ]

    def record_cut(parent: RTHelper, child: RTNode) -> None:
        if removed_edges is not None:
            removed_edges.append((parent.processor, child.processor))

    def collect_strip(node: RTNode) -> None:
        """Strip a fully-alive subtree into complete pieces (primary roots).

        Every subtree of an RT is itself a haft, so this is exactly the
        Strip operation: complete subtrees are kept whole, alive glue nodes
        on the right spine are released.  Completeness is decided from the
        eagerly-maintained counters (``num_leaves == 2^height``), so intact
        pieces are never traversed.
        """
        while True:
            if node.num_leaves == (1 << node.height):
                complete_roots.append(node)
                return
            released.append(node.simulated_by)
            if node.left is not None:
                record_cut(node, node.left)
                complete_roots.append(node.left)
            right = node.right
            if right is None:
                return
            record_cut(node, right)
            node = right

    root = rt.root
    if isinstance(root, RTLeaf):
        if root.port.processor != dead_processor:
            complete_roots.append(root)
        return complete_roots, released

    if not dead_nodes:
        # The dead processor never actually appeared in this RT (possible
        # for callers outside the engine) — strip the whole tree as-is.
        collect_strip(root)
    else:
        # Mark the broken region: every dead node plus every ancestor of a
        # dead node.  Identity-keyed, since RT nodes are plain objects.
        dead_ids = {id(dead) for dead in dead_nodes}
        broken: Dict[int, RTNode] = {id(dead): dead for dead in dead_nodes}
        for dead in dead_nodes:
            cursor = dead.parent
            while cursor is not None and id(cursor) not in broken:
                broken[id(cursor)] = cursor
                cursor = cursor.parent
        # Every child edge of a broken node is destroyed; children outside
        # the broken region root maximal fully-alive subtrees and are
        # salvaged via Strip.  Surviving broken helpers are released.
        for node in broken.values():
            if isinstance(node, RTLeaf):
                continue
            for child in (node.left, node.right):
                if child is not None:
                    record_cut(node, child)
                    if id(child) not in broken:
                        collect_strip(child)
            if id(node) not in dead_ids:
                released.append(node.simulated_by)

    for node in complete_roots:
        node.detach()
    complete_roots.sort(key=lambda n: -n.num_leaves)
    return complete_roots, released


# ---------------------------------------------------------------------- #
# ComputeHaft (Algorithm A.9) — merge with the representative mechanism
# ---------------------------------------------------------------------- #
def compute_haft(
    complete_roots: Sequence[RTNode],
    busy_ports: Optional[Set[Port]] = None,
) -> Tuple[RTNode, List[RTHelper]]:
    """Merge complete trees into a single haft using representative helpers.

    This is the centralized equivalent of ``ComputeHaft`` (Algorithm A.9):
    the forest of complete trees (all of different provenance — surviving
    pieces of broken RTs plus trivial leaves of the deleted node's
    neighbours) is combined exactly like binary addition, and every new
    internal node is a fresh :class:`RTHelper` simulated by the
    representative of one of the two trees it joins, inheriting the
    representative of the other.

    Parameters
    ----------
    complete_roots:
        Detached roots of complete trees (leaves are :class:`RTLeaf`,
        internal nodes :class:`RTHelper`).  Must be non-empty.
    busy_ports:
        Ports that are already simulating a helper node elsewhere.  Used as
        a safety net: the representative mechanism guarantees the ports it
        picks are free, and this function raises
        :class:`InvariantViolationError` if that guarantee is ever violated.

    Returns
    -------
    (root, new_helpers):
        The root of the merged haft and the list of helper nodes created.
    """
    if not complete_roots:
        raise ValueError("compute_haft() requires at least one complete tree")
    busy = set(busy_ports) if busy_ports is not None else set()
    new_helpers: List[RTHelper] = []

    # Merge order must be a total order that survives id relabelings: equal
    # sizes tie-break on the representative port's node ids in their *natural*
    # order (port_order_key), not on reprs, so isomorphic inputs whose ids map
    # monotonically onto each other produce identical hafts.
    def sort_key(node: RTNode) -> Tuple[int, tuple]:
        return (node.num_leaves, port_order_key(representative_of(node).port))

    def make_helper(simulating_rep: RTLeaf, inherited_rep: RTLeaf, left: RTNode, right: RTNode) -> RTHelper:
        port = simulating_rep.port
        if port in busy:
            raise InvariantViolationError(
                f"representative mechanism picked busy port {port} to simulate a helper"
            )
        helper = RTHelper(simulated_by=port)
        helper.attach_children(left, right)
        helper.representative = inherited_rep
        busy.add(port)
        new_helpers.append(helper)
        return helper

    forest: List[RTNode] = sorted(complete_roots, key=sort_key)
    if len(forest) == 1:
        return forest[0], new_helpers

    # Phase 1 — combine equal-sized complete trees (binary-addition carries).
    i = 0
    while i < len(forest) - 1:
        a, b = forest[i], forest[i + 1]
        if a.num_leaves == b.num_leaves:
            helper = make_helper(
                simulating_rep=representative_of(a),
                inherited_rep=representative_of(b),
                left=a,
                right=b,
            )
            del forest[i : i + 2]
            _insert_sorted_rt(forest, helper, sort_key)
            i = max(i - 1, 0)
        else:
            i += 1

    # Phase 2 — chain the distinct-sized complete trees smallest-first; the
    # larger tree is always the left child so every prefix is a haft.
    root = forest[0]
    for tree in forest[1:]:
        helper = make_helper(
            simulating_rep=representative_of(tree),
            inherited_rep=representative_of(root),
            left=tree,
            right=root,
        )
        root = helper
    return root, new_helpers


def _insert_sorted_rt(forest: List[RTNode], node: RTNode, sort_key) -> None:
    key = sort_key(node)
    lo, hi = 0, len(forest)
    while lo < hi:
        mid = (lo + hi) // 2
        if sort_key(forest[mid]) < key:
            lo = mid + 1
        else:
            hi = mid
    forest.insert(lo, node)
