"""Core data structures of the Forgiving Graph reproduction.

This package contains the paper's primary contribution:

* :mod:`repro.core.haft` — half-full trees (Section 4),
* :mod:`repro.core.reconstruction_tree` — reconstruction trees with the
  representative mechanism (Section 4.2),
* :mod:`repro.core.forgiving_graph` — the self-healing engine (Sections 2-3),
* :mod:`repro.core.ports` — port / edge identifiers (Table 1),
* :mod:`repro.core.errors` — the exception hierarchy,
* :mod:`repro.core.views` — zero-copy read-only access to healer graphs.
"""

from .errors import (
    ConfigurationError,
    DeletedNodeError,
    DuplicateNodeError,
    ForgivingGraphError,
    HaftStructureError,
    InvalidEdgeError,
    InvariantViolationError,
    ProtocolError,
    UnknownNodeError,
)
from .forgiving_graph import ForgivingGraph, HealingEvent, RepairReport
from .haft import (
    HaftNode,
    binary_decomposition,
    build_haft,
    depth,
    haft_shape_signature,
    is_complete,
    is_haft,
    leaf_count,
    leaves,
    merge,
    primary_roots,
    strip,
    validate_haft,
)
from .ports import NodeId, NodeKey, Port, edge_key, node_order_key, port_order_key, sorted_nodes
from .views import actual_view_of, g_prime_view_of, healer_views
from .reconstruction_tree import (
    ReconstructionTree,
    RTHelper,
    RTLeaf,
    compute_haft,
    extract_surviving_complete_trees,
    representative_of,
)

__all__ = [
    # errors
    "ForgivingGraphError",
    "UnknownNodeError",
    "DuplicateNodeError",
    "DeletedNodeError",
    "InvalidEdgeError",
    "HaftStructureError",
    "InvariantViolationError",
    "ProtocolError",
    "ConfigurationError",
    # haft
    "HaftNode",
    "build_haft",
    "leaves",
    "leaf_count",
    "depth",
    "is_complete",
    "is_haft",
    "validate_haft",
    "primary_roots",
    "strip",
    "merge",
    "haft_shape_signature",
    "binary_decomposition",
    # ports
    "NodeId",
    "NodeKey",
    "Port",
    "edge_key",
    "node_order_key",
    "port_order_key",
    "sorted_nodes",
    # reconstruction trees
    "ReconstructionTree",
    "RTLeaf",
    "RTHelper",
    "compute_haft",
    "extract_surviving_complete_trees",
    "representative_of",
    # engine
    "ForgivingGraph",
    "RepairReport",
    "HealingEvent",
    # views
    "actual_view_of",
    "g_prime_view_of",
    "healer_views",
]
