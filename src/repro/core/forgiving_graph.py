"""The Forgiving Graph engine — Sections 2, 3 and 5 of the paper.

:class:`ForgivingGraph` is the centralized reference implementation of the
paper's self-healing algorithm.  It maintains three views of the network:

``G'`` (:meth:`ForgivingGraph.g_prime_view`)
    the graph of all original nodes plus adversarial insertions, ignoring
    deletions and healings.  This is the yardstick against which the degree
    and stretch guarantees are stated.

the *virtual graph* (:meth:`ForgivingGraph.virtual_graph`)
    surviving real edges plus the reconstruction trees (RTs) replacing the
    deleted nodes; leaves of RTs are edge-ports, internal nodes are helper
    nodes simulated by real processors.

``G`` (:meth:`ForgivingGraph.actual_graph`)
    the actual healed network: the homomorphic image of the virtual graph
    obtained by mapping every port and helper to its owning processor and
    dropping self-loops.  All guarantees of Theorem 1 are measured on ``G``.
    The engine maintains ``G`` *incrementally*: every healed edge carries a
    count of its sources (one per surviving real edge, one per RT virtual
    edge projecting onto it), and repairs apply exact deltas — only the
    broken RT glue ever gains or loses sources.  Zero-copy read access is
    available through :meth:`ForgivingGraph.actual_view` /
    :meth:`ForgivingGraph.g_prime_graph_view`, and the from-scratch builder
    is retained as ``_rebuild_actual()`` for cross-checking.

The distributed message-passing version of the same algorithm lives in
:mod:`repro.distributed`; it drives repairs through explicit messages so the
communication costs of Lemma 4 can be measured, and it can be cross-checked
against this engine.

Typical usage::

    from repro import ForgivingGraph

    fg = ForgivingGraph.from_edges([(0, 1), (1, 2), (2, 3)])
    fg.delete(1)                       # adversarial deletion + self-healing
    fg.insert(4, attach_to=[0, 3])     # adversarial insertion
    g = fg.actual_graph()              # healed networkx graph
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import networkx as nx

from .errors import (
    DeletedNodeError,
    DuplicateNodeError,
    InvalidEdgeError,
    InvariantViolationError,
    UnknownNodeError,
)
from .journal import Journal
from .ports import NodeId, Port
from .reconstruction_tree import (
    ReconstructionTree,
    RTHelper,
    RTLeaf,
    RTNode,
    compute_haft,
    extract_surviving_complete_trees,
)

__all__ = ["ForgivingGraph", "RepairReport", "HealingEvent"]


@dataclass
class RepairReport:
    """Summary of the self-healing work performed for a single deletion.

    The fields mirror the quantities bounded by Theorem 1.3 / Lemma 4 and are
    consumed by the repair-cost experiments (E5 in DESIGN.md).
    """

    deleted_node: NodeId
    #: Degree of the deleted node in ``G'`` at deletion time (the ``d`` of Lemma 4).
    degree_in_g_prime: int
    #: Degree of the deleted node in the healed graph ``G`` just before deletion.
    degree_in_actual: int
    #: Number of reconstruction trees (or fragments) merged by this repair.
    merged_rts: int
    #: Number of complete trees the merge combined (after stripping fragments).
    merged_complete_trees: int
    #: Leaves of the reconstruction tree produced by the repair (0 if none).
    new_rt_size: int
    #: Helper nodes created by the repair.
    helpers_created: int
    #: Helper nodes discarded ("marked red") by the repair.
    helpers_released: int
    #: Edges of the healed graph added by the repair.
    edges_added: int
    #: Edges of the healed graph removed by the repair (beyond those lost with the node).
    edges_removed: int


@dataclass
class HealingEvent:
    """One entry of the event log kept by :class:`ForgivingGraph`."""

    step: int
    kind: str  # "insert" or "delete"
    node: NodeId
    report: Optional[RepairReport] = None
    attached_to: Tuple[NodeId, ...] = ()


class ForgivingGraph:
    """Self-healing graph with the guarantees of Theorem 1.

    Parameters
    ----------
    check_invariants:
        When True (the default for graphs with at most ``invariant_check_limit``
        nodes), the full structural invariant suite is verified after every
        operation.  Turn it off for large benchmark runs.
    invariant_check_limit:
        Automatic invariant checking is skipped once ``G'`` grows beyond this
        many nodes (checking is quadratic-ish and meant for tests).
    """

    def __init__(
        self,
        check_invariants: bool = False,
        invariant_check_limit: int = 300,
    ) -> None:
        self._g_prime = nx.Graph()
        self._alive: Set[NodeId] = set()
        self._deleted: Set[NodeId] = set()
        # Reconstruction-tree bookkeeping -------------------------------------------------
        self._rts: Dict[int, ReconstructionTree] = {}
        self._rt_of_leaf: Dict[Port, ReconstructionTree] = {}
        self._rt_of_helper: Dict[Port, ReconstructionTree] = {}
        # Incrementally-maintained healed graph ``G`` -------------------------------------
        # ``G`` is the image of the virtual graph under the processor projection,
        # so one healed edge can have several sources (a surviving real edge and
        # any number of RT virtual edges between the same two processors).
        # ``_edge_mult`` counts those sources per healed edge; an edge lives in
        # ``_actual`` exactly while its count is positive, which lets delete()
        # apply per-repair deltas instead of rebuilding ``G`` from scratch.
        self._actual = nx.Graph()
        self._edge_mult: Dict[frozenset, int] = {}
        # Degree-touch journal --------------------------------------------------------------
        # Append-only log of nodes whose healed degree may have changed, fed by
        # the same edge-delta hooks that maintain ``G``.  Incremental consumers
        # (the adversary's heap trackers, see repro.adversary.incremental)
        # register a cursor and refresh only the touched nodes, so their
        # per-move cost is proportional to the repair delta instead of O(n).
        self._degree_touch_log: Journal[NodeId] = Journal()
        # Edge-delta journal ----------------------------------------------------------------
        # Append-only log of healed-graph edge changes, written by the same
        # hooks: one (added, u, v) entry per edge of ``G`` that appears
        # (added=True) or disappears (added=False).  Mirrors the degree-touch
        # journal design: consumers register a cursor and apply exactly the
        # delta of the last operation, never a full edge-set diff.
        self._edge_delta_log: Journal[Tuple[bool, NodeId, NodeId]] = Journal()
        # Auditing -------------------------------------------------------------------------
        self.events: List[HealingEvent] = []
        self._step = 0
        self._check_invariants = check_invariants
        self._invariant_check_limit = invariant_check_limit
        #: The reconstruction tree produced by the most recent deletion (if any).
        #: Exposed for the distributed layer, which replays the repair as messages.
        self.last_repair_rt: Optional[ReconstructionTree] = None
        #: Helper nodes created by the most recent deletion's merge.
        self.last_new_helpers: List[RTHelper] = []
        #: Ports whose helper node was released ("marked red") by the most recent deletion.
        self.last_released_helper_ports: List[Port] = []

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[NodeId, NodeId]],
        nodes: Iterable[NodeId] = (),
        **kwargs,
    ) -> "ForgivingGraph":
        """Build a Forgiving Graph whose initial network ``G_0`` has the given edges."""
        fg = cls(**kwargs)
        for node in nodes:
            fg._add_initial_node(node)
        for u, v in edges:
            fg._add_initial_node(u)
            fg._add_initial_node(v)
            fg._add_initial_edge(u, v)
        fg._maybe_check()
        return fg

    @classmethod
    def from_graph(cls, graph: nx.Graph, **kwargs) -> "ForgivingGraph":
        """Build a Forgiving Graph from an existing networkx graph ``G_0``."""
        fg = cls(**kwargs)
        for node in graph.nodes:
            fg._add_initial_node(node)
        for u, v in graph.edges:
            fg._add_initial_edge(u, v)
        fg._maybe_check()
        return fg

    def _add_initial_node(self, node: NodeId) -> None:
        if node in self._g_prime:
            return
        self._g_prime.add_node(node)
        self._alive.add(node)
        self._actual.add_node(node)

    def _add_initial_edge(self, u: NodeId, v: NodeId) -> None:
        if u == v:
            raise InvalidEdgeError(f"self-loop ({u!r}, {v!r}) not allowed")
        if not self._g_prime.has_edge(u, v):
            self._edge_source_added(u, v)
        self._g_prime.add_edge(u, v)

    # ------------------------------------------------------------------ #
    # basic queries
    # ------------------------------------------------------------------ #
    @property
    def nodes_ever(self) -> int:
        """Total number of nodes seen so far (the ``n`` of the theorems)."""
        return self._g_prime.number_of_nodes()

    @property
    def num_alive(self) -> int:
        """Number of currently surviving nodes."""
        return len(self._alive)

    @property
    def alive_nodes(self) -> Set[NodeId]:
        """A copy of the set of surviving node identifiers."""
        return set(self._alive)

    @property
    def deleted_nodes(self) -> Set[NodeId]:
        """A copy of the set of deleted node identifiers."""
        return set(self._deleted)

    def is_alive(self, node: NodeId) -> bool:
        """True when ``node`` has been seen and not deleted."""
        return node in self._alive

    def __contains__(self, node: NodeId) -> bool:
        return node in self._alive

    def __len__(self) -> int:
        return len(self._alive)

    def reconstruction_trees(self) -> List[ReconstructionTree]:
        """The current reconstruction trees (non-trivial structure only)."""
        return list(self._rts.values())

    def affected_reconstruction_trees(self, node: NodeId) -> List[ReconstructionTree]:
        """The RTs that the deletion of ``node`` would dismantle and merge.

        These are the RTs in which ``node`` currently owns a leaf or
        simulates a helper.  Used by the distributed layer to lay out the
        probe paths of the repair before the deletion is applied.
        """
        if node not in self._g_prime:
            raise UnknownNodeError(node, "affected_reconstruction_trees")
        affected: Dict[int, ReconstructionTree] = {}
        for neighbor in self._g_prime.neighbors(node):
            own_port = Port(node, neighbor)
            for registry in (self._rt_of_leaf, self._rt_of_helper):
                rt = registry.get(own_port)
                if rt is not None:
                    affected[rt.rt_id] = rt
        return list(affected.values())

    # ------------------------------------------------------------------ #
    # the three graph views
    # ------------------------------------------------------------------ #
    def g_prime_view(self) -> nx.Graph:
        """Return a copy of ``G'``: all nodes/edges ever inserted, ignoring deletions."""
        return self._g_prime.copy()

    def g_prime_graph_view(self) -> nx.Graph:
        """Zero-copy read-only view of ``G'`` (raises on mutation attempts).

        Prefer this over :meth:`g_prime_view` in measurement code: the view
        shares the engine's adjacency structures, so taking one is O(1)
        regardless of graph size.  The view stays in sync with the engine —
        do not hold it across operations if a frozen snapshot is needed.
        """
        return self._g_prime.copy(as_view=True)

    def g_prime_degree(self, node: NodeId) -> int:
        """Degree of ``node`` in ``G'`` (the denominator of the degree guarantee)."""
        if node not in self._g_prime:
            raise UnknownNodeError(node, "g_prime_degree")
        return self._g_prime.degree[node]

    def actual_graph(self) -> nx.Graph:
        """Return the healed network ``G`` (a copy; mutations do not affect the engine)."""
        return self._actual.copy()

    def actual_view(self) -> nx.Graph:
        """Zero-copy read-only view of the healed network ``G``.

        The healed graph is maintained incrementally across operations, so
        this accessor is O(1).  Like :meth:`g_prime_graph_view`, the view
        reflects future mutations of the engine.
        """
        return self._actual.copy(as_view=True)

    def actual_degree(self, node: NodeId) -> int:
        """Degree of ``node`` in the healed network ``G`` (O(1), no graph build)."""
        if node not in self._alive:
            raise UnknownNodeError(node, "actual_degree")
        return self._actual.degree[node]

    def actual_edges(self) -> Set[Tuple[NodeId, NodeId]]:
        """Edge set of the healed network ``G`` (read off the maintained graph)."""
        return set(self._actual.edges)

    def virtual_graph(self) -> nx.Graph:
        """Return the virtual graph: surviving real edges plus the RTs.

        Nodes are labelled ``("real", processor)`` for surviving processors,
        ``("leaf", port)`` for RT leaves and ``("helper", port)`` for helper
        nodes.  Every node carries a ``processor`` attribute giving the real
        processor that owns it; the healed graph is exactly the quotient of
        this graph under that attribute.
        """
        virtual = nx.Graph()
        for node in self._alive:
            virtual.add_node(("real", node), processor=node)
        for u, v in self._g_prime.edges:
            if u in self._alive and v in self._alive:
                virtual.add_edge(("real", u), ("real", v))
        for rt in self._rts.values():
            for parent, child in rt.virtual_edges():
                virtual.add_edge(self._virtual_label(parent), self._virtual_label(child))
            if rt.size == 1:
                only_leaf = next(iter(rt.leaves.values()))
                virtual.add_node(self._virtual_label(only_leaf), processor=only_leaf.processor)
        for label in virtual.nodes:
            kind, payload = label
            if kind == "real":
                virtual.nodes[label]["processor"] = payload
            else:
                virtual.nodes[label]["processor"] = payload.processor
        return virtual

    @staticmethod
    def _virtual_label(node: RTNode) -> Tuple[str, Port]:
        if isinstance(node, RTLeaf):
            return ("leaf", node.port)
        return ("helper", node.simulated_by)

    def _rebuild_actual(self) -> nx.Graph:
        """Build the healed graph ``G`` from scratch (the seed implementation).

        The engine maintains ``G`` incrementally (see ``_edge_mult``); this
        from-scratch builder is kept as the ground truth for cross-checking —
        :meth:`check_invariants` asserts the incrementally-maintained graph
        matches it, and the equivalence tests exercise that after every event
        of randomized churn runs.
        """
        actual = nx.Graph()
        actual.add_nodes_from(self._alive)
        for u, v in self._g_prime.edges:
            if u in self._alive and v in self._alive:
                actual.add_edge(u, v)
        for rt in self._rts.values():
            for parent, child in rt.virtual_edges():
                p, c = parent.processor, child.processor
                if p != c:
                    actual.add_edge(p, c)
        return actual

    # -- incremental healed-graph deltas ---------------------------------------------
    def _edge_source_added(self, u: NodeId, v: NodeId) -> None:
        """Record one more source (real edge or RT virtual edge) for healed edge (u, v)."""
        if u == v:
            return
        key = frozenset((u, v))
        count = self._edge_mult.get(key, 0)
        if count == 0:
            self._actual.add_edge(u, v)
            self._degree_touch_log.append(u)
            self._degree_touch_log.append(v)
            self._edge_delta_log.append((True, u, v))
        self._edge_mult[key] = count + 1

    def _edge_source_removed(self, u: NodeId, v: NodeId) -> None:
        """Drop one source of healed edge (u, v); the edge disappears at zero sources."""
        if u == v:
            return
        key = frozenset((u, v))
        count = self._edge_mult.get(key, 0)
        if count <= 1:
            self._edge_mult.pop(key, None)
            if self._actual.has_edge(u, v):
                self._actual.remove_edge(u, v)
                self._degree_touch_log.append(u)
                self._degree_touch_log.append(v)
                self._edge_delta_log.append((False, u, v))
        else:
            self._edge_mult[key] = count - 1

    @property
    def degree_touch_log(self) -> Journal[NodeId]:
        """Append-only journal of nodes whose healed degree may have changed.

        Entries are appended whenever an edge of the incrementally-maintained
        healed graph ``G`` appears or disappears (and when a node is inserted,
        so isolated newcomers are observable too).  Consumers must treat the
        log as read-only, track their own absolute cursor, and *register* it
        (:meth:`repro.core.journal.Journal.register_cursor`) so that
        :meth:`compact_journals` retains the suffix they still need.
        """
        return self._degree_touch_log

    @property
    def edge_delta_log(self) -> Journal[Tuple[bool, NodeId, NodeId]]:
        """Append-only journal of healed-graph edge changes.

        One ``(added, u, v)`` entry per edge of ``G`` that appeared
        (``added=True``) or disappeared (``added=False``), written by the same
        incremental hooks that maintain ``G`` — so the suffix written during
        one repair *is* that repair's exact edge delta.  Consumers keep (and
        register) their own cursor, like with :attr:`degree_touch_log`.

        No in-tree consumer registers at the moment: the distributed layer's
        link sync, its original consumer, became message-native in PR 4.
        The journal remains the supported surface for external/future
        incremental edge consumers, and since compaction drops everything
        nobody registered for, an unconsumed journal costs only the appends
        since the last :meth:`compact_journals` call.
        """
        return self._edge_delta_log

    def compact_journals(self) -> Dict[str, int]:
        """Truncate the journal prefixes every registered consumer has drained.

        The journals are append-only per engine; without compaction a
        multi-million-step session retains every entry forever.  Consumers
        that registered a cursor pin their undrained suffix; history nobody
        registered for is dropped.  Returns the number of entries dropped
        per journal.  Called by :class:`repro.engine.AttackSession` on its
        measurement cadence, and safe to call at any time.
        """
        return {
            "degree_touch": self._degree_touch_log.compact(),
            "edge_delta": self._edge_delta_log.compact(),
        }

    def has_actual_edge(self, u: NodeId, v: NodeId) -> bool:
        """True when the healed network ``G`` currently has the edge ``(u, v)`` (O(1))."""
        return self._actual.has_edge(u, v)


    # ------------------------------------------------------------------ #
    # adversarial insertion
    # ------------------------------------------------------------------ #
    def insert(self, node: NodeId, attach_to: Sequence[NodeId] = ()) -> None:
        """Insert a new node with edges to the given surviving nodes.

        This is the adversary's insertion move: the new node may connect to
        any subset of currently alive nodes (Figure 1).  Insertions require
        no healing work; the new edges join both ``G'`` and ``G``.
        """
        if node in self._g_prime:
            if node in self._deleted:
                raise DeletedNodeError(node, "node identifiers cannot be reused")
            raise DuplicateNodeError(node)
        neighbors = list(dict.fromkeys(attach_to))
        for neighbor in neighbors:
            if neighbor == node:
                raise InvalidEdgeError(f"cannot attach {node!r} to itself")
            if neighbor not in self._alive:
                raise UnknownNodeError(neighbor, "insertion must attach to alive nodes")
        self._g_prime.add_node(node)
        self._alive.add(node)
        self._actual.add_node(node)
        self._degree_touch_log.append(node)
        for neighbor in neighbors:
            self._g_prime.add_edge(node, neighbor)
            self._edge_source_added(node, neighbor)
        self._step += 1
        self.events.append(
            HealingEvent(step=self._step, kind="insert", node=node, attached_to=tuple(neighbors))
        )
        self._maybe_check()

    # ------------------------------------------------------------------ #
    # adversarial deletion + self-healing
    # ------------------------------------------------------------------ #
    def delete(self, node: NodeId) -> RepairReport:
        """Delete ``node`` (adversarial move) and run the self-healing repair.

        Returns a :class:`RepairReport` describing the repair work, whose
        fields feed the cost experiments.  Raises if the node is unknown or
        already deleted.
        """
        if node not in self._g_prime:
            raise UnknownNodeError(node, "delete")
        if node not in self._alive:
            raise DeletedNodeError(node, "delete")

        degree_g_prime = self._g_prime.degree[node]
        degree_actual = self._actual.degree[node] if node in self._actual else 0
        # ``_edge_mult`` keys are exactly the healed edges, so edge counts are O(1).
        edges_before = len(self._edge_mult)

        # 1. The processor dies: it disappears from the alive set, all its
        #    ports disappear, and every helper node it simulates disappears.
        self._alive.discard(node)
        self._deleted.add(node)
        for neighbor in self._g_prime.neighbors(node):
            if neighbor in self._alive:
                self._edge_source_removed(node, neighbor)

        # Locate the affected RTs *and* the dead RT nodes inside them through
        # the port registries — O(deg) lookups, no table or tree scans.
        affected_rts: Dict[int, ReconstructionTree] = {}
        dead_rt_nodes: Dict[int, List[RTNode]] = {}
        for neighbor in self._g_prime.neighbors(node):
            own_port = Port(node, neighbor)
            leaf_rt = self._rt_of_leaf.get(own_port)
            if leaf_rt is not None:
                affected_rts[leaf_rt.rt_id] = leaf_rt
                dead_rt_nodes.setdefault(leaf_rt.rt_id, []).append(leaf_rt.leaves[own_port])
            helper_rt = self._rt_of_helper.get(own_port)
            if helper_rt is not None:
                affected_rts[helper_rt.rt_id] = helper_rt
                dead_rt_nodes.setdefault(helper_rt.rt_id, []).append(
                    helper_rt.helpers[own_port]
                )

        # 2. Neighbours that were directly connected (both endpoints alive
        #    until now) contribute a fresh trivial leaf each.
        complete_trees: List[RTNode] = []
        new_trivial_leaves: List[RTLeaf] = []
        for neighbor in self._g_prime.neighbors(node):
            if neighbor in self._alive and Port(neighbor, node) not in self._rt_of_leaf:
                leaf = RTLeaf(Port(neighbor, node))
                complete_trees.append(leaf)
                new_trivial_leaves.append(leaf)

        # 3. Every affected RT is dismantled into its surviving complete
        #    pieces; helpers outside those pieces are released.  Both the
        #    dismantling and the healed-graph deltas touch only the *broken
        #    glue* (the paths from dead RT nodes to their roots plus the
        #    strip spines): edges and subtrees internal to surviving pieces
        #    are carried into the merged RT untouched.
        helpers_released = 0
        merged_rts = len(affected_rts) + len(new_trivial_leaves)
        self.last_released_helper_ports = []
        removed_virtual_edges: List[Tuple[NodeId, NodeId]] = []
        released_by_rt: Dict[int, List[Port]] = {}
        for rt in affected_rts.values():
            pieces, released_ports = extract_surviving_complete_trees(
                rt,
                node,
                removed_edges=removed_virtual_edges,
                dead_nodes=dead_rt_nodes[rt.rt_id],
            )
            complete_trees.extend(pieces)
            helpers_released += len(released_ports)
            self.last_released_helper_ports.extend(released_ports)
            released_by_rt[rt.rt_id] = released_ports
        for p, c in removed_virtual_edges:
            self._edge_source_removed(p, c)

        # Registry cleanup: the dead processor's ports vanish wholesale and
        # every released helper port becomes free again (it may be picked to
        # simulate one of the merge's new helpers).
        self._purge_processor(node)
        for released_ports in released_by_rt.values():
            for port in released_ports:
                self._rt_of_helper.pop(port, None)
        # By now every healed edge incident to the dead processor has lost
        # all its sources (real edges above, RT projections with the broken
        # glue), so only the bare node remains.
        self._actual.remove_node(node)

        report = RepairReport(
            deleted_node=node,
            degree_in_g_prime=degree_g_prime,
            degree_in_actual=degree_actual,
            merged_rts=merged_rts,
            merged_complete_trees=len(complete_trees),
            new_rt_size=0,
            helpers_created=0,
            helpers_released=helpers_released,
            edges_added=0,
            edges_removed=0,
        )

        # 4. Merge everything into one new RT (ComputeHaft with the
        #    representative mechanism).  The largest affected RT keeps its
        #    identity: its surviving tables and registry entries stay put and
        #    the smaller RTs are folded into it (smaller-into-larger), so the
        #    bookkeeping cost of a repair is proportional to the smaller
        #    trees, the broken glue and the dead node's degree — never to the
        #    bulk of the largest tree.
        self.last_repair_rt = None
        self.last_new_helpers = []
        base: Optional[ReconstructionTree] = None
        for rt in affected_rts.values():
            if base is None or len(rt.leaves) + len(rt.helpers) > len(base.leaves) + len(
                base.helpers
            ):
                base = rt
        if complete_trees:
            busy_ports = set(self._rt_of_helper.keys())
            new_root, new_helpers = compute_haft(complete_trees, busy_ports=busy_ports)
            if base is None:
                base = ReconstructionTree(root=new_root, leaves={}, helpers={})
                self._rts[base.rt_id] = base
            else:
                # Scrub the base tables of everything the repair destroyed.
                for dead in dead_rt_nodes[base.rt_id]:
                    if isinstance(dead, RTLeaf):
                        base.leaves.pop(dead.port, None)
                    else:
                        base.helpers.pop(dead.simulated_by, None)
                for port in released_by_rt[base.rt_id]:
                    base.helpers.pop(port, None)
                base.root = new_root
            # Fold the smaller RTs' survivors into the base tables and
            # re-point their registry entries.
            for rt in affected_rts.values():
                if rt is base:
                    continue
                self._rts.pop(rt.rt_id, None)
                released_set = set(released_by_rt[rt.rt_id])
                for port, leaf in rt.leaves.items():
                    if port.processor != node:
                        base.leaves[port] = leaf
                        self._rt_of_leaf[port] = base
                for port, helper in rt.helpers.items():
                    if port.processor != node and port not in released_set:
                        base.helpers[port] = helper
                        self._rt_of_helper[port] = base
            for leaf in new_trivial_leaves:
                base.leaves[leaf.port] = leaf
                self._rt_of_leaf[leaf.port] = base
            for helper in new_helpers:
                base.helpers[helper.simulated_by] = helper
                self._rt_of_helper[helper.simulated_by] = base
            # Every edge of the merged RT is either internal to a surviving
            # piece (its healed-edge source was never dropped) or one of the
            # two child edges of a freshly created glue helper.
            for helper in new_helpers:
                for child in (helper.left, helper.right):
                    if child is not None:
                        self._edge_source_added(helper.processor, child.processor)
            report.new_rt_size = base.size
            report.helpers_created = len(new_helpers)
            self.last_repair_rt = base
            self.last_new_helpers = new_helpers
        elif base is not None:
            # Nothing survived any affected RT: they dissolve entirely (all
            # their ports were the dead processor's, so the registries are
            # already clean).
            for rt in affected_rts.values():
                self._rts.pop(rt.rt_id, None)

        edges_after = len(self._edge_mult)
        # Edges lost purely because the node vanished:
        lost_with_node = degree_actual
        delta = edges_after - (edges_before - lost_with_node)
        report.edges_added = max(delta, 0)
        report.edges_removed = max(-delta, 0)

        self._step += 1
        self.events.append(HealingEvent(step=self._step, kind="delete", node=node, report=report))
        self._maybe_check()
        return report

    # ------------------------------------------------------------------ #
    # RT registry maintenance
    # ------------------------------------------------------------------ #
    def _register_rt(self, rt: ReconstructionTree) -> None:
        self._rts[rt.rt_id] = rt
        for port in rt.leaves:
            self._rt_of_leaf[port] = rt
        for port in rt.helpers:
            self._rt_of_helper[port] = rt

    def _unregister_rt(self, rt: ReconstructionTree) -> None:
        self._rts.pop(rt.rt_id, None)
        for port in rt.leaves:
            self._rt_of_leaf.pop(port, None)
        for port in rt.helpers:
            self._rt_of_helper.pop(port, None)

    def _purge_processor(self, node: NodeId) -> None:
        """Remove every port-keyed record owned by a (now dead) processor."""
        for neighbor in self._g_prime.neighbors(node):
            port = Port(node, neighbor)
            self._rt_of_leaf.pop(port, None)
            self._rt_of_helper.pop(port, None)

    # ------------------------------------------------------------------ #
    # invariants (Lemma 3, Theorem 1 mechanics)
    # ------------------------------------------------------------------ #
    def _maybe_check(self) -> None:
        if self._check_invariants and self.nodes_ever <= self._invariant_check_limit:
            self.check_invariants()

    def check_invariants(self) -> None:
        """Verify every structural invariant of the data structure.

        Raises :class:`InvariantViolationError` on failure.  This is the
        machinery behind experiment E6 (Lemma 3) and is also exercised by
        the property-based tests.
        """
        actual = self._actual

        # -- incremental G matches the from-scratch rebuild ----------------------------
        rebuilt = self._rebuild_actual()
        if set(actual.nodes) != set(rebuilt.nodes):
            raise InvariantViolationError(
                "incrementally-maintained G has a different node set than the rebuild"
            )
        if {frozenset(e) for e in actual.edges} != {frozenset(e) for e in rebuilt.edges}:
            raise InvariantViolationError(
                "incrementally-maintained G has a different edge set than the rebuild"
            )

        # -- alive/deleted bookkeeping ------------------------------------------------
        if self._alive & self._deleted:
            raise InvariantViolationError("a node is both alive and deleted")
        if set(self._g_prime.nodes) != self._alive | self._deleted:
            raise InvariantViolationError("G' nodes do not match alive + deleted sets")

        # -- every RT is structurally valid --------------------------------------------
        for rt in self._rts.values():
            rt.validate()

        # -- port/leaf bijection --------------------------------------------------------
        expected_leaf_ports: Set[Port] = set()
        for u, v in self._g_prime.edges:
            if u in self._alive and v in self._deleted:
                expected_leaf_ports.add(Port(u, v))
            if v in self._alive and u in self._deleted:
                expected_leaf_ports.add(Port(v, u))
        actual_leaf_ports = set(self._rt_of_leaf.keys())
        if expected_leaf_ports != actual_leaf_ports:
            missing = expected_leaf_ports - actual_leaf_ports
            extra = actual_leaf_ports - expected_leaf_ports
            raise InvariantViolationError(
                f"leaf ports out of sync (missing={missing}, unexpected={extra})"
            )
        for port, rt in self._rt_of_leaf.items():
            if rt.rt_id not in self._rts or port not in rt.leaves:
                raise InvariantViolationError(f"stale leaf registration for {port}")

        # -- Lemma 3: at most one helper per port, in the same RT as the leaf ----------
        for port, rt in self._rt_of_helper.items():
            if rt.rt_id not in self._rts or port not in rt.helpers:
                raise InvariantViolationError(f"stale helper registration for {port}")
            if port not in rt.leaves:
                raise InvariantViolationError(
                    f"helper for {port} lives in an RT where the port has no leaf"
                )
            if port.processor not in self._alive or port.neighbor not in self._deleted:
                raise InvariantViolationError(
                    f"helper for {port} exists although the edge endpoints do not warrant it"
                )

        # -- hard degree bound (1 leaf edge + 3 helper edges per G' edge) --------------
        for node in self._alive:
            d_prime = self._g_prime.degree[node]
            d_actual = actual.degree[node] if node in actual else 0
            if d_prime == 0:
                if d_actual != 0:
                    raise InvariantViolationError(
                        f"isolated node {node!r} has healed degree {d_actual}"
                    )
                continue
            if d_actual > 4 * d_prime:
                raise InvariantViolationError(
                    f"degree of {node!r} is {d_actual} > 4 x {d_prime} (G' degree)"
                )

        # -- connectivity preservation ---------------------------------------------------
        self._check_connectivity(actual)

    def _check_connectivity(self, actual: nx.Graph) -> None:
        """The healed graph must keep alive nodes connected whenever ``G'`` does."""
        g_prime_alive_reachability = nx.Graph()
        g_prime_alive_reachability.add_nodes_from(self._g_prime.nodes)
        g_prime_alive_reachability.add_edges_from(self._g_prime.edges)
        if not self._alive:
            return
        for component in nx.connected_components(g_prime_alive_reachability):
            alive_in_component = [n for n in component if n in self._alive]
            if len(alive_in_component) <= 1:
                continue
            root = alive_in_component[0]
            reachable = nx.node_connected_component(actual, root)
            for other in alive_in_component[1:]:
                if other not in reachable:
                    raise InvariantViolationError(
                        f"alive nodes {root!r} and {other!r} are connected in G' "
                        "but disconnected in the healed graph"
                    )

    # ------------------------------------------------------------------ #
    # convenience metrics (thin wrappers; see repro.analysis for the full kit)
    # ------------------------------------------------------------------ #
    def degree_increase_factor(self, node: Optional[NodeId] = None) -> float:
        """Maximum ratio ``deg(v, G) / deg(v, G')`` over alive nodes (or one node).

        Nodes with ``G'`` degree zero are skipped (the ratio is undefined and
        their healed degree is necessarily zero as well).
        """
        actual = self._actual
        nodes = [node] if node is not None else list(self._alive)
        worst = 0.0
        for v in nodes:
            d_prime = self._g_prime.degree[v] if v in self._g_prime else 0
            if d_prime == 0:
                continue
            d_actual = actual.degree[v] if v in actual else 0
            worst = max(worst, d_actual / d_prime)
        return worst

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ForgivingGraph(alive={self.num_alive}, ever={self.nodes_ever}, "
            f"rts={len(self._rts)}, step={self._step})"
        )
