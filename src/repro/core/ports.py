"""Identifiers used throughout the Forgiving Graph data structure.

The paper (Table 1 and Figure 6) attaches state to *edges* of ``G'`` rather
than to processors: for an edge ``(v, x)`` of ``G'`` the processor ``v`` owns

* exactly one *real node* (we call it a **port**) which appears as a leaf of
  a reconstruction tree once ``x`` has been deleted, and
* at most one *helper node*, simulated by ``v``, which appears as an internal
  node of a reconstruction tree.

Modelling ports explicitly keeps Lemma 3 ("at most one helper node per edge")
checkable as a run-time invariant and makes the homomorphism from the virtual
graph onto the real network a one-liner (a port or helper maps to its owning
processor).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

#: Type alias for processor identifiers.  Anything hashable works (ints,
#: strings, tuples); experiments in this repository use ints and strings.
NodeId = Hashable


@dataclass(frozen=True, order=True)
class Port:
    """The *real node* owned by ``processor`` for the ``G'`` edge to ``neighbor``.

    A port is a stable name: it refers to the same conceptual object for the
    whole lifetime of the edge ``(processor, neighbor)`` in ``G'``, regardless
    of whether ``neighbor`` is still alive.  Ports of dead processors are
    discarded together with the processor.
    """

    processor: NodeId
    neighbor: NodeId

    def reversed(self) -> "Port":
        """Return the port at the other end of the same ``G'`` edge."""
        return Port(self.neighbor, self.processor)

    # Ports key every table of the data structure and order every merge, so
    # their hash and repr sit on the engine's hot paths; both are memoized on
    # first use (the instance is frozen, so they can never go stale).  The
    # repr string matches the dataclass-generated format exactly — merge
    # tie-breaking orders predate the memoization and must not change.
    def __hash__(self) -> int:
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash((self.processor, self.neighbor))
            object.__setattr__(self, "_hash", cached)
        return cached

    def __repr__(self) -> str:
        cached = self.__dict__.get("_repr")
        if cached is None:
            cached = f"Port(processor={self.processor!r}, neighbor={self.neighbor!r})"
            object.__setattr__(self, "_repr", cached)
        return cached

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"port({self.processor}|{self.neighbor})"


#: Types whose native ``<`` is a *total* order.  Anything else (sets order by
#: subset, third-party types may do anything) compares by repr: a partial
#: order mixed with a repr fallback is not transitive and would silently
#: break the canonical sort.
_NATURALLY_ORDERED = (int, float, str, bytes)


class NodeKey:
    """Deterministic total order on node identifiers.

    Nodes are grouped by type name, then compared by their *natural* order
    within the type (``2 < 10`` for ints, lexicographic for strings) when the
    type's ``<`` is known to be total, falling back to ``repr`` otherwise.
    Unlike plain repr comparison, this order is invariant under
    order-preserving relabelings: two isomorphic graphs whose ids map
    monotonically onto each other tie-break identically, which is what makes
    merge orders (``compute_haft``) reproducible across id types.
    """

    __slots__ = ("type_name", "value")

    def __init__(self, value: NodeId) -> None:
        self.type_name = type(value).__name__
        self.value = value

    def __lt__(self, other: "NodeKey") -> bool:
        if self.type_name != other.type_name:
            return self.type_name < other.type_name
        a, b = self.value, other.value
        if isinstance(a, _NATURALLY_ORDERED) and isinstance(b, _NATURALLY_ORDERED):
            return a < b
        return repr(a) < repr(b)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, NodeKey)
            and self.type_name == other.type_name
            and self.value == other.value
        )

    def __hash__(self) -> int:
        return hash((self.type_name, repr(self.value)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NodeKey({self.value!r})"


class Interner:
    """Append-only bijection between node identifiers and dense ``int`` ids.

    The dense-int hot core (PR 7) keys everything inside the network —
    adjacency sets, link-source tables, processor lookup — by small
    contiguous integers instead of arbitrary hashable identifiers.  The
    interner is the *boundary* where :data:`NodeId` values enter that id
    space: the first ``intern`` of an identifier assigns the next free id,
    and the mapping never changes or shrinks afterwards.

    Ids are **never reused**: a removed or quarantined processor keeps its
    id forever, mirroring the network's ``n_ever`` semantics (message
    sizing and the ``ever_had_processor`` distinction both need dead ids to
    stay meaningful).  Because ids are assigned in first-appearance order,
    two runs that intern the same identifier sequence — e.g. the same churn
    under an order-preserving relabeling — produce identical id sequences,
    which is what the relabeling-invariance property test pins.
    """

    __slots__ = ("_ids", "_nodes")

    def __init__(self) -> None:
        self._ids: dict = {}
        self._nodes: list = []

    def intern(self, node: NodeId) -> int:
        """Return ``node``'s dense id, assigning the next free one if new."""
        ids = self._ids
        dense = ids.get(node)
        if dense is None:
            dense = len(self._nodes)
            ids[node] = dense
            self._nodes.append(node)
        return dense

    def id_of(self, node: NodeId) -> int:
        """The dense id of an already-interned identifier (raises when unknown)."""
        return self._ids[node]

    def get_id(self, node: NodeId):
        """The dense id of ``node``, or ``None`` when it was never interned."""
        return self._ids.get(node)

    def node_of(self, dense: int) -> NodeId:
        """The identifier that owns dense id ``dense`` (raises when out of range)."""
        return self._nodes[dense]

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._ids

    def nodes(self) -> list:
        """All interned identifiers, in id order (index ``i`` holds id ``i``)."""
        return list(self._nodes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Interner({len(self._nodes)} ids)"


def node_order_key(node: NodeId) -> NodeKey:
    """The canonical total-order key for a node identifier (see :class:`NodeKey`)."""
    return NodeKey(node)


def port_order_key(port: "Port") -> tuple:
    """Total-order key for a :class:`Port` built from its node ids' natural order."""
    return (NodeKey(port.processor), NodeKey(port.neighbor))


def sorted_nodes(nodes) -> list:
    """Deterministic ordering of possibly mixed-type node identifiers.

    This is the *canonical* node order of the repository: adversary
    strategies (including the incremental heap trackers), the CSR snapshots
    and the retained reference measurement all index into it, and the
    sampled-stretch equivalence between ``stretch_report`` and
    ``stretch_report_reference`` relies on every caller ordering identically
    — do not fork local copies.  The order is :class:`NodeKey`'s total order
    (natural within a type), so it is stable under order-preserving id
    relabelings.
    """
    return sorted(nodes, key=NodeKey)


def edge_key(u: NodeId, v: NodeId) -> tuple[NodeId, NodeId]:
    """Return a canonical, order-independent key for the undirected edge ``{u, v}``.

    ``G'`` is an undirected graph; both ``(u, v)`` and ``(v, u)`` must map to
    the same record.  Endpoints are ordered by :class:`NodeKey`, the
    repository's canonical total order on node ids.
    """
    if u == v:
        raise ValueError(f"self-loop edge ({u!r}, {v!r}) is not allowed")
    return (u, v) if not NodeKey(v) < NodeKey(u) else (v, u)
