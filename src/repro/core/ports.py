"""Identifiers used throughout the Forgiving Graph data structure.

The paper (Table 1 and Figure 6) attaches state to *edges* of ``G'`` rather
than to processors: for an edge ``(v, x)`` of ``G'`` the processor ``v`` owns

* exactly one *real node* (we call it a **port**) which appears as a leaf of
  a reconstruction tree once ``x`` has been deleted, and
* at most one *helper node*, simulated by ``v``, which appears as an internal
  node of a reconstruction tree.

Modelling ports explicitly keeps Lemma 3 ("at most one helper node per edge")
checkable as a run-time invariant and makes the homomorphism from the virtual
graph onto the real network a one-liner (a port or helper maps to its owning
processor).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

#: Type alias for processor identifiers.  Anything hashable works (ints,
#: strings, tuples); experiments in this repository use ints and strings.
NodeId = Hashable


@dataclass(frozen=True, order=True)
class Port:
    """The *real node* owned by ``processor`` for the ``G'`` edge to ``neighbor``.

    A port is a stable name: it refers to the same conceptual object for the
    whole lifetime of the edge ``(processor, neighbor)`` in ``G'``, regardless
    of whether ``neighbor`` is still alive.  Ports of dead processors are
    discarded together with the processor.
    """

    processor: NodeId
    neighbor: NodeId

    def reversed(self) -> "Port":
        """Return the port at the other end of the same ``G'`` edge."""
        return Port(self.neighbor, self.processor)

    # Ports key every table of the data structure and order every merge, so
    # their hash and repr sit on the engine's hot paths; both are memoized on
    # first use (the instance is frozen, so they can never go stale).  The
    # repr string matches the dataclass-generated format exactly — merge
    # tie-breaking orders predate the memoization and must not change.
    def __hash__(self) -> int:
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash((self.processor, self.neighbor))
            object.__setattr__(self, "_hash", cached)
        return cached

    def __repr__(self) -> str:
        cached = self.__dict__.get("_repr")
        if cached is None:
            cached = f"Port(processor={self.processor!r}, neighbor={self.neighbor!r})"
            object.__setattr__(self, "_repr", cached)
        return cached

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"port({self.processor}|{self.neighbor})"


def sorted_nodes(nodes) -> list:
    """Deterministic ordering of possibly mixed-type node identifiers.

    This is the *canonical* node order of the repository: adversary
    strategies, the CSR snapshots and the retained reference measurement all
    index into it, and the sampled-stretch equivalence between
    ``stretch_report`` and ``stretch_report_reference`` relies on every
    caller ordering identically — do not fork local copies.
    """
    return sorted(nodes, key=lambda n: (type(n).__name__, repr(n)))


def edge_key(u: NodeId, v: NodeId) -> tuple[NodeId, NodeId]:
    """Return a canonical, order-independent key for the undirected edge ``{u, v}``.

    ``G'`` is an undirected graph; both ``(u, v)`` and ``(v, u)`` must map to
    the same record.  Node identifiers of mixed types are compared by
    ``(type name, repr)`` so the ordering is total even for heterogeneous ids.
    """
    if u == v:
        raise ValueError(f"self-loop edge ({u!r}, {v!r}) is not allowed")
    ku = (type(u).__name__, repr(u))
    kv = (type(v).__name__, repr(v))
    return (u, v) if ku <= kv else (v, u)
