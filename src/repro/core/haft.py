"""Half-full trees (hafts) — Section 4 of the paper.

A *half-full tree* (haft) is a rooted binary tree in which every internal
node ``v``

* has exactly two children, and
* the left child of ``v`` roots a **complete** binary subtree containing half
  or more of ``v``'s leaf descendants.

Lemma 1 of the paper shows that for every positive ``l`` there is a single
haft with ``l`` leaves — ``haft(l)`` — whose shape mirrors the binary
representation of ``l``:  writing ``l = 2^{x_1} + ... + 2^{x_h}`` with
``x_1 > ... > x_h``, ``haft(l)`` is the chain of complete trees
``T_1, ..., T_h`` (``T_i`` has ``2^{x_i}`` leaves) glued together by ``h - 1``
extra internal nodes, and its depth is ``ceil(log2 l)``.

Two operations are defined on hafts (Section 4.1):

``strip``
    remove the ``h - 1`` glue nodes, leaving the forest of complete trees
    rooted at the *primary roots*;

``merge``
    combine several hafts into one, which behaves exactly like binary
    addition of their leaf counts (Figure 5).

This module implements the pure mathematical structure.  The Forgiving Graph
itself uses the same operations over *reconstruction trees*
(:mod:`repro.core.reconstruction_tree`), whose internal nodes carry extra
bookkeeping (simulating processor, representative); the structural logic is
shared through the free functions below, which only require ``left`` /
``right`` / ``parent`` attributes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, List, Optional, Sequence

from .errors import HaftStructureError

__all__ = [
    "HaftNode",
    "build_haft",
    "leaves",
    "iter_nodes",
    "leaf_count",
    "depth",
    "is_complete",
    "is_haft",
    "validate_haft",
    "primary_roots",
    "strip",
    "merge",
    "haft_shape_signature",
    "binary_decomposition",
]


@dataclass(eq=False)
class HaftNode:
    """A node of a half-full tree.

    Leaves carry a ``payload`` (any object supplied by the caller); internal
    nodes have ``payload is None`` by default.  ``height`` and ``num_leaves``
    are maintained eagerly so that primary-root detection (Algorithm A.6 of
    the paper) is an O(1) local test, exactly as in the distributed protocol
    where every helper node knows its height and children count.
    """

    payload: Any = None
    left: Optional["HaftNode"] = None
    right: Optional["HaftNode"] = None
    parent: Optional["HaftNode"] = field(default=None, repr=False)
    height: int = 0
    num_leaves: int = 1

    # ------------------------------------------------------------------ #
    # basic structure queries
    # ------------------------------------------------------------------ #
    @property
    def is_leaf(self) -> bool:
        """True when the node has no children."""
        return self.left is None and self.right is None

    @property
    def is_root(self) -> bool:
        """True when the node has no parent."""
        return self.parent is None

    def recompute_from_children(self) -> None:
        """Refresh ``height`` and ``num_leaves`` from the current children."""
        if self.is_leaf:
            self.height = 0
            self.num_leaves = 1
            return
        children = [c for c in (self.left, self.right) if c is not None]
        self.height = 1 + max(c.height for c in children)
        self.num_leaves = sum(c.num_leaves for c in children)

    def attach_children(self, left: "HaftNode", right: "HaftNode") -> None:
        """Make ``left`` and ``right`` the children of this node and refresh counters."""
        self.left = left
        self.right = right
        left.parent = self
        right.parent = self
        self.recompute_from_children()

    def detach(self) -> None:
        """Disconnect this node from its parent (if any)."""
        parent = self.parent
        if parent is None:
            return
        if parent.left is self:
            parent.left = None
        if parent.right is self:
            parent.right = None
        self.parent = None

    def root(self) -> "HaftNode":
        """Return the root of the tree containing this node."""
        node = self
        while node.parent is not None:
            node = node.parent
        return node

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "leaf" if self.is_leaf else "internal"
        return f"HaftNode({kind}, leaves={self.num_leaves}, h={self.height}, payload={self.payload!r})"


# ---------------------------------------------------------------------- #
# traversal helpers
# ---------------------------------------------------------------------- #
def iter_nodes(root: HaftNode) -> Iterator[HaftNode]:
    """Yield every node of the tree rooted at ``root`` in pre-order."""
    stack = [root]
    while stack:
        node = stack.pop()
        yield node
        if node.right is not None:
            stack.append(node.right)
        if node.left is not None:
            stack.append(node.left)


def leaves(root: HaftNode) -> List[HaftNode]:
    """Return the leaves of the tree rooted at ``root`` in left-to-right order."""
    result: List[HaftNode] = []
    stack = [root]
    while stack:
        node = stack.pop()
        if node.is_leaf:
            result.append(node)
            continue
        if node.right is not None:
            stack.append(node.right)
        if node.left is not None:
            stack.append(node.left)
    return result


def leaf_count(root: HaftNode) -> int:
    """Number of leaves below (and including) ``root``."""
    return len(leaves(root))


def depth(root: HaftNode) -> int:
    """Height of the tree rooted at ``root`` (a single leaf has depth 0)."""
    best = 0
    stack = [(root, 0)]
    while stack:
        node, d = stack.pop()
        if node.is_leaf:
            best = max(best, d)
            continue
        for child in (node.left, node.right):
            if child is not None:
                stack.append((child, d + 1))
    return best


# ---------------------------------------------------------------------- #
# structural predicates
# ---------------------------------------------------------------------- #
def is_complete(node: HaftNode) -> bool:
    """True when ``node`` roots a complete (perfect) binary subtree.

    A complete subtree of height ``h`` has exactly ``2^h`` leaves.  The test
    relies on the eagerly-maintained counters, mirroring the O(1) local test
    of Algorithm A.6 (``childrencount == 2^height``), but verifies the
    counters against the real structure, so it is safe to call on trees that
    may have been corrupted.
    """
    expected = 1 << node.height
    if node.num_leaves != expected:
        return False
    # verify the counters are truthful
    actual_leaves = 0
    stack = [(node, 0)]
    max_depth = 0
    min_depth: Optional[int] = None
    while stack:
        current, d = stack.pop()
        if current.is_leaf:
            actual_leaves += 1
            max_depth = max(max_depth, d)
            min_depth = d if min_depth is None else min(min_depth, d)
            continue
        if current.left is None or current.right is None:
            return False
        stack.append((current.left, d + 1))
        stack.append((current.right, d + 1))
    return actual_leaves == expected and max_depth == node.height and min_depth == node.height


def is_haft(root: HaftNode) -> bool:
    """True when the tree rooted at ``root`` satisfies the haft definition."""
    try:
        validate_haft(root)
    except HaftStructureError:
        return False
    return True


def validate_haft(root: HaftNode) -> None:
    """Raise :class:`HaftStructureError` unless ``root`` roots a valid haft.

    The check follows the definition in Section 4 of the paper: every
    internal node must have exactly two children, and its left child must
    root a complete subtree holding at least half of the node's leaves.  The
    cached ``height`` / ``num_leaves`` counters are verified as well.
    """
    for node in iter_nodes(root):
        if node.is_leaf:
            if node.height != 0 or node.num_leaves != 1:
                raise HaftStructureError(
                    f"leaf {node!r} has inconsistent counters "
                    f"(height={node.height}, num_leaves={node.num_leaves})"
                )
            continue
        if node.left is None or node.right is None:
            raise HaftStructureError(f"internal node {node!r} does not have two children")
        if node.left.parent is not node or node.right.parent is not node:
            raise HaftStructureError(f"parent pointers of children of {node!r} are broken")
        expected_leaves = node.left.num_leaves + node.right.num_leaves
        expected_height = 1 + max(node.left.height, node.right.height)
        if node.num_leaves != expected_leaves or node.height != expected_height:
            raise HaftStructureError(
                f"cached counters of {node!r} disagree with children "
                f"(expected leaves={expected_leaves}, height={expected_height})"
            )
        if not is_complete(node.left):
            raise HaftStructureError(f"left child of {node!r} is not a complete subtree")
        if 2 * node.left.num_leaves < node.num_leaves:
            raise HaftStructureError(
                f"left child of {node!r} holds fewer than half of the leaves "
                f"({node.left.num_leaves} of {node.num_leaves})"
            )


# ---------------------------------------------------------------------- #
# construction
# ---------------------------------------------------------------------- #
def binary_decomposition(l: int) -> List[int]:
    """Return the powers of two summing to ``l`` in descending order.

    ``binary_decomposition(13) == [8, 4, 1]`` — these are the sizes of the
    complete trees a haft over 13 leaves strips into (Lemma 1, part 2).
    """
    if l <= 0:
        raise ValueError(f"a haft must have a positive number of leaves, got {l}")
    powers: List[int] = []
    bit = 1 << (l.bit_length() - 1)
    while bit:
        if l & bit:
            powers.append(bit)
        bit >>= 1
    return powers


def _build_complete(payloads: Sequence[Any], factory: Callable[[], HaftNode]) -> HaftNode:
    """Build a complete binary tree whose leaves carry ``payloads`` (a power of two)."""
    nodes: List[HaftNode] = [HaftNode(payload=p) for p in payloads]
    while len(nodes) > 1:
        next_level: List[HaftNode] = []
        for i in range(0, len(nodes), 2):
            parent = factory()
            parent.attach_children(nodes[i], nodes[i + 1])
            next_level.append(parent)
        nodes = next_level
    return nodes[0]


def build_haft(
    payloads: Sequence[Any],
    internal_factory: Optional[Callable[[], HaftNode]] = None,
) -> HaftNode:
    """Build ``haft(l)`` over the given leaf payloads (left-to-right order).

    Parameters
    ----------
    payloads:
        One payload per leaf; ``len(payloads)`` must be positive.
    internal_factory:
        Callable producing fresh internal nodes.  Defaults to bare
        :class:`HaftNode` instances; the reconstruction-tree layer passes a
        factory that produces helper nodes bound to simulating processors.

    Returns
    -------
    HaftNode
        The root of the unique haft over ``len(payloads)`` leaves.
    """
    if len(payloads) == 0:
        raise ValueError("cannot build a haft with zero leaves")
    factory = internal_factory if internal_factory is not None else HaftNode
    sizes = binary_decomposition(len(payloads))
    # Build the complete trees T_1 (largest) ... T_h left-to-right over the payloads.
    complete: List[HaftNode] = []
    index = 0
    for size in sizes:
        complete.append(_build_complete(payloads[index : index + size], factory))
        index += size
    # Glue them right-to-left: the right spine of the haft descends through
    # ever-smaller complete trees (Figure 3(b)).
    root = complete[-1]
    for tree in reversed(complete[:-1]):
        glue = factory()
        glue.attach_children(tree, root)
        root = glue
    return root


# ---------------------------------------------------------------------- #
# strip / primary roots
# ---------------------------------------------------------------------- #
def primary_roots(root: HaftNode) -> List[HaftNode]:
    """Return the primary roots of the haft rooted at ``root``.

    A *primary root* is a node rooting a complete subtree whose parent (if
    any) does not root a complete subtree.  For ``haft(l)`` the primary roots
    are exactly the roots of the complete trees ``T_1 ... T_h`` corresponding
    to the 1-bits of ``l`` (Lemma 2), ordered here from largest to smallest.
    """
    result: List[HaftNode] = []
    node: Optional[HaftNode] = root
    while node is not None:
        if is_complete(node):
            result.append(node)
            break
        # By the haft definition the left child is complete, hence a primary
        # root; continue the walk down the right spine.
        if node.left is not None:
            result.append(node.left)
        node = node.right
    return result


def strip(root: HaftNode) -> List[HaftNode]:
    """Perform the Strip operation: detach and return the complete trees.

    The ``h - 1`` glue nodes on the right spine are removed (their parent and
    child pointers are cleared); the returned list contains the primary
    roots, largest first, each now the root of its own tree.
    """
    roots = primary_roots(root)
    for node in roots:
        node.detach()
    # Clear pointers of the removed glue nodes so they cannot leak structure.
    removed: List[HaftNode] = []
    node: Optional[HaftNode] = root
    while node is not None and node not in roots:
        nxt = node.right
        node.left = None
        node.right = None
        node.parent = None
        removed.append(node)
        node = nxt
    return roots


# ---------------------------------------------------------------------- #
# merge
# ---------------------------------------------------------------------- #
def merge(
    hafts: Sequence[HaftNode],
    internal_factory: Optional[Callable[[], HaftNode]] = None,
) -> HaftNode:
    """Merge several hafts into a single haft (Section 4.1.2, Figure 5).

    The operation is the tree analogue of adding the binary representations
    of the leaf counts:

    1. Strip every input haft into complete trees.
    2. Repeatedly combine two complete trees of equal size under a fresh
       internal node (a "carry"), keeping the work list sorted by size,
       until all sizes are distinct.
    3. Chain the remaining complete trees together from smallest to largest,
       always placing the larger tree as the left child, producing the final
       haft.

    Parameters
    ----------
    hafts:
        Roots of the hafts to merge.  They must be disjoint trees.
    internal_factory:
        Factory for the fresh internal nodes used to join trees.

    Returns
    -------
    HaftNode
        Root of the merged haft, whose leaves are exactly the union of the
        input leaves.
    """
    if not hafts:
        raise ValueError("merge() requires at least one haft")
    factory = internal_factory if internal_factory is not None else HaftNode

    forest: List[HaftNode] = []
    for root in hafts:
        forest.extend(strip(root))

    if len(forest) == 1:
        return forest[0]

    # Step 2 — resolve equal sizes exactly like binary addition with carries.
    forest.sort(key=lambda t: t.num_leaves)
    i = 0
    while i < len(forest) - 1:
        a, b = forest[i], forest[i + 1]
        if a.num_leaves == b.num_leaves:
            joined = factory()
            joined.attach_children(a, b)
            del forest[i : i + 2]
            _insert_sorted(forest, joined)
            i = max(i - 1, 0)
        else:
            i += 1

    # Step 3 — chain the (now distinct-size) complete trees smallest-first,
    # larger tree always on the left so every prefix is a valid haft.
    root = forest[0]
    for tree in forest[1:]:
        joined = factory()
        joined.attach_children(tree, root)  # `tree` is strictly larger: left child
        root = joined
    return root


def _insert_sorted(forest: List[HaftNode], tree: HaftNode) -> None:
    """Insert ``tree`` into ``forest`` keeping ascending ``num_leaves`` order."""
    lo, hi = 0, len(forest)
    size = tree.num_leaves
    while lo < hi:
        mid = (lo + hi) // 2
        if forest[mid].num_leaves < size:
            lo = mid + 1
        else:
            hi = mid
    forest.insert(lo, tree)


# ---------------------------------------------------------------------- #
# diagnostics
# ---------------------------------------------------------------------- #
def haft_shape_signature(root: HaftNode) -> tuple:
    """Return a hashable signature of the tree *shape* (ignoring payloads).

    Two trees have equal signatures iff they are structurally identical,
    which makes Lemma 1's uniqueness claim directly testable.
    """
    if root.is_leaf:
        return ("L",)
    left_sig = haft_shape_signature(root.left) if root.left is not None else ("-",)
    right_sig = haft_shape_signature(root.right) if root.right is not None else ("-",)
    return ("N", left_sig, right_sig)
