"""Exception hierarchy for the Forgiving Graph reproduction.

Every error raised by :mod:`repro` derives from :class:`ForgivingGraphError`
so callers can catch library failures with a single ``except`` clause while
still being able to distinguish the common failure modes (unknown node,
duplicate node, structural invariant violations, ...).
"""

from __future__ import annotations


class ForgivingGraphError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class UnknownNodeError(ForgivingGraphError, KeyError):
    """An operation referenced a node that is not present (or not alive)."""

    def __init__(self, node: object, context: str = "") -> None:
        detail = f"unknown node {node!r}"
        if context:
            detail = f"{detail} ({context})"
        super().__init__(detail)
        self.node = node


class DuplicateNodeError(ForgivingGraphError, ValueError):
    """A node was inserted with an identifier that already exists."""

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} already exists in the graph")
        self.node = node


class DeletedNodeError(ForgivingGraphError, ValueError):
    """An operation referenced a node that has already been deleted."""

    def __init__(self, node: object, context: str = "") -> None:
        detail = f"node {node!r} has been deleted"
        if context:
            detail = f"{detail} ({context})"
        super().__init__(detail)
        self.node = node


class InvalidEdgeError(ForgivingGraphError, ValueError):
    """An edge was specified with invalid endpoints (self-loop, dead node...)."""


class HaftStructureError(ForgivingGraphError, AssertionError):
    """A tree violated the half-full-tree structural definition."""


class InvariantViolationError(ForgivingGraphError, AssertionError):
    """A run-time invariant of the Forgiving Graph data structure failed.

    These are raised by the self-checking machinery
    (:meth:`repro.core.forgiving_graph.ForgivingGraph.check_invariants`) and
    indicate a bug in the library rather than misuse by the caller.
    """


class ProtocolError(ForgivingGraphError, RuntimeError):
    """The distributed protocol reached a state it should never reach."""


class ConfigurationError(ForgivingGraphError, ValueError):
    """An experiment or simulation was configured inconsistently."""
