"""Compactable append-only journals with registered consumer cursors.

The engine's incremental consumers (the adversary's survivor-degree heap,
historically the distributed link sync) read the degree-touch and edge-delta
journals through *absolute positions*: each keeps a cursor and drains
``journal[cursor:]`` after every move.  The journals themselves used to be
plain lists that grew without bound for the lifetime of the engine — fine
for a 10⁴-step test, a real memory leak for multi-million-step sessions
(ROADMAP open item).

:class:`Journal` keeps the exact same consumer contract — ``len()`` returns
the *total* number of entries ever appended and slicing uses absolute
indices — but stores only a suffix: :meth:`Journal.compact` truncates the
prefix that every *registered* cursor has already drained.  Consumers
register through :meth:`Journal.register_cursor`; cursors are tracked
weakly, so a consumer that goes away (the tracker rebinding to another
healer, a dropped strategy) stops pinning history automatically.  Reading
below the compaction point raises :class:`JournalCompactedError` — by
construction that can only happen to a reader that never registered.
"""

from __future__ import annotations

import weakref
from typing import Iterator, List, Sequence, TypeVar, Union

__all__ = ["Journal", "JournalCursor", "JournalCompactedError"]

T = TypeVar("T")


class JournalCompactedError(RuntimeError):
    """An unregistered reader asked for entries the journal already dropped."""


class JournalCursor:
    """One consumer's drain position (an absolute entry index).

    Create through :meth:`Journal.register_cursor`.  The consumer advances
    it with :meth:`advance_to` after each drain; :meth:`Journal.compact`
    never truncates past the slowest registered cursor.
    """

    __slots__ = ("position", "__weakref__")

    def __init__(self, position: int = 0) -> None:
        self.position = position

    def advance_to(self, position: int) -> None:
        """Mark everything before ``position`` as drained."""
        if position > self.position:
            self.position = position

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"JournalCursor(position={self.position})"


class Journal(Sequence[T]):
    """Append-only sequence addressed by absolute index, with a droppable prefix."""

    __slots__ = ("_entries", "_base", "_cursors")

    def __init__(self) -> None:
        self._entries: List[T] = []
        #: Absolute index of ``_entries[0]`` — how much prefix was compacted.
        self._base = 0
        self._cursors: "weakref.WeakSet[JournalCursor]" = weakref.WeakSet()

    # ------------------------------------------------------------------ #
    # writer API (the engine)
    # ------------------------------------------------------------------ #
    def append(self, entry: T) -> None:
        self._entries.append(entry)

    # ------------------------------------------------------------------ #
    # consumer API
    # ------------------------------------------------------------------ #
    def register_cursor(self, position: int = 0) -> JournalCursor:
        """Register a consumer; entries at/after its position stay readable."""
        cursor = JournalCursor(position)
        self._cursors.add(cursor)
        return cursor

    def compact(self) -> int:
        """Drop every entry all registered consumers have drained.

        Truncates up to the slowest registered cursor — or everything when no
        consumer is registered (an engine nobody tails needs no history).
        Returns the number of entries dropped.
        """
        target = min((cursor.position for cursor in self._cursors), default=len(self))
        drop = max(target - self._base, 0)
        if drop:
            del self._entries[:drop]
            self._base += drop
        return drop

    @property
    def compacted(self) -> int:
        """Number of entries dropped so far (the absolute index of the oldest kept)."""
        return self._base

    # ------------------------------------------------------------------ #
    # Sequence protocol (absolute indices)
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self._base + len(self._entries)

    def __getitem__(self, index: Union[int, slice]):
        if isinstance(index, slice):
            start, stop, step = index.indices(len(self))
            if step != 1:
                raise ValueError("Journal slices must be contiguous (step 1)")
            if start < self._base and start < stop:
                raise JournalCompactedError(
                    f"entries before {self._base} were compacted away "
                    f"(requested from {start}); register a cursor to retain them"
                )
            return self._entries[start - self._base : stop - self._base]
        if index < 0:
            index += len(self)
        if index >= len(self) or index < self._base:
            if self._base <= index:
                raise IndexError(index)
            raise JournalCompactedError(
                f"entry {index} was compacted away (oldest kept: {self._base})"
            )
        return self._entries[index - self._base]

    def __iter__(self) -> Iterator[T]:
        """Iterate the *retained* suffix (compacted entries are gone)."""
        return iter(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Journal(len={len(self)}, compacted={self._base}, consumers={len(self._cursors)})"
