"""Zero-copy access to a healer's graphs.

Every healer exposes ``actual_graph()`` / ``g_prime_view()``, which return
*copies* so callers can mutate freely.  Measurement and adversary code never
mutates, so copying is pure overhead — per-step O(n + m) that dominates large
churn sweeps.  Healers that can afford it additionally expose
``actual_view()`` / ``g_prime_graph_view()`` returning read-only networkx
views that share the underlying adjacency dicts (O(1) to obtain).

These helpers pick the view when available and quietly fall back to the copy
for healers that only implement the copying protocol, so analysis code can be
written once against the cheapest accessor every healer supports.
"""

from __future__ import annotations

from typing import Tuple

import networkx as nx

__all__ = ["actual_view_of", "g_prime_view_of", "healer_views"]


def actual_view_of(healer) -> nx.Graph:
    """The healed graph ``G`` of ``healer``, read-only and zero-copy when possible."""
    view = getattr(healer, "actual_view", None)
    if callable(view):
        return view()
    return healer.actual_graph()


def g_prime_view_of(healer) -> nx.Graph:
    """The insertion-only graph ``G'`` of ``healer``, zero-copy when possible."""
    view = getattr(healer, "g_prime_graph_view", None)
    if callable(view):
        return view()
    return healer.g_prime_view()


def healer_views(healer) -> Tuple[nx.Graph, nx.Graph]:
    """``(G', G)`` of ``healer`` as the cheapest read-only accessors available."""
    return g_prime_view_of(healer), actual_view_of(healer)
