"""repro — a reproduction of "The Forgiving Graph" (Hayes, Saia, Trehan, PODC 2009).

The Forgiving Graph is a distributed, self-healing data structure for
peer-to-peer networks under adversarial attack.  After every adversarial node
deletion it adds a small number of edges so that, at all times,

* every surviving node's degree is within a small constant factor of its
  degree in ``G'`` (the graph of insertions only, ignoring deletions), and
* the distance between any two surviving nodes is within a ``log n`` factor
  of their distance in ``G'``,

while each repair costs only ``O(d log n)`` messages and ``O(log d log n)``
time, for ``d`` the degree of the deleted node.

Package layout
--------------

``repro.core``
    half-full trees, reconstruction trees and the :class:`ForgivingGraph`
    engine (the paper's primary contribution).
``repro.distributed``
    a round-based message-passing simulator running the repair protocol with
    explicit messages, used for the communication-cost experiments.
``repro.baselines``
    alternative self-healing strategies (Forgiving Tree, cycle/clique/
    surrogate healing, no healing) for the trade-off comparisons.
``repro.adversary`` / ``repro.generators``
    attack strategies, churn schedules and initial-topology generators.
``repro.engine``
    the unified :class:`~repro.engine.AttackSession` step loop (adversary
    move → repair → incremental measurement) every workload drives through.
``repro.analysis``
    degree / stretch / connectivity metrics and the Theorem 2 lower bound.
``repro.experiments``
    the experiment harness that regenerates every item in EXPERIMENTS.md.

Quickstart
----------
>>> from repro import ForgivingGraph
>>> fg = ForgivingGraph.from_edges([(0, 1), (1, 2), (2, 3), (3, 0)])
>>> _ = fg.delete(1)
>>> sorted(fg.actual_graph().nodes)
[0, 2, 3]
"""

from .core import (
    ForgivingGraph,
    ForgivingGraphError,
    HealingEvent,
    InvariantViolationError,
    NodeId,
    Port,
    ReconstructionTree,
    RepairReport,
)
from .engine import AttackSession, SessionResult, StepEvent

__version__ = "1.1.0"

__all__ = [
    "ForgivingGraph",
    "ForgivingGraphError",
    "InvariantViolationError",
    "HealingEvent",
    "RepairReport",
    "ReconstructionTree",
    "NodeId",
    "Port",
    "AttackSession",
    "SessionResult",
    "StepEvent",
    "__version__",
]
