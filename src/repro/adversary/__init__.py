"""Adversaries: attack strategies and churn schedules.

The paper's adversary is omniscient — it sees the whole topology (including
the healing edges) and the algorithm, and in every round either deletes an
arbitrary node or inserts a node with arbitrary connections (Section 2).
This package provides concrete instantiations of that adversary used by the
experiments: targeted deletion strategies, insertion strategies, and mixed
insert/delete schedules.
"""

from .incremental import SurvivorDegreeTracker
from .strategies import (
    Adversary,
    CutAdversary,
    DeletionStrategy,
    HighBetweennessDeletion,
    InsertionStrategy,
    MaxDegreeDeletion,
    MaxDegreeDeletionReference,
    MinDegreeDeletion,
    MinDegreeDeletionReference,
    PreferentialInsertion,
    RandomDeletion,
    RandomInsertion,
    ScriptedDeletion,
    SingleLinkInsertion,
    StarInsertion,
    StarInsertionReference,
    available_deletion_strategies,
    make_deletion_strategy,
)
from .schedule import (
    AttackEvent,
    AttackSchedule,
    churn_schedule,
    deletion_burst_schedule,
    deletion_only_schedule,
    insertion_burst_schedule,
)

__all__ = [
    "Adversary",
    "DeletionStrategy",
    "InsertionStrategy",
    "RandomDeletion",
    "MaxDegreeDeletion",
    "MaxDegreeDeletionReference",
    "MinDegreeDeletion",
    "MinDegreeDeletionReference",
    "HighBetweennessDeletion",
    "CutAdversary",
    "ScriptedDeletion",
    "RandomInsertion",
    "PreferentialInsertion",
    "SingleLinkInsertion",
    "StarInsertion",
    "StarInsertionReference",
    "SurvivorDegreeTracker",
    "available_deletion_strategies",
    "make_deletion_strategy",
    "AttackEvent",
    "AttackSchedule",
    "churn_schedule",
    "deletion_burst_schedule",
    "deletion_only_schedule",
    "insertion_burst_schedule",
]
