"""Attack schedules: sequences of insert/delete events.

The model of Figure 1 interleaves arbitrary insertions and deletions, one per
round.  An :class:`AttackSchedule` is a reusable description of such a
sequence; :meth:`AttackSchedule.run` drives any healer (the Forgiving Graph
or a baseline) through it and returns per-step bookkeeping that the analysis
layer turns into the numbers reported in EXPERIMENTS.md.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Union

import numpy as np

from ..core.errors import ConfigurationError
from ..core.ports import NodeId, NodeKey
from ..core.views import g_prime_view_of
from .strategies import (
    DeletionStrategy,
    InsertionStrategy,
    RandomDeletion,
    RandomInsertion,
)

__all__ = [
    "AttackEvent",
    "AttackSchedule",
    "deletion_only_schedule",
    "churn_schedule",
    "deletion_burst_schedule",
    "insertion_burst_schedule",
]

SeedLike = Union[int, np.random.Generator, None]


def _rng(seed: SeedLike) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


@dataclass
class AttackEvent:
    """One adversarial move, after it has been applied to a healer."""

    step: int
    kind: str  # "insert" | "delete" | "burst_delete"
    node: NodeId
    #: Attachment points for insertions, empty for deletions.
    attached_to: tuple = ()
    #: Degree of the victim in ``G'`` at deletion time (deletions only; the
    #: maximum over the burst for ``burst_delete``).
    victim_degree: int = 0
    #: Every victim of a ``burst_delete`` move, in deletion order (``node``
    #: is the first of them); empty for single moves.
    victims: tuple = ()


@dataclass
class AttackSchedule:
    """A bounded sequence of adversarial moves.

    Parameters
    ----------
    steps:
        Maximum number of moves to play.
    deletion_strategy / insertion_strategy:
        How victims and attachment points are chosen.
    delete_probability:
        Probability that a given step is a deletion (the rest are
        insertions).  ``1.0`` gives a pure deletion attack.
    min_survivors:
        The adversary stops deleting once this few nodes remain, so
        experiments never run the graph down to nothing.
    burst_size:
        Victims removed per deletion step.  ``1`` keeps the classic
        one-move-per-round adversary; larger values hand each deletion step
        a whole burst, played through :meth:`healer.delete_batch` when the
        healer offers one (the distributed layer's concurrent repair
        machine) and as back-to-back single deletions otherwise.
    seed:
        Seed controlling the insert/delete coin flips and burst victim
        sampling (strategies hold their own generators).
    """

    steps: int
    deletion_strategy: DeletionStrategy = field(default_factory=RandomDeletion)
    insertion_strategy: InsertionStrategy = field(default_factory=RandomInsertion)
    delete_probability: float = 1.0
    min_survivors: int = 2
    burst_size: int = 1
    seed: SeedLike = None

    def __post_init__(self) -> None:
        if self.steps < 0:
            raise ConfigurationError("steps must be non-negative")
        if not 0.0 <= self.delete_probability <= 1.0:
            raise ConfigurationError("delete_probability must lie in [0, 1]")
        if self.min_survivors < 0:
            raise ConfigurationError("min_survivors must be non-negative")
        if self.burst_size < 1:
            raise ConfigurationError("burst_size must be at least 1")

    def play(self, healer) -> Iterator[AttackEvent]:
        """Play the schedule one move at a time, yielding each applied event.

        This is the streaming primitive underneath :meth:`run` and the
        engine's :class:`repro.engine.AttackSession`: each ``next()`` applies
        exactly one adversarial move (and the healer's repair), so consumers
        can interleave measurement, reporting or early exit without this
        module knowing what is being observed.
        """
        rng = _rng(self.seed)
        fresh_ids = self._fresh_id_source(healer)
        for step in range(1, self.steps + 1):
            do_delete = rng.random() < self.delete_probability
            event: Optional[AttackEvent] = None
            if do_delete and healer.num_alive > self.min_survivors:
                if self.burst_size > 1:
                    event = self._play_burst(step, healer, rng)
                else:
                    event = self._play_deletion(step, healer)
            if event is None:
                if self.delete_probability >= 1.0:
                    # A pure-deletion attack is over once the survivor floor
                    # is reached or the strategy gives up; falling back to
                    # insertions would silently turn it into a churn run.
                    return
                if healer.num_alive >= 1:
                    event = self._play_insertion(step, healer, fresh_ids)
            if event is None:
                return
            yield event

    def run(
        self,
        healer,
        on_event: Optional[Callable[[AttackEvent, object], None]] = None,
    ) -> List[AttackEvent]:
        """Play the whole schedule against ``healer`` and return the applied events.

        ``on_event(event, healer)`` is invoked after every move; thin wrapper
        over the streaming :meth:`play`.
        """
        events: List[AttackEvent] = []
        for event in self.play(healer):
            events.append(event)
            if on_event is not None:
                on_event(event, healer)
        return events

    # ------------------------------------------------------------------ #
    def _play_deletion(self, step: int, healer) -> Optional[AttackEvent]:
        victim = self.deletion_strategy.choose_victim(healer)
        if victim is None:
            return None
        victim_degree = g_prime_view_of(healer).degree[victim]
        healer.delete(victim)
        return AttackEvent(step=step, kind="delete", node=victim, victim_degree=victim_degree)

    def _play_burst(self, step: int, healer, rng: np.random.Generator) -> Optional[AttackEvent]:
        """Delete up to ``burst_size`` distinct victims as one adversarial move.

        Victims are sampled without replacement from the canonically sorted
        survivor list (deterministic under a fixed seed regardless of the
        healer's set iteration order).  A healer exposing ``delete_batch``
        gets the whole burst at once — the distributed layer's concurrent
        repair machine decides there how much of it runs in parallel —
        while any other healer plays it as back-to-back single deletions.
        """
        alive = sorted(healer.alive_nodes, key=NodeKey)
        k = min(self.burst_size, healer.num_alive - self.min_survivors)
        if not alive or k < 1:
            return None
        indices = rng.choice(len(alive), size=min(k, len(alive)), replace=False)
        victims = [alive[int(i)] for i in sorted(int(i) for i in indices)]
        degree_view = g_prime_view_of(healer).degree
        degrees = [degree_view[victim] for victim in victims]
        batch = getattr(healer, "delete_batch", None)
        if batch is not None:
            batch(victims)
        else:
            for victim in victims:
                healer.delete(victim)
        return AttackEvent(
            step=step,
            kind="burst_delete",
            node=victims[0],
            victim_degree=max(degrees),
            victims=tuple(victims),
        )

    def _play_insertion(self, step: int, healer, fresh_ids: Iterator[NodeId]) -> Optional[AttackEvent]:
        attachments = self.insertion_strategy.choose_attachments(healer)
        if not attachments:
            return None
        node = next(fresh_ids)
        healer.insert(node, attach_to=attachments)
        return AttackEvent(step=step, kind="insert", node=node, attached_to=tuple(attachments))

    @staticmethod
    def _fresh_id_source(healer) -> Iterator[NodeId]:
        """Yield integer identifiers guaranteed not to collide with existing nodes."""
        existing = g_prime_view_of(healer).nodes
        numeric = [n for n in existing if isinstance(n, int)]
        start = (max(numeric) + 1) if numeric else 0
        return itertools.count(start)


# --------------------------------------------------------------------------- #
# convenience constructors
# --------------------------------------------------------------------------- #
def deletion_only_schedule(
    steps: int,
    strategy: Optional[DeletionStrategy] = None,
    min_survivors: int = 2,
    seed: SeedLike = None,
) -> AttackSchedule:
    """A pure deletion attack (the regime of Theorems 1 and 2)."""
    return AttackSchedule(
        steps=steps,
        deletion_strategy=strategy if strategy is not None else RandomDeletion(seed=seed),
        delete_probability=1.0,
        min_survivors=min_survivors,
        seed=seed,
    )


def churn_schedule(
    steps: int,
    delete_probability: float = 0.5,
    deletion_strategy: Optional[DeletionStrategy] = None,
    insertion_strategy: Optional[InsertionStrategy] = None,
    min_survivors: int = 2,
    seed: SeedLike = None,
) -> AttackSchedule:
    """Mixed insertions and deletions — the peer-to-peer churn workload (E10)."""
    return AttackSchedule(
        steps=steps,
        deletion_strategy=deletion_strategy if deletion_strategy is not None else RandomDeletion(seed=seed),
        insertion_strategy=insertion_strategy if insertion_strategy is not None else RandomInsertion(seed=seed),
        delete_probability=delete_probability,
        min_survivors=min_survivors,
        seed=seed,
    )


def deletion_burst_schedule(
    steps: int,
    burst_size: int,
    min_survivors: int = 2,
    seed: SeedLike = None,
) -> AttackSchedule:
    """Pure deletions, ``burst_size`` victims per step (concurrent-repair workload).

    Victim sampling is uniform without replacement per step; against the
    distributed healer each burst lands through ``delete_batch`` so repairs
    with disjoint footprints share the message fabric.
    """
    return AttackSchedule(
        steps=steps,
        delete_probability=1.0,
        min_survivors=min_survivors,
        burst_size=burst_size,
        seed=seed,
    )


def insertion_burst_schedule(
    steps: int,
    insertion_strategy: Optional[InsertionStrategy] = None,
    seed: SeedLike = None,
) -> AttackSchedule:
    """Pure growth: only insertions (no healing work should ever be triggered)."""
    return AttackSchedule(
        steps=steps,
        insertion_strategy=insertion_strategy if insertion_strategy is not None else RandomInsertion(seed=seed),
        delete_probability=0.0,
        seed=seed,
    )
