"""Incremental survivor-degree tracking for adversary strategies.

The targeted strategies (max/min degree deletion, star insertion) need the
extremum of the healed degree over all survivors on *every* adversarial move.
The reference implementations scan and sort the whole alive set per move —
O(n log n) even when a repair touched a handful of nodes.  This module keeps
a lazy heap over ``(degree, node)`` pairs that is refreshed from the engine's
*degree-touch journal* (:attr:`repro.core.ForgivingGraph.degree_touch_log`):
every repair appends the nodes whose healed degree it changed, and the
tracker re-pushes exactly those (deduplicated per drain), so the per-move
cost is O(delta log n) — proportional to the repair, not to the graph.

Correctness rests on one invariant: *for every alive node, the heap contains
at least one entry carrying its current healed degree.*  Seeding at bind time
establishes it; the journal keeps it (every degree change journals the node,
and draining pushes the node with its degree at drain time); entries are
never removed except when proven stale.  Popping therefore works lazily: the
top entry wins iff its owner is still alive and its stored degree matches the
current one, otherwise it is stale and discarded — any fresher entry for the
same node sits elsewhere in the heap.

Healers that do not expose the journal (the baselines) are detected by
:func:`SurvivorDegreeTracker.supports`, and the strategies fall back to the
retained sorted reference scan.
"""

from __future__ import annotations

import heapq
import weakref
from typing import Dict, List, Optional, Tuple

from ..core.ports import NodeId, NodeKey
from ..core.views import actual_view_of

__all__ = ["SurvivorDegreeTracker"]


class SurvivorDegreeTracker:
    """Lazy heap over survivors' healed degrees, fed by the engine's touch journal.

    Parameters
    ----------
    largest:
        True tracks the maximum-degree survivor, False the minimum-degree
        one.  Ties break to the first node in the repository's canonical
        order (:class:`repro.core.ports.NodeKey`), matching the reference
        scans exactly.
    """

    __slots__ = ("_largest", "_heap", "_cursor", "_journal_cursor", "_seq", "_healer_ref", "_keys")

    def __init__(self, largest: bool = True) -> None:
        self._largest = largest
        self._heap: List[Tuple[int, NodeKey, int, NodeId]] = []
        self._cursor = 0
        #: Registered journal cursor: pins the undrained suffix against
        #: :meth:`ForgivingGraph.compact_journals` (held weakly by the
        #: journal, so a dropped tracker stops blocking compaction).
        self._journal_cursor = None
        self._seq = 0
        self._healer_ref: Optional[weakref.ref] = None
        # NodeKeys are immutable per node; cache them so repeated journal
        # touches of the same node do not re-allocate key objects.
        self._keys: Dict[NodeId, NodeKey] = {}

    @staticmethod
    def supports(healer) -> bool:
        """True when ``healer`` exposes the degree-touch journal this tracker needs."""
        return getattr(healer, "degree_touch_log", None) is not None

    # ------------------------------------------------------------------ #
    def pick(self, healer) -> Optional[NodeId]:
        """The alive node with extremal healed degree, or ``None`` if none are alive.

        Binds to ``healer`` on first use (or when handed a different healer)
        by seeding the heap from the full alive set; afterwards each call
        drains only the journal suffix written since the previous call.
        """
        bound = self._healer_ref() if self._healer_ref is not None else None
        if bound is not healer:
            self._bind(healer)
        else:
            self._drain(healer)
        return self._peek(healer)

    # ------------------------------------------------------------------ #
    def _key_of(self, node: NodeId) -> NodeKey:
        key = self._keys.get(node)
        if key is None:
            key = NodeKey(node)
            self._keys[node] = key
        return key

    def _sign(self, degree: int) -> int:
        return -degree if self._largest else degree

    def _bind(self, healer) -> None:
        self._healer_ref = weakref.ref(healer)
        self._seq = 0
        self._keys.clear()
        log = healer.degree_touch_log
        self._cursor = len(log)
        register = getattr(log, "register_cursor", None)
        self._journal_cursor = register(self._cursor) if register is not None else None
        graph = actual_view_of(healer)
        degree = graph.degree
        entries: List[Tuple[int, NodeKey, int, NodeId]] = []
        for seq, node in enumerate(healer.alive_nodes):
            entries.append(
                (self._sign(degree[node] if node in graph else 0), self._key_of(node), seq, node)
            )
        self._seq = len(entries)
        heapq.heapify(entries)
        self._heap = entries

    def _drain(self, healer) -> None:
        log = healer.degree_touch_log
        if self._cursor >= len(log):
            return
        # Repairs journal the same processor many times (once per destroyed /
        # created edge source); one push per distinct node per drain suffices.
        touched = set(log[self._cursor : len(log)])
        self._cursor = len(log)
        if self._journal_cursor is not None:
            self._journal_cursor.advance_to(self._cursor)
        graph = actual_view_of(healer)
        degree = graph.degree
        is_alive = healer.is_alive
        heap = self._heap
        for node in touched:
            if is_alive(node):
                self._seq += 1
                heapq.heappush(
                    heap,
                    (
                        self._sign(degree[node] if node in graph else 0),
                        self._key_of(node),
                        self._seq,
                        node,
                    ),
                )

    def _peek(self, healer) -> Optional[NodeId]:
        graph = actual_view_of(healer)
        degree = graph.degree
        is_alive = healer.is_alive
        heap = self._heap
        while heap:
            stored_sign, _node_key, _seq, node = heap[0]
            if is_alive(node):
                if stored_sign == self._sign(degree[node] if node in graph else 0):
                    return node
            heapq.heappop(heap)
        return None
