"""Concrete adversary strategies.

An adversary decides *which* node to delete or *where* to attach a freshly
inserted node.  Strategies only rely on the duck-typed "healer" interface
shared by :class:`repro.core.ForgivingGraph` and every baseline in
:mod:`repro.baselines`:

* ``alive_nodes`` — the set of surviving node identifiers,
* ``actual_graph()`` — the current healed graph (a networkx graph),
* ``g_prime_view()`` — the insertion-only graph ``G'``.

Because the paper's adversary is omniscient, strategies are free to inspect
the healed graph (including the edges the algorithm added) when picking
their next victim — e.g. :class:`MaxDegreeDeletion` keeps hammering whichever
node currently carries the most healing load.  Strategies only *read* the
graphs, so they go through :func:`repro.core.views.actual_view_of` — a
zero-copy view when the healer offers one — instead of copying the healed
graph on every adversarial move.
"""

from __future__ import annotations

import abc
from typing import Dict, Iterable, List, Optional, Sequence, Union

import networkx as nx
import numpy as np

from ..core.errors import ConfigurationError
from ..core.ports import NodeId, sorted_nodes
from ..core.views import actual_view_of

__all__ = [
    "Adversary",
    "DeletionStrategy",
    "RandomDeletion",
    "MaxDegreeDeletion",
    "MinDegreeDeletion",
    "HighBetweennessDeletion",
    "CutAdversary",
    "ScriptedDeletion",
    "InsertionStrategy",
    "RandomInsertion",
    "PreferentialInsertion",
    "SingleLinkInsertion",
    "StarInsertion",
    "available_deletion_strategies",
    "make_deletion_strategy",
]

SeedLike = Union[int, np.random.Generator, None]


def _rng(seed: SeedLike) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


#: Canonical deterministic node ordering (shared: see repro.core.ports).
_sorted_nodes = sorted_nodes


class Adversary(abc.ABC):
    """Base class for anything that picks attack moves against a healer."""


# --------------------------------------------------------------------------- #
# deletion strategies
# --------------------------------------------------------------------------- #
class DeletionStrategy(Adversary):
    """Chooses the next node to delete; returns ``None`` when it gives up."""

    @abc.abstractmethod
    def choose_victim(self, healer) -> Optional[NodeId]:
        """Return the next node to delete, or ``None`` if no node qualifies."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class RandomDeletion(DeletionStrategy):
    """Delete a node chosen uniformly at random among the survivors."""

    def __init__(self, seed: SeedLike = None) -> None:
        self._rng = _rng(seed)

    def choose_victim(self, healer) -> Optional[NodeId]:
        alive = _sorted_nodes(healer.alive_nodes)
        if not alive:
            return None
        return alive[int(self._rng.integers(0, len(alive)))]


class MaxDegreeDeletion(DeletionStrategy):
    """Always delete the node with the highest degree in the *healed* graph.

    This is the canonical omniscient attack: it concentrates damage on the
    nodes that are currently carrying the most healing structure, which is
    exactly the attack the degree guarantee of Theorem 1.1 defends against.
    Ties are broken deterministically by node identifier.
    """

    def choose_victim(self, healer) -> Optional[NodeId]:
        graph = actual_view_of(healer)
        alive = _sorted_nodes(healer.alive_nodes)
        if not alive:
            return None
        return max(alive, key=lambda v: (graph.degree[v] if v in graph else 0, -alive.index(v)))


class MinDegreeDeletion(DeletionStrategy):
    """Delete the lowest-degree survivor (peels leaves; stresses RT merging breadth)."""

    def choose_victim(self, healer) -> Optional[NodeId]:
        graph = actual_view_of(healer)
        alive = _sorted_nodes(healer.alive_nodes)
        if not alive:
            return None
        return min(alive, key=lambda v: (graph.degree[v] if v in graph else 0, alive.index(v)))


class HighBetweennessDeletion(DeletionStrategy):
    """Delete the node with the highest (approximate) betweenness centrality.

    Betweenness targets the nodes that carry the most shortest paths, i.e.
    the attack that maximally threatens the *stretch* guarantee.  For graphs
    larger than ``exact_limit`` nodes a sampled approximation is used so the
    strategy stays usable inside large sweeps.
    """

    def __init__(self, seed: SeedLike = None, exact_limit: int = 400, samples: int = 64) -> None:
        self._rng = _rng(seed)
        self._exact_limit = exact_limit
        self._samples = samples

    def choose_victim(self, healer) -> Optional[NodeId]:
        graph = actual_view_of(healer)
        alive = _sorted_nodes(healer.alive_nodes)
        if not alive:
            return None
        if graph.number_of_nodes() <= 2:
            return alive[0]
        if graph.number_of_nodes() <= self._exact_limit:
            centrality = nx.betweenness_centrality(graph)
        else:
            k = min(self._samples, graph.number_of_nodes())
            centrality = nx.betweenness_centrality(
                graph, k=k, seed=int(self._rng.integers(0, 2**31 - 1))
            )
        return max(alive, key=lambda v: (centrality.get(v, 0.0), repr(v)))


class CutAdversary(DeletionStrategy):
    """Delete articulation points first, falling back to max degree.

    Articulation points are the nodes whose removal would disconnect the
    graph if no healing happened; attacking them stresses the connectivity
    and stretch guarantees the hardest.
    """

    def choose_victim(self, healer) -> Optional[NodeId]:
        graph = actual_view_of(healer)
        alive = _sorted_nodes(healer.alive_nodes)
        if not alive:
            return None
        cut_nodes = [v for v in nx.articulation_points(graph) if v in healer.alive_nodes]
        if cut_nodes:
            return max(
                _sorted_nodes(cut_nodes),
                key=lambda v: (graph.degree[v] if v in graph else 0, repr(v)),
            )
        return MaxDegreeDeletion().choose_victim(healer)


class ScriptedDeletion(DeletionStrategy):
    """Delete nodes in a pre-specified order (skipping any that are already gone)."""

    def __init__(self, victims: Sequence[NodeId]) -> None:
        self._victims = list(victims)
        self._index = 0

    def choose_victim(self, healer) -> Optional[NodeId]:
        alive = healer.alive_nodes
        while self._index < len(self._victims):
            victim = self._victims[self._index]
            self._index += 1
            if victim in alive:
                return victim
        return None


_DELETION_STRATEGIES = {
    "random": RandomDeletion,
    "max_degree": MaxDegreeDeletion,
    "min_degree": MinDegreeDeletion,
    "betweenness": HighBetweennessDeletion,
    "cut": CutAdversary,
}


def available_deletion_strategies() -> List[str]:
    """Names accepted by :func:`make_deletion_strategy`."""
    return sorted(_DELETION_STRATEGIES)


def make_deletion_strategy(name: str, seed: SeedLike = None) -> DeletionStrategy:
    """Instantiate a deletion strategy by name (used by the experiment configs)."""
    try:
        cls = _DELETION_STRATEGIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown deletion strategy {name!r}; "
            f"available: {', '.join(available_deletion_strategies())}"
        ) from None
    if cls in (RandomDeletion, HighBetweennessDeletion):
        return cls(seed=seed)
    return cls()


# --------------------------------------------------------------------------- #
# insertion strategies
# --------------------------------------------------------------------------- #
class InsertionStrategy(Adversary):
    """Chooses the attachment points for a freshly inserted node."""

    @abc.abstractmethod
    def choose_attachments(self, healer) -> List[NodeId]:
        """Return the alive nodes the new node should connect to (possibly empty)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class RandomInsertion(InsertionStrategy):
    """Attach the new node to ``k`` survivors chosen uniformly at random."""

    def __init__(self, k: int = 3, seed: SeedLike = None) -> None:
        if k < 1:
            raise ConfigurationError("an inserted node needs at least one attachment")
        self.k = k
        self._rng = _rng(seed)

    def choose_attachments(self, healer) -> List[NodeId]:
        alive = _sorted_nodes(healer.alive_nodes)
        if not alive:
            return []
        count = min(self.k, len(alive))
        picks = self._rng.choice(len(alive), size=count, replace=False)
        return [alive[int(i)] for i in picks]


class PreferentialInsertion(InsertionStrategy):
    """Attach to survivors with probability proportional to their healed degree.

    Mimics preferential attachment so that long churn runs keep a power-law
    flavour, which is the regime where targeted attacks hurt the most.
    """

    def __init__(self, k: int = 3, seed: SeedLike = None) -> None:
        if k < 1:
            raise ConfigurationError("an inserted node needs at least one attachment")
        self.k = k
        self._rng = _rng(seed)

    def choose_attachments(self, healer) -> List[NodeId]:
        graph = actual_view_of(healer)
        alive = _sorted_nodes(healer.alive_nodes)
        if not alive:
            return []
        weights = np.array([graph.degree[v] + 1.0 if v in graph else 1.0 for v in alive])
        weights = weights / weights.sum()
        count = min(self.k, len(alive))
        picks = self._rng.choice(len(alive), size=count, replace=False, p=weights)
        return [alive[int(i)] for i in picks]


class SingleLinkInsertion(InsertionStrategy):
    """Attach the new node to exactly one random survivor (grows tree-like fringes)."""

    def __init__(self, seed: SeedLike = None) -> None:
        self._rng = _rng(seed)

    def choose_attachments(self, healer) -> List[NodeId]:
        alive = _sorted_nodes(healer.alive_nodes)
        if not alive:
            return []
        return [alive[int(self._rng.integers(0, len(alive)))]]


class StarInsertion(InsertionStrategy):
    """Adversarial insertion: always attach to the current maximum-degree survivor.

    Combined with a later deletion of that hub, this is how an omniscient
    adversary manufactures the Theorem 2 star scenario inside an arbitrary
    topology.
    """

    def choose_attachments(self, healer) -> List[NodeId]:
        graph = actual_view_of(healer)
        alive = _sorted_nodes(healer.alive_nodes)
        if not alive:
            return []
        hub = max(alive, key=lambda v: (graph.degree[v] if v in graph else 0, repr(v)))
        return [hub]
