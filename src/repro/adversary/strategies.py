"""Concrete adversary strategies.

An adversary decides *which* node to delete or *where* to attach a freshly
inserted node.  Strategies only rely on the duck-typed "healer" interface
shared by :class:`repro.core.ForgivingGraph` and every baseline in
:mod:`repro.baselines`:

* ``alive_nodes`` — the set of surviving node identifiers,
* ``actual_graph()`` — the current healed graph (a networkx graph),
* ``g_prime_view()`` — the insertion-only graph ``G'``.

Because the paper's adversary is omniscient, strategies are free to inspect
the healed graph (including the edges the algorithm added) when picking
their next victim — e.g. :class:`MaxDegreeDeletion` keeps hammering whichever
node currently carries the most healing load.  Strategies only *read* the
graphs, so they go through :func:`repro.core.views.actual_view_of` — a
zero-copy view when the healer offers one — instead of copying the healed
graph on every adversarial move.

The degree-targeted strategies (:class:`MaxDegreeDeletion`,
:class:`MinDegreeDeletion`, :class:`StarInsertion`) are *incremental*: when
the healer exposes a degree-touch journal (the :class:`ForgivingGraph`
engine does), they track survivors in a lazy heap refreshed from repair
deltas (:mod:`repro.adversary.incremental`) instead of re-sorting all
survivors on every move.  The original full-scan implementations are
retained as ``*Reference`` classes; randomized-churn tests pin that both
paths pick identical victims at every step.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Sequence, Union

import networkx as nx
import numpy as np

from ..core.errors import ConfigurationError
from ..core.ports import NodeId, sorted_nodes
from ..core.views import actual_view_of
from .incremental import SurvivorDegreeTracker

__all__ = [
    "Adversary",
    "DeletionStrategy",
    "RandomDeletion",
    "MaxDegreeDeletion",
    "MaxDegreeDeletionReference",
    "MinDegreeDeletion",
    "MinDegreeDeletionReference",
    "HighBetweennessDeletion",
    "CutAdversary",
    "ScriptedDeletion",
    "InsertionStrategy",
    "RandomInsertion",
    "PreferentialInsertion",
    "SingleLinkInsertion",
    "StarInsertion",
    "StarInsertionReference",
    "available_deletion_strategies",
    "make_deletion_strategy",
]

SeedLike = Union[int, np.random.Generator, None]


def _rng(seed: SeedLike) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


#: Canonical deterministic node ordering (shared: see repro.core.ports).
_sorted_nodes = sorted_nodes


def _extremal_degree_scan(healer, largest: bool) -> Optional[NodeId]:
    """Full-scan extremal-degree survivor, ties to the canonical-first node.

    This is the retained reference semantics every incremental tracker must
    reproduce exactly: walk the survivors in canonical order and keep the
    first strict improvement, so equal degrees resolve to the earliest node
    in :func:`repro.core.ports.sorted_nodes` order.
    """
    graph = actual_view_of(healer)
    alive = _sorted_nodes(healer.alive_nodes)
    if not alive:
        return None
    best: Optional[NodeId] = None
    best_degree = 0
    for node in alive:
        degree = graph.degree[node] if node in graph else 0
        if best is None or (degree > best_degree if largest else degree < best_degree):
            best, best_degree = node, degree
    return best


class Adversary(abc.ABC):
    """Base class for anything that picks attack moves against a healer."""


# --------------------------------------------------------------------------- #
# deletion strategies
# --------------------------------------------------------------------------- #
class DeletionStrategy(Adversary):
    """Chooses the next node to delete; returns ``None`` when it gives up."""

    @abc.abstractmethod
    def choose_victim(self, healer) -> Optional[NodeId]:
        """Return the next node to delete, or ``None`` if no node qualifies."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class RandomDeletion(DeletionStrategy):
    """Delete a node chosen uniformly at random among the survivors."""

    def __init__(self, seed: SeedLike = None) -> None:
        self._rng = _rng(seed)

    def choose_victim(self, healer) -> Optional[NodeId]:
        alive = _sorted_nodes(healer.alive_nodes)
        if not alive:
            return None
        return alive[int(self._rng.integers(0, len(alive)))]


class MaxDegreeDeletion(DeletionStrategy):
    """Always delete the node with the highest degree in the *healed* graph.

    This is the canonical omniscient attack: it concentrates damage on the
    nodes that are currently carrying the most healing structure, which is
    exactly the attack the degree guarantee of Theorem 1.1 defends against.
    Ties are broken deterministically by node identifier (canonical order).

    Incremental: against healers exposing a degree-touch journal the victim
    comes from a lazy heap refreshed by repair deltas — O(delta log n) per
    move instead of the reference scan's O(n log n).
    """

    def __init__(self) -> None:
        self._tracker = SurvivorDegreeTracker(largest=True)

    def choose_victim(self, healer) -> Optional[NodeId]:
        if SurvivorDegreeTracker.supports(healer):
            return self._tracker.pick(healer)
        return _extremal_degree_scan(healer, largest=True)


class MaxDegreeDeletionReference(DeletionStrategy):
    """The retained full-scan :class:`MaxDegreeDeletion` (sorts all survivors)."""

    def choose_victim(self, healer) -> Optional[NodeId]:
        return _extremal_degree_scan(healer, largest=True)


class MinDegreeDeletion(DeletionStrategy):
    """Delete the lowest-degree survivor (peels leaves; stresses RT merging breadth).

    Incremental like :class:`MaxDegreeDeletion`, with a min-heap.
    """

    def __init__(self) -> None:
        self._tracker = SurvivorDegreeTracker(largest=False)

    def choose_victim(self, healer) -> Optional[NodeId]:
        if SurvivorDegreeTracker.supports(healer):
            return self._tracker.pick(healer)
        return _extremal_degree_scan(healer, largest=False)


class MinDegreeDeletionReference(DeletionStrategy):
    """The retained full-scan :class:`MinDegreeDeletion` (sorts all survivors)."""

    def choose_victim(self, healer) -> Optional[NodeId]:
        return _extremal_degree_scan(healer, largest=False)


class HighBetweennessDeletion(DeletionStrategy):
    """Delete the node with the highest (approximate) betweenness centrality.

    Betweenness targets the nodes that carry the most shortest paths, i.e.
    the attack that maximally threatens the *stretch* guarantee.  For graphs
    larger than ``exact_limit`` nodes a sampled approximation is used so the
    strategy stays usable inside large sweeps.
    """

    def __init__(self, seed: SeedLike = None, exact_limit: int = 400, samples: int = 64) -> None:
        self._rng = _rng(seed)
        self._exact_limit = exact_limit
        self._samples = samples

    def choose_victim(self, healer) -> Optional[NodeId]:
        graph = actual_view_of(healer)
        alive = _sorted_nodes(healer.alive_nodes)
        if not alive:
            return None
        if graph.number_of_nodes() <= 2:
            return alive[0]
        if graph.number_of_nodes() <= self._exact_limit:
            centrality = nx.betweenness_centrality(graph)
        else:
            k = min(self._samples, graph.number_of_nodes())
            centrality = nx.betweenness_centrality(
                graph, k=k, seed=int(self._rng.integers(0, 2**31 - 1))
            )
        best = alive[0]
        best_score = centrality.get(best, 0.0)
        for v in alive[1:]:
            score = centrality.get(v, 0.0)
            if score > best_score:
                best, best_score = v, score
        return best


class CutAdversary(DeletionStrategy):
    """Delete articulation points first, falling back to max degree.

    Articulation points are the nodes whose removal would disconnect the
    graph if no healing happened; attacking them stresses the connectivity
    and stretch guarantees the hardest.
    """

    def __init__(self) -> None:
        self._fallback = MaxDegreeDeletion()

    def choose_victim(self, healer) -> Optional[NodeId]:
        graph = actual_view_of(healer)
        alive = healer.alive_nodes
        if not alive:
            return None
        cut_nodes = [v for v in nx.articulation_points(graph) if v in alive]
        if cut_nodes:
            best: Optional[NodeId] = None
            best_degree = -1
            for v in _sorted_nodes(cut_nodes):
                degree = graph.degree[v] if v in graph else 0
                if degree > best_degree:
                    best, best_degree = v, degree
            return best
        return self._fallback.choose_victim(healer)


class ScriptedDeletion(DeletionStrategy):
    """Delete nodes in a pre-specified order (skipping any that are already gone)."""

    def __init__(self, victims: Sequence[NodeId]) -> None:
        self._victims = list(victims)
        self._index = 0

    def choose_victim(self, healer) -> Optional[NodeId]:
        alive = healer.alive_nodes
        while self._index < len(self._victims):
            victim = self._victims[self._index]
            self._index += 1
            if victim in alive:
                return victim
        return None


_DELETION_STRATEGIES = {
    "random": RandomDeletion,
    "max_degree": MaxDegreeDeletion,
    "max_degree_reference": MaxDegreeDeletionReference,
    "min_degree": MinDegreeDeletion,
    "min_degree_reference": MinDegreeDeletionReference,
    "betweenness": HighBetweennessDeletion,
    "cut": CutAdversary,
}


def available_deletion_strategies() -> List[str]:
    """Names accepted by :func:`make_deletion_strategy`."""
    return sorted(_DELETION_STRATEGIES)


def make_deletion_strategy(name: str, seed: SeedLike = None) -> DeletionStrategy:
    """Instantiate a deletion strategy by name (used by the experiment configs)."""
    try:
        cls = _DELETION_STRATEGIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown deletion strategy {name!r}; "
            f"available: {', '.join(available_deletion_strategies())}"
        ) from None
    if cls in (RandomDeletion, HighBetweennessDeletion):
        return cls(seed=seed)
    return cls()


# --------------------------------------------------------------------------- #
# insertion strategies
# --------------------------------------------------------------------------- #
class InsertionStrategy(Adversary):
    """Chooses the attachment points for a freshly inserted node."""

    @abc.abstractmethod
    def choose_attachments(self, healer) -> List[NodeId]:
        """Return the alive nodes the new node should connect to (possibly empty)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class RandomInsertion(InsertionStrategy):
    """Attach the new node to ``k`` survivors chosen uniformly at random."""

    def __init__(self, k: int = 3, seed: SeedLike = None) -> None:
        if k < 1:
            raise ConfigurationError("an inserted node needs at least one attachment")
        self.k = k
        self._rng = _rng(seed)

    def choose_attachments(self, healer) -> List[NodeId]:
        alive = _sorted_nodes(healer.alive_nodes)
        if not alive:
            return []
        count = min(self.k, len(alive))
        picks = self._rng.choice(len(alive), size=count, replace=False)
        return [alive[int(i)] for i in picks]


class PreferentialInsertion(InsertionStrategy):
    """Attach to survivors with probability proportional to their healed degree.

    Mimics preferential attachment so that long churn runs keep a power-law
    flavour, which is the regime where targeted attacks hurt the most.
    """

    def __init__(self, k: int = 3, seed: SeedLike = None) -> None:
        if k < 1:
            raise ConfigurationError("an inserted node needs at least one attachment")
        self.k = k
        self._rng = _rng(seed)

    def choose_attachments(self, healer) -> List[NodeId]:
        graph = actual_view_of(healer)
        alive = _sorted_nodes(healer.alive_nodes)
        if not alive:
            return []
        weights = np.array([graph.degree[v] + 1.0 if v in graph else 1.0 for v in alive])
        weights = weights / weights.sum()
        count = min(self.k, len(alive))
        picks = self._rng.choice(len(alive), size=count, replace=False, p=weights)
        return [alive[int(i)] for i in picks]


class SingleLinkInsertion(InsertionStrategy):
    """Attach the new node to exactly one random survivor (grows tree-like fringes)."""

    def __init__(self, seed: SeedLike = None) -> None:
        self._rng = _rng(seed)

    def choose_attachments(self, healer) -> List[NodeId]:
        alive = _sorted_nodes(healer.alive_nodes)
        if not alive:
            return []
        return [alive[int(self._rng.integers(0, len(alive)))]]


class StarInsertion(InsertionStrategy):
    """Adversarial insertion: always attach to the current maximum-degree survivor.

    Combined with a later deletion of that hub, this is how an omniscient
    adversary manufactures the Theorem 2 star scenario inside an arbitrary
    topology.  Incremental against journal-exposing healers, like
    :class:`MaxDegreeDeletion`.
    """

    def __init__(self) -> None:
        self._tracker = SurvivorDegreeTracker(largest=True)

    def choose_attachments(self, healer) -> List[NodeId]:
        if SurvivorDegreeTracker.supports(healer):
            hub = self._tracker.pick(healer)
        else:
            hub = _extremal_degree_scan(healer, largest=True)
        return [] if hub is None else [hub]


class StarInsertionReference(InsertionStrategy):
    """The full-scan :class:`StarInsertion` (sorts all survivors every move).

    Note: the *scan* is what is retained here.  Degree ties now resolve to
    the canonical-first node (like every other targeted strategy) instead of
    the pre-refactor largest-repr pick, so hub choices can differ from
    releases before the incremental adversaries landed.
    """

    def choose_attachments(self, healer) -> List[NodeId]:
        hub = _extremal_degree_scan(healer, largest=True)
        return [] if hub is None else [hub]
