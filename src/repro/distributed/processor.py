"""Per-processor state: the fields of Table 1.

Each processor keeps one :class:`EdgeRecord` per ``G'`` edge it participates
in.  The record has exactly the fields the paper lists in Table 1: the real
node's current endpoint, whether the processor is simulating a helper node
for this edge, the real node's RT parent and representative, plus the helper
node's parent / children / height / children-count / representative.

All state changes are driven by received messages (plus the local knowledge
of the processor's own insertions), so the collection of edge records across
processors *is* the distributed representation of the virtual graph.  The
test-suite reconstructs the virtual graph from these records and compares it
with the centralized engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.ports import NodeId, Port
from .messages import (
    AnchorLink,
    DeletionNotice,
    HelperAssignment,
    InsertionNotice,
    Message,
    PrimaryRootList,
    PrimaryRootReport,
    Probe,
)

__all__ = ["EdgeRecord", "Processor"]


@dataclass
class EdgeRecord:
    """State kept by processor ``v`` for the ``G'`` edge ``(v, x)`` (Table 1)."""

    #: The other endpoint ``x`` of the edge in ``G'``.
    neighbor: NodeId

    # --- real-node fields ------------------------------------------------
    #: Current endpoint of the edge: ``x`` while ``x`` is alive, otherwise the
    #: port identifying the real node's parent in its RT.
    endpoint: Optional[Port] = None
    #: Whether ``x`` is known to be alive (endpoint is the real node itself).
    neighbor_alive: bool = True
    #: True when this processor currently simulates a helper node for this edge.
    has_helper: bool = False
    #: Port identifying the real node's parent in its RT (None while ``x`` is alive).
    rt_parent: Optional[Port] = None
    #: Representative used while merging; for a real node this is itself.
    representative: Optional[Port] = None

    # --- helper-node fields (meaningful only when ``has_helper``) ---------
    helper_parent: Optional[Port] = None
    helper_left: Optional[Port] = None
    helper_right: Optional[Port] = None
    helper_height: int = 0
    helper_children_count: int = 0
    helper_representative: Optional[Port] = None

    def clear_helper(self) -> None:
        """Drop the helper node simulated for this edge (it was 'marked red')."""
        self.has_helper = False
        self.helper_parent = None
        self.helper_left = None
        self.helper_right = None
        self.helper_height = 0
        self.helper_children_count = 0
        self.helper_representative = None


class Processor:
    """A network processor: identifier, per-edge records, and a message log.

    The processor is deliberately passive: message handlers update the edge
    records and append to the local log; the orchestration of the repair
    (who probes, who merges with whom) is carried out by the protocol driver
    in :mod:`repro.distributed.protocol`, faithful to the phases of the
    paper, with every state change arriving through :meth:`receive`.
    """

    def __init__(self, node_id: NodeId) -> None:
        self.node_id = node_id
        #: One record per ``G'`` edge, keyed by the neighbour's identifier.
        self.edges: Dict[NodeId, EdgeRecord] = {}
        #: All messages received, in arrival order (useful for tests/tracing).
        self.received: List[Message] = []
        #: Messages received per kind (cheap counters for assertions).
        self.received_by_kind: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # local knowledge
    # ------------------------------------------------------------------ #
    def ensure_edge(self, neighbor: NodeId) -> EdgeRecord:
        """Create (or return) the edge record for the ``G'`` edge to ``neighbor``.

        Mirrors ``Init(v)`` (Algorithm A.2): the representative starts as the
        processor's own port and every other field is empty.
        """
        if neighbor not in self.edges:
            record = EdgeRecord(neighbor=neighbor)
            record.representative = Port(self.node_id, neighbor)
            self.edges[neighbor] = record
        return self.edges[neighbor]

    def port(self, neighbor: NodeId) -> Port:
        """The port this processor owns for the edge to ``neighbor``."""
        return Port(self.node_id, neighbor)

    def helper_ports(self) -> List[Port]:
        """Ports for which this processor currently simulates a helper node."""
        return [Port(self.node_id, nbr) for nbr, rec in self.edges.items() if rec.has_helper]

    def degree_in_edges(self) -> int:
        """Number of ``G'`` edges this processor participates in."""
        return len(self.edges)

    # ------------------------------------------------------------------ #
    # message handling
    # ------------------------------------------------------------------ #
    def receive(self, message: Message) -> None:
        """Dispatch an incoming message to its handler."""
        self.received.append(message)
        self.received_by_kind[message.kind] = self.received_by_kind.get(message.kind, 0) + 1
        handler = getattr(self, f"_on_{message.kind}", None)
        if handler is not None:
            handler(message)

    # -- handlers ----------------------------------------------------------
    def _on_InsertionNotice(self, message: InsertionNotice) -> None:
        self.ensure_edge(message.inserted)

    def _on_DeletionNotice(self, message: DeletionNotice) -> None:
        record = self.edges.get(message.deleted)
        if record is not None:
            record.neighbor_alive = False
            record.endpoint = None

    def _on_AnchorLink(self, message: AnchorLink) -> None:
        # BT_v formation is tracked by the protocol driver; the processor
        # only needs to remember it took part (for the message accounting
        # and for tests asserting who participated).
        return

    def _on_Probe(self, message: Probe) -> None:
        return

    def _on_PrimaryRootReport(self, message: PrimaryRootReport) -> None:
        return

    def _on_PrimaryRootList(self, message: PrimaryRootList) -> None:
        return

    def _on_ParentUpdate(self, message) -> None:
        port = message.child_port
        if port is None or port.processor != self.node_id:
            return
        record = self.ensure_edge(port.neighbor)
        if message.child_is_helper:
            record.helper_parent = message.parent_port
        else:
            record.rt_parent = message.parent_port
            record.endpoint = message.parent_port
            record.neighbor_alive = False

    def _on_HelperAssignment(self, message: HelperAssignment) -> None:
        port = message.helper_port
        if port is None or port.processor != self.node_id:
            return
        record = self.ensure_edge(port.neighbor)
        if not message.create:
            record.clear_helper()
            return
        record.has_helper = True
        record.helper_parent = message.parent_port
        record.helper_left = message.left_port
        record.helper_right = message.right_port

    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Processor({self.node_id!r}, edges={len(self.edges)})"
