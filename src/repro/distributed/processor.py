"""Per-processor state and behaviour: Table 1 records plus the reactive repair.

Each processor keeps one :class:`EdgeRecord` per ``G'`` edge it participates
in.  The record has exactly the fields the paper lists in Table 1: the real
node's current endpoint, whether the processor is simulating a helper node
for this edge, the real node's RT parent and representative, plus the helper
node's parent / children / height / children-count / representative.

Since the merge went message-native (PR 4) the processor is no longer a
passive recorder: during a repair it *acts* on what it receives.  At repair
start the protocol installs a :class:`RepairContext` — the processor's
pre-failure local knowledge (its position on a probe path, the complete
pieces it can vouch for, the helpers it must mark red, its place in the
``BT_v`` anchor tree) — and from then on every state change is driven by
incoming messages and round timers:

* a :class:`~repro.distributed.messages.Probe` makes it strip its broken
  fragments locally and forward the probe down the spine,
* :class:`~repro.distributed.messages.PrimaryRootReport` descriptors are
  pipelined back towards the anchor, each hop folding in its own pieces,
* anchors batch what arrived into
  :class:`~repro.distributed.messages.PrimaryRootList` messages up ``BT_v``
  when their deadline round passes — with or without the laggards,
* the *leader* anchor (the ``BT_v`` root) runs the merge
  (:func:`repro.distributed.merge.merge_summaries`) on whatever descriptors
  reached it and disseminates the outcome as
  :class:`~repro.distributed.messages.HelperAssignment` /
  :class:`~repro.distributed.messages.ParentUpdate` instructions; late
  descriptors trigger a re-merge under a higher epoch.

The collection of edge records plus the network's sourced links *is* the
distributed representation of the healed structure; processors that missed
messages simply hold stale records until the anti-entropy recovery
(:mod:`repro.distributed.recovery`, PR 5) heals them: on every gossip sweep
the processor derives compact :class:`~repro.distributed.messages.Digest`
messages from its *own* repair context and Table 1 records (probe seen?
pieces vouched for?  assignments applied, with which pointers?), pushes
them along its spine/anchor links, and retransmits exactly what incoming
digests show missing — a predecessor resends the probe an unprobed
successor's digest reveals, the leader re-merges under a higher epoch when
digests surface unreported pieces and re-instructs owners whose record
digests diverge from its outcome.  The test-suite reconstructs the
structure from these records and compares it with the centralized engine —
the engine is an oracle, never a participant.
"""

from __future__ import annotations

from array import array
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

import dataclasses

from ..core.ports import NodeId, Port
from .merge import MergeOutcome, PieceSummary, link_source_key, merge_summaries
from .messages import (
    MAX_PORTS_PER_REQUEST,
    MAX_ROOTS_PER_MESSAGE,
    DeletionNotice,
    Digest,
    DigestRequest,
    HelperAssignment,
    InsertionNotice,
    Message,
    ParentUpdate,
    PortDigest,
    PrimaryRootList,
    PrimaryRootReport,
    Probe,
)

__all__ = [
    "DenseEdgeTable",
    "DictEdgeTable",
    "EdgeRecord",
    "EdgeRecordView",
    "Processor",
    "RepairContext",
    "SpineRole",
]


@dataclass
class EdgeRecord:
    """State kept by processor ``v`` for the ``G'`` edge ``(v, x)`` (Table 1)."""

    #: The other endpoint ``x`` of the edge in ``G'``.
    neighbor: NodeId

    # --- real-node fields ------------------------------------------------
    #: Current endpoint of the edge: ``x`` while ``x`` is alive, otherwise the
    #: port identifying the real node's parent in its RT.
    endpoint: Optional[Port] = None
    #: Whether ``x`` is known to be alive (endpoint is the real node itself).
    neighbor_alive: bool = True
    #: True when this processor currently simulates a helper node for this edge.
    has_helper: bool = False
    #: Port identifying the real node's parent in its RT (None while ``x`` is alive).
    rt_parent: Optional[Port] = None
    #: Representative used while merging; for a real node this is itself.
    representative: Optional[Port] = None

    # --- helper-node fields (meaningful only when ``has_helper``) ---------
    helper_parent: Optional[Port] = None
    helper_left: Optional[Port] = None
    helper_right: Optional[Port] = None
    helper_height: int = 0
    helper_children_count: int = 0
    helper_representative: Optional[Port] = None
    #: The deletion whose repair created this helper (guards a late stale
    #: ``create`` from clobbering a helper another repair installed).
    helper_victim: Optional[NodeId] = None

    def clear_helper(self) -> None:
        """Drop the helper node simulated for this edge (it was 'marked red')."""
        self.has_helper = False
        self.helper_parent = None
        self.helper_left = None
        self.helper_right = None
        self.helper_height = 0
        self.helper_children_count = 0
        self.helper_representative = None
        self.helper_victim = None


#: (attribute, column, kind) triples describing the Table 1 record layout —
#: the single source of truth both record stores derive from.  ``kind`` is
#: ``"obj"`` (pointer column), ``"bool"`` (bytearray column) or ``"int"``
#: (machine-int array column).
_RECORD_COLUMNS: Tuple[Tuple[str, str, str], ...] = (
    ("neighbor", "_neighbor", "obj"),
    ("endpoint", "_endpoint", "obj"),
    ("neighbor_alive", "_alive", "bool"),
    ("has_helper", "_has_helper", "bool"),
    ("rt_parent", "_rt_parent", "obj"),
    ("representative", "_representative", "obj"),
    ("helper_parent", "_helper_parent", "obj"),
    ("helper_left", "_helper_left", "obj"),
    ("helper_right", "_helper_right", "obj"),
    ("helper_height", "_helper_height", "int"),
    ("helper_children_count", "_helper_children", "int"),
    ("helper_representative", "_helper_representative", "obj"),
    ("helper_victim", "_helper_victim", "obj"),
)


def _view_property(column: str, kind: str):
    """Build one :class:`EdgeRecordView` property reading/writing a column."""
    if kind == "bool":

        def getter(self):
            return bool(getattr(self._table, column)[self._slot])

        def setter(self, value):
            getattr(self._table, column)[self._slot] = 1 if value else 0

    else:

        def getter(self):
            return getattr(self._table, column)[self._slot]

        def setter(self, value):
            getattr(self._table, column)[self._slot] = value

    return property(getter, setter)


class EdgeRecordView:
    """Live Table 1 record view over one :class:`DenseEdgeTable` slot.

    Carries no state of its own — every attribute read/write goes straight
    to the table's columns, so a view captured early (the tests do this)
    always sees the current record.  The attribute surface is exactly
    :class:`EdgeRecord`'s, which is what lets the dense store slide under
    every handler unchanged.
    """

    __slots__ = ("_table", "_slot")

    def __init__(self, table: "DenseEdgeTable", slot: int) -> None:
        self._table = table
        self._slot = slot

    def clear_helper(self) -> None:
        """Drop the helper node simulated for this edge (it was 'marked red')."""
        table, slot = self._table, self._slot
        table._has_helper[slot] = 0
        table._helper_parent[slot] = None
        table._helper_left[slot] = None
        table._helper_right[slot] = None
        table._helper_height[slot] = 0
        table._helper_children[slot] = 0
        table._helper_representative[slot] = None
        table._helper_victim[slot] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        fields = ", ".join(
            f"{name}={getattr(self, name)!r}" for name, _col, _kind in _RECORD_COLUMNS
        )
        return f"EdgeRecordView({fields})"


for _name, _column, _kind in _RECORD_COLUMNS:
    setattr(EdgeRecordView, _name, _view_property(_column, _kind))
del _name, _column, _kind


class DenseEdgeTable:
    """Struct-of-arrays Table 1 store: one column per record field.

    The dense-int fast path (PR 7): instead of one :class:`EdgeRecord`
    dataclass instance (object header + ``__dict__``) per ``G'`` edge, the
    table keeps thirteen parallel columns — pointer fields in plain lists,
    booleans packed one byte each in bytearrays, counters in machine-int
    arrays — and hands out slot-indexed :class:`EdgeRecordView` proxies.
    Records are append-only (the protocol never deletes one; a dead
    neighbour is ``neighbor_alive=False``), so slots never move and cached
    views stay valid.  The mapping surface mirrors ``Dict[NodeId,
    EdgeRecord]``, the seed layout retained in :class:`DictEdgeTable` as
    the reference twin the churn-equivalence tests compare against.
    """

    __slots__ = (
        "_slots",
        "_views",
        "_neighbor",
        "_endpoint",
        "_alive",
        "_has_helper",
        "_rt_parent",
        "_representative",
        "_helper_parent",
        "_helper_left",
        "_helper_right",
        "_helper_height",
        "_helper_children",
        "_helper_representative",
        "_helper_victim",
    )

    def __init__(self) -> None:
        self._slots: Dict[NodeId, int] = {}
        self._views: List[EdgeRecordView] = []
        self._neighbor: List[NodeId] = []
        self._endpoint: List[Optional[Port]] = []
        self._alive = bytearray()
        self._has_helper = bytearray()
        self._rt_parent: List[Optional[Port]] = []
        self._representative: List[Optional[Port]] = []
        self._helper_parent: List[Optional[Port]] = []
        self._helper_left: List[Optional[Port]] = []
        self._helper_right: List[Optional[Port]] = []
        self._helper_height = array("q")
        self._helper_children = array("q")
        self._helper_representative: List[Optional[Port]] = []
        self._helper_victim: List[Optional[NodeId]] = []

    def create(self, owner: NodeId, neighbor: NodeId) -> EdgeRecordView:
        """Append a fresh record (``Init(v)`` defaults) and return its view."""
        slot = len(self._neighbor)
        self._slots[neighbor] = slot
        self._neighbor.append(neighbor)
        self._endpoint.append(None)
        self._alive.append(1)
        self._has_helper.append(0)
        self._rt_parent.append(None)
        self._representative.append(Port(owner, neighbor))
        self._helper_parent.append(None)
        self._helper_left.append(None)
        self._helper_right.append(None)
        self._helper_height.append(0)
        self._helper_children.append(0)
        self._helper_representative.append(None)
        self._helper_victim.append(None)
        view = EdgeRecordView(self, slot)
        self._views.append(view)
        return view

    # -- mapping surface (mirrors Dict[NodeId, EdgeRecord]) ----------------
    def __contains__(self, neighbor: NodeId) -> bool:
        return neighbor in self._slots

    def __getitem__(self, neighbor: NodeId) -> EdgeRecordView:
        return self._views[self._slots[neighbor]]

    def get(self, neighbor: NodeId, default=None):
        slot = self._slots.get(neighbor)
        return self._views[slot] if slot is not None else default

    def __setitem__(self, neighbor: NodeId, record) -> None:
        """Copy a record's fields into the slot for ``neighbor`` (rarely used)."""
        view = self.get(neighbor)
        if view is None:
            view = self.create(None, neighbor)  # representative overwritten below
        for name, _column, _kind in _RECORD_COLUMNS:
            setattr(view, name, getattr(record, name))
        view.neighbor = neighbor

    def __len__(self) -> int:
        return len(self._neighbor)

    def __iter__(self):
        return iter(self._neighbor)

    def keys(self):
        return list(self._neighbor)

    def values(self):
        return list(self._views)

    def items(self):
        return zip(self._neighbor, self._views)

    def helper_slots(self) -> List[int]:
        """Slots currently simulating a helper (one bytearray scan, no views)."""
        flags = self._has_helper
        return [slot for slot in range(len(flags)) if flags[slot]]

    def nbytes(self) -> int:
        """Approximate column payload size in bytes (the memory-row metric)."""
        pointer_columns = sum(
            1 for _name, _column, kind in _RECORD_COLUMNS if kind == "obj"
        )
        return (
            len(self._neighbor) * (8 * pointer_columns)
            + len(self._alive)
            + len(self._has_helper)
            + self._helper_height.itemsize * len(self._helper_height)
            + self._helper_children.itemsize * len(self._helper_children)
        )


class DictEdgeTable(dict):
    """Seed-style record store: one :class:`EdgeRecord` dataclass per edge.

    The reference twin of :class:`DenseEdgeTable` (selected with
    ``Processor(..., dense_records=False)``): a plain dict subclass, so
    every seed-era access pattern works verbatim, plus the same ``create``
    hook the dense store exposes.
    """

    def create(self, owner: NodeId, neighbor: NodeId) -> EdgeRecord:
        record = EdgeRecord(neighbor=neighbor)
        record.representative = Port(owner, neighbor)
        self[neighbor] = record
        return record


#: Per-(class, kind) handler lookup cache: ``receive`` resolves its
#: ``_on_<kind>`` handler through this table instead of a per-message
#: ``getattr`` string build (the dispatch column of the batched delivery).
_HANDLER_CACHE: Dict[Tuple[type, str], Optional[object]] = {}
_UNRESOLVED = object()


@dataclass
class SpineRole:
    """One processor's position on one affected RT's probe path."""

    rt_index: int
    position: int
    prev_hop: Optional[NodeId] = None
    next_hop: Optional[NodeId] = None
    #: Pieces this processor vouches for on this spine (its local knowledge).
    summaries: Tuple[PieceSummary, ...] = ()
    #: Round by which a probed processor initiates the report wave itself if
    #: nothing arrived from deeper down (lost probe / lost report).
    report_round: int = 0
    probed: bool = False
    probe_forwarded: bool = False
    report_sent: bool = False
    #: Descriptors received from deeper hops, folded into the next report.
    collected: Dict[PieceSummary, None] = field(default_factory=dict)
    #: Pieces the predecessor has acknowledged knowing (recovery gossip):
    #: once everything this hop vouches for is in here, its knowledge has
    #: provably reached the previous hop and its digests go quiet.
    confirmed: Dict[PieceSummary, None] = field(default_factory=dict)


@dataclass
class RepairContext:
    """Everything one processor knows locally about one repair."""

    victim: NodeId
    #: Spine roles, one per affected RT this processor sits on the path of.
    spines: List[SpineRole] = field(default_factory=list)
    #: Helper ports to mark red (a local action once the failure is learnt).
    released: List[Port] = field(default_factory=list)
    #: Link sources destroyed with the broken glue: (key, u, v) triples.
    glue: List[Tuple[Tuple, NodeId, NodeId]] = field(default_factory=list)
    #: Round at which off-spine strip knowledge self-applies (the failure
    #: wave through the broken region is model-level); ``None`` when the
    #: strip is driven by probe receipt only.
    strip_round: Optional[int] = None
    stripped: bool = False

    # --- anchor role ------------------------------------------------------
    is_anchor: bool = False
    bt_parent: Optional[NodeId] = None
    ship_round: Optional[int] = None
    shipped: bool = False
    #: Descriptors gathered at this anchor (own pieces, spine reports, and —
    #: for interior BT_v nodes — children's lists), insertion-ordered.
    gathered: Dict[PieceSummary, None] = field(default_factory=dict)
    #: Gathered pieces the ``BT_v`` parent has acknowledged knowing
    #: (recovery gossip) — the anchor-level twin of ``SpineRole.confirmed``.
    pieces_confirmed: Dict[PieceSummary, None] = field(default_factory=dict)

    # --- leader role ------------------------------------------------------
    is_leader: bool = False
    decide_round: Optional[int] = None
    outcome: Optional[MergeOutcome] = None
    epoch: int = 0
    #: Helper ports ever instructed by this leader during this repair (used
    #: to retract assignments a re-merge superseded).
    instructed: Dict[Port, None] = field(default_factory=dict)
    #: Ports whose record digest matched the current outcome (recovery
    #: gossip); cleared on every re-merge, since a new epoch's instructions
    #: must be re-confirmed.
    confirmed_ports: Dict[Port, None] = field(default_factory=dict)

    # --- byzantine accountability ----------------------------------------
    #: Cross-witness table: the first descriptor seen per piece identity
    #: ``(root_port, root_is_leaf)``, with the message that carried it
    #: (``None`` for pre-failure local knowledge).  Within one repair every
    #: honest descriptor for the same identity is identical (pieces are
    #: disjoint and their content is pre-failure state), so a validly-sealed
    #: newcomer that *contradicts* the witnessed copy proves its author —
    #: the piece's own root processor — lied; the conflicting message pair
    #: is the accusation's evidence.
    witnessed: Dict[Tuple[Port, bool], Tuple[PieceSummary, Optional[Message]]] = field(
        default_factory=dict
    )


class Processor:
    """A network processor: identifier, per-edge records, repair behaviour."""

    #: How many recent messages :attr:`received` retains per processor.
    RECEIVE_TRACE_LIMIT = 128

    def __init__(
        self,
        node_id: NodeId,
        dense_records: bool = True,
        receive_trace_limit: Optional[int] = None,
    ) -> None:
        self.node_id = node_id
        #: One record per ``G'`` edge, keyed by the neighbour's identifier.
        #: Flat struct-of-arrays columns by default (PR 7); the seed-era
        #: dataclass-per-edge layout is the retained reference twin.
        self.edges = DenseEdgeTable() if dense_records else DictEdgeTable()
        #: Transcript depth for this processor (constructor-tunable because
        #: retained traces dominate bytes/node at large n; ``None`` keeps
        #: the class default).
        self.receive_trace_limit = (
            self.RECEIVE_TRACE_LIMIT if receive_trace_limit is None else receive_trace_limit
        )
        #: The most recent messages received, in arrival order (a bounded
        #: trace for tests/debugging — an unbounded log would dominate
        #: memory over long sessions, since every repair and retransmission
        #: lands here).  Totals live in :attr:`received_by_kind`.
        self.received: Deque[Message] = deque(maxlen=self.receive_trace_limit)
        #: Messages received per kind (cheap counters for assertions).
        self.received_by_kind: Dict[str, int] = {}
        #: Back-reference set by :meth:`Network.add_processor`; lets message
        #: handlers update the sourced link set.  ``None`` for standalone
        #: processors (unit tests), where link effects are skipped.
        self.network = None
        #: Active repair contexts, keyed by the deleted node.
        self.repairs: Dict[NodeId, RepairContext] = {}
        #: Newest dissemination epoch seen per repair (stale-message guard).
        self.repair_epochs: Dict[NodeId, int] = {}

    # ------------------------------------------------------------------ #
    # local knowledge
    # ------------------------------------------------------------------ #
    def ensure_edge(self, neighbor: NodeId) -> EdgeRecord:
        """Create (or return) the edge record for the ``G'`` edge to ``neighbor``.

        Mirrors ``Init(v)`` (Algorithm A.2): the representative starts as the
        processor's own port and every other field is empty.
        """
        record = self.edges.get(neighbor)
        if record is None:
            record = self.edges.create(self.node_id, neighbor)
        return record

    def port(self, neighbor: NodeId) -> Port:
        """The port this processor owns for the edge to ``neighbor``."""
        return Port(self.node_id, neighbor)

    def helper_ports(self) -> List[Port]:
        """Ports for which this processor currently simulates a helper node."""
        edges = self.edges
        if isinstance(edges, DenseEdgeTable):
            neighbors = edges._neighbor
            return [Port(self.node_id, neighbors[slot]) for slot in edges.helper_slots()]
        return [Port(self.node_id, nbr) for nbr, rec in edges.items() if rec.has_helper]

    def degree_in_edges(self) -> int:
        """Number of ``G'`` edges this processor participates in."""
        return len(self.edges)

    # ------------------------------------------------------------------ #
    # repair lifecycle
    # ------------------------------------------------------------------ #
    def install_repair(self, context: RepairContext) -> None:
        """Hand the processor its pre-failure knowledge for one repair.

        The processor's own pre-failure knowledge seeds the cross-witness
        table: descriptors it can vouch for locally are the first witnesses
        against any later, contradicting claim about the same pieces.
        """
        self.repairs[context.victim] = context
        for role in context.spines:
            for summary in role.summaries:
                context.witnessed.setdefault(
                    (summary.root_port, summary.root_is_leaf), (summary, None)
                )
        for summary in context.gathered:
            context.witnessed.setdefault(
                (summary.root_port, summary.root_is_leaf), (summary, None)
            )

    def uninstall_repair(self, victim: NodeId) -> None:
        self.repairs.pop(victim, None)
        self.repair_epochs.pop(victim, None)

    def apply_strip(self, context: RepairContext) -> None:
        """Mark red / drop glue from local knowledge (free local work).

        Idempotent: clearing a cleared record and discarding an absent link
        source are no-ops, so a retransmitted probe cannot corrupt state.
        """
        context.stripped = True
        for port in context.released:
            record = self.edges.get(port.neighbor)
            if record is not None and record.has_helper and record.helper_victim != context.victim:
                record.clear_helper()
        if self.network is not None:
            for key, u, v in context.glue:
                self.network.remove_link_source(key, u, v)

    # ------------------------------------------------------------------ #
    # round timers
    # ------------------------------------------------------------------ #
    def tick(self, round_index: int) -> List[Message]:
        """Fire deadline-driven actions for the given round."""
        out: List[Message] = []
        for context in self.repairs.values():
            if (
                not context.stripped
                and context.strip_round is not None
                and round_index >= context.strip_round
            ):
                self.apply_strip(context)
            for role in context.spines:
                if (
                    role.probed
                    and not role.report_sent
                    and round_index >= role.report_round
                    and role.prev_hop is not None
                ):
                    out.extend(self._emit_report(context, role))
            if (
                context.is_anchor
                and not context.shipped
                and context.ship_round is not None
                and round_index >= context.ship_round
                and context.bt_parent is not None
            ):
                context.shipped = True
                out.extend(self._emit_list(context, list(context.gathered)))
            if (
                context.is_leader
                and context.outcome is None
                and context.decide_round is not None
                and round_index >= context.decide_round
            ):
                out.extend(self._decide(context))
        return out

    # ------------------------------------------------------------------ #
    # message handling
    # ------------------------------------------------------------------ #
    def receive(self, message: Message) -> List[Message]:
        """Dispatch an incoming message; returns any response messages.

        Structural messages are integrity-checked first (when the network
        carries an accountability transcript): a stale payload seal or a
        descriptor whose content checksum fails proves the *sender* mutated
        an authored payload — the whole message is discarded undispatched
        (containment: a detected lie influences nothing) and the sender is
        accused and quarantined.  Honest messages are valid by construction,
        so this gate can never fire on delivery faults alone.
        """
        kind = message.kind
        trace = self.received
        if trace.maxlen and len(trace) == trace.maxlen:
            # The trace is full, so appending evicts its oldest entry — the
            # one moment we know nothing else can reach that instance.
            # Recycling here is what makes the pooled steady state
            # allocation-free once every trace deque has warmed up.
            evicted = trace[0]
            trace.append(message)
            network = self.network
            if network is not None:
                network.release(evicted)
        else:
            trace.append(message)
        counts = self.received_by_kind
        counts[kind] = counts.get(kind, 0) + 1
        # Seal gate ordered cheapest-first: ``sealed`` is a per-class flag
        # (False for the unsealed majority — probes, notices, requests), so
        # most messages pay one attribute check here instead of a frozenset
        # lookup plus two network reads.
        if message.sealed and message.sender != self.node_id:
            network = self.network
            if network is not None and network.transcript is not None:
                flaw = self._verify(message)
                if flaw is not None:
                    network.accuse(
                        accused=message.sender,
                        reporter=self.node_id,
                        reason=flaw,
                        evidence=(message,),
                    )
                    return []
        cls = type(self)
        handler = _HANDLER_CACHE.get((cls, kind), _UNRESOLVED)
        if handler is _UNRESOLVED:
            handler = getattr(cls, f"_on_{kind}", None)
            _HANDLER_CACHE[(cls, kind)] = handler
        if handler is not None:
            return handler(self, message) or []
        return []

    @staticmethod
    def _verify(message: Message) -> Optional[str]:
        """Local integrity check of one sealed message; returns the flaw."""
        if not message.seal_valid():
            return "stale-seal"
        for summary in getattr(message, "roots", ()):
            if not summary.checksum_valid():
                return "descriptor-checksum"
        for summary in getattr(message, "pieces", ()):
            if not summary.checksum_valid():
                return "descriptor-checksum"
        for record in getattr(message, "records", ()):
            if not record.checksum_valid():
                return "record-checksum"
        return None

    def receive_packed(self, carrier) -> None:
        """Batched twin of :meth:`receive` for one ``PackedPayloads`` carrier.

        Per-part work identical to the unbatched path — every part lands in
        the receive trace (evicting into the pool when full), byzantine
        deliveries are scored, sealed parts are verified and accused on a
        flaw, and the handler runs per part with its responses sent before
        the next part is verified.  Sending per part (rather than returning
        the collected responses) is a correctness requirement, not a style
        choice: an accusation quarantines the sender immediately, so a
        response addressed back to a liar must leave while the liar still
        exists — exactly when the unbatched delivery loop sends it — or a
        *later* lie in the same stream would turn the send into a
        ``ProtocolError``.  What the batching hoists out of the loop is the
        per-message dispatch overhead: kind counting, handler resolution and
        the seal gate's transcript lookups happen once per carrier, which is
        exactly why folded floods beat the one-object-per-message path.
        """
        network = self.network
        cls = carrier.part_cls
        kind = cls.kind
        count = carrier.count
        counts = self.received_by_kind
        counts[kind] = counts.get(kind, 0) + count
        pcls = type(self)
        handler = _HANDLER_CACHE.get((pcls, kind), _UNRESOLVED)
        if handler is _UNRESOLVED:
            handler = getattr(pcls, f"_on_{kind}", None)
            _HANDLER_CACHE[(pcls, kind)] = handler
        guarded = (
            cls.sealed
            and carrier.sender != self.node_id
            and network.transcript is not None
        )
        note_delivered = network.injection_log.note_delivered
        release = network.release
        # Evictions of this carrier's own kind return straight to its free
        # list (the steady-state common case); mixed-kind or pinned
        # stragglers take the full release() path.
        free = network._pool.setdefault(cls, []) if network.pooled else None
        trace = self.received
        maxlen = trace.maxlen
        if carrier.parts:
            parts = carrier.parts  # stashed lane: the sent instances themselves
        else:
            blank = network.blank
            unpack = carrier.unpack_part
            parts = [unpack(index, blank(cls)) for index in range(count)]
        # Pass 1 — byzantine scoring (only a byzantine schedule can tag
        # parts, so the common case skips the whole pass).
        schedule = network.fault_schedule
        if schedule is not None and schedule.has_byzantine:
            node_id = self.node_id
            for part in parts:
                if part.byz_origin is not None:
                    note_delivered(part.byz_origin, node_id)
        # Pass 2 — the receive trace, with the fullness test hoisted: the
        # deque either has room for the whole carrier (extend) or is full
        # (steady state: every append evicts trace[0] into the pool).
        start = count
        if maxlen is None:
            trace.extend(parts)
        elif len(trace) == maxlen:
            start = 0
        else:
            room = maxlen - len(trace)
            if room >= count:
                trace.extend(parts)
            else:
                trace.extend(parts[:room])  # transition round only
                start = room
        if start < count:
            for index in range(start, count):
                part = parts[index]
                evicted = trace[0]
                trace.append(part)
                if free is not None and type(evicted) is cls:
                    if not evicted.pinned:
                        free.append(evicted)
                else:
                    release(evicted)
        # Pass 3 — verification and the handler, in part order, each part's
        # responses sent before the next part runs (the unbatched loop's
        # receive-then-send cadence, see the docstring).
        send = network.send
        if guarded:
            for part in parts:
                flaw = self._verify(part)
                if flaw is not None:
                    network.accuse(
                        accused=part.sender,
                        reporter=self.node_id,
                        reason=flaw,
                        evidence=(part,),
                    )
                    continue
                if handler is not None:
                    responses = handler(self, part)
                    if responses:
                        for response in responses:
                            send(response)
        elif handler is not None:
            for part in parts:
                responses = handler(self, part)
                if responses:
                    for response in responses:
                        send(response)

    # -- repair-flow helpers -----------------------------------------------
    def _new(self, cls: type, **fields) -> Message:
        """Construct an outgoing message, drawing from the network's pool."""
        network = self.network
        if network is not None:
            return network.new(cls, **fields)
        return cls(**fields)

    def _emit(self, message: Message, out: List[Message]) -> None:
        """Queue a message, applying self-addressed ones locally for free.

        Messages to *crashed* processors are dropped here: in Figure 1's
        model a processor observes its neighbours' failures, so it never
        wastes a send on a peer it knows to be gone (this is what lets the
        recovery protocol survive a participant crashing mid-recovery).  A
        receiver that never existed is not waived — the message goes out and
        :meth:`Network.send` keeps its fail-fast ``ProtocolError``.
        """
        if message.receiver == self.node_id:
            out.extend(self.receive(message))
            return
        network = self.network
        if (
            network is not None
            and not network.has_processor(message.receiver)
            and network.ever_had_processor(message.receiver)
        ):
            network.release(message)
            return
        out.append(message)

    def _peer_alive(self, node: NodeId) -> bool:
        """Liveness of a peer, as the model lets neighbours observe it."""
        return self.network is None or self.network.has_processor(node)

    def _emit_report(self, context: RepairContext, role: SpineRole) -> List[Message]:
        """Send this hop's report wave (own pieces + everything collected)."""
        role.report_sent = True
        payload = list(dict.fromkeys([*role.summaries, *role.collected]))
        out: List[Message] = []
        for chunk in _chunks(payload, MAX_ROOTS_PER_MESSAGE) or [()]:
            self._emit(
                self._new(
                    PrimaryRootReport,
                    sender=self.node_id,
                    receiver=role.prev_hop,
                    deleted=context.victim,
                    roots=tuple(chunk),
                    rt_index=role.rt_index,
                ),
                out,
            )
        return out

    def _emit_list(self, context: RepairContext, summaries: List[PieceSummary]) -> List[Message]:
        """Ship descriptors up the ``BT_v`` tree (chunked)."""
        out: List[Message] = []
        for chunk in _chunks(summaries, MAX_ROOTS_PER_MESSAGE) or [()]:
            self._emit(
                self._new(
                    PrimaryRootList,
                    sender=self.node_id,
                    receiver=context.bt_parent,
                    deleted=context.victim,
                    roots=tuple(chunk),
                ),
                out,
            )
        return out

    def _decide(self, context: RepairContext) -> List[Message]:
        """Leader: merge the gathered descriptors and disseminate the outcome."""
        context.outcome = merge_summaries(context.victim, list(context.gathered))
        return self._disseminate(context)

    def _disseminate(self, context: RepairContext) -> List[Message]:
        """Leader: instruct every owner per the current outcome (one epoch)."""
        outcome = context.outcome
        epoch = context.epoch
        out: List[Message] = []
        current_ports = outcome.helper_ports()
        # Retract helpers instructed under a superseded (partial) outcome.
        for port in list(context.instructed):
            if port not in current_ports:
                self._emit(
                    self._new(
                        HelperAssignment,
                        sender=self.node_id,
                        receiver=port.processor,
                        deleted=context.victim,
                        helper_port=port,
                        create=False,
                        epoch=epoch,
                    ),
                    out,
                )
        for helper in outcome.helpers:
            context.instructed[helper.port] = None
            self._emit(
                self._new(
                    HelperAssignment,
                    sender=self.node_id,
                    receiver=helper.port.processor,
                    deleted=context.victim,
                    helper_port=helper.port,
                    parent_port=helper.parent_port,
                    left_port=helper.left_port,
                    right_port=helper.right_port,
                    create=True,
                    representative_port=helper.representative,
                    height=helper.height,
                    num_leaves=helper.num_leaves,
                    epoch=epoch,
                ),
                out,
            )
        for child_port, child_is_leaf, parent_port in outcome.parent_updates:
            self._emit(
                self._new(
                    ParentUpdate,
                    sender=self.node_id,
                    receiver=child_port.processor,
                    deleted=context.victim,
                    child_port=child_port,
                    parent_port=parent_port,
                    child_is_helper=not child_is_leaf,
                    epoch=epoch,
                ),
                out,
            )
        return out

    def _remerge(self, context: RepairContext) -> List[Message]:
        """Leader: late descriptors arrived after a decision — re-merge."""
        known = set(context.outcome.summaries)
        if known == set(context.gathered):
            return []
        context.epoch += 1
        context.outcome = merge_summaries(context.victim, list(context.gathered))
        # A new epoch's instructions must be confirmed afresh.
        context.confirmed_ports.clear()
        return self._disseminate(context)

    # -- handlers ----------------------------------------------------------
    def _on_InsertionNotice(self, message: InsertionNotice) -> None:
        self.ensure_edge(message.inserted)

    def _on_DeletionNotice(self, message: DeletionNotice) -> None:
        record = self.edges.get(message.deleted)
        if record is not None:
            record.neighbor_alive = False
            record.endpoint = None

    def _on_AnchorLink(self, message) -> None:
        # BT_v formation is topological (the scaffold records the link); the
        # processor only needs to remember it took part, which the message
        # log already does.
        return

    def _on_Probe(self, message: Probe) -> List[Message]:
        context = self.repairs.get(message.deleted)
        if context is None:
            return []
        if not context.stripped:
            self.apply_strip(context)
        out: List[Message] = []
        for role in context.spines:
            if role.rt_index != message.rt_index:
                continue
            role.probed = True
            if role.next_hop is not None and not role.probe_forwarded:
                role.probe_forwarded = True
                self._emit(
                    self._new(
                        Probe,
                        sender=self.node_id,
                        receiver=role.next_hop,
                        deleted=context.victim,
                        hops=message.hops + 1,
                        rt_index=role.rt_index,
                    ),
                    out,
                )
            elif role.next_hop is None and not role.report_sent and role.prev_hop is not None:
                # End of the spine: start the report wave immediately.
                out.extend(self._emit_report(context, role))
        return out

    def _on_PrimaryRootReport(self, message: PrimaryRootReport) -> List[Message]:
        context = self.repairs.get(message.deleted)
        if context is None:
            return []
        return self._fold_pieces(context, message.rt_index, list(message.roots), message)

    def _admit_pieces(
        self,
        context: RepairContext,
        summaries: List[PieceSummary],
        message: Optional[Message],
    ) -> List[PieceSummary]:
        """Cross-witness validation: reject descriptors contradicting a witness.

        Every incoming descriptor (already seal/checksum-clean) is compared
        against the first witnessed copy of the same piece identity.  Honest
        copies are identical — the content is pre-failure state — so a
        contradiction proves the piece's root processor *authored* a lie
        (a validly-sealed forgery); it is accused with the witnessed and
        incoming carrier messages as the evidence pair, and the forged
        descriptor is rejected (first witness wins), containing the lie at
        this hop.
        """
        network = self.network
        if network is None or network.transcript is None:
            for summary in summaries:
                context.witnessed.setdefault(
                    (summary.root_port, summary.root_is_leaf), (summary, message)
                )
            return summaries
        admitted: List[PieceSummary] = []
        for summary in summaries:
            key = (summary.root_port, summary.root_is_leaf)
            prior = context.witnessed.get(key)
            if prior is None:
                if message is not None:
                    # Retained as potential accusation evidence — the pool
                    # must never recycle it out from under the witness table.
                    message.pinned = True
                context.witnessed[key] = (summary, message)
                admitted.append(summary)
            elif prior[0] == summary:
                admitted.append(summary)
            else:
                evidence = tuple(
                    m for m in (prior[1], message) if m is not None
                )
                network.accuse(
                    accused=summary.root_port.processor,
                    reporter=self.node_id,
                    reason="conflicting-descriptor",
                    evidence=evidence,
                )
        return admitted

    def _fold_pieces(
        self,
        context: RepairContext,
        rt_index: Optional[int],
        summaries: List[PieceSummary],
        message: Optional[Message] = None,
    ) -> List[Message]:
        """Fold piece descriptors that arrived on a spine (report or digest).

        At the anchor position (or with no matching spine role) descriptors
        join the gathered set; mid-spine they join the hop's collected set
        and fresh ones are relayed towards the anchor like a late report
        wave.
        """
        summaries = self._admit_pieces(context, summaries, message)
        role = (
            next((r for r in context.spines if r.rt_index == rt_index), None)
            if rt_index is not None
            else None
        )
        if role is None or role.position == 0 or role.prev_hop is None:
            # Anchor position (or no spine role): fold into the gathered set.
            return self._absorb(context, summaries, message, admitted=True)
        fresh = [s for s in summaries if s not in role.collected]
        for summary in fresh:
            role.collected[summary] = None
        if not role.report_sent:
            return self._emit_report(context, role)
        # Late wave: relay the fresh descriptors without re-batching.
        out: List[Message] = []
        for chunk in _chunks(fresh, MAX_ROOTS_PER_MESSAGE):
            self._emit(
                self._new(
                    PrimaryRootReport,
                    sender=self.node_id,
                    receiver=role.prev_hop,
                    deleted=context.victim,
                    roots=tuple(chunk),
                    rt_index=role.rt_index,
                ),
                out,
            )
        return out

    def _on_PrimaryRootList(self, message: PrimaryRootList) -> List[Message]:
        context = self.repairs.get(message.deleted)
        if context is None:
            return []
        return self._absorb(context, list(message.roots), message)

    def _absorb(
        self,
        context: RepairContext,
        summaries: List[PieceSummary],
        message: Optional[Message] = None,
        admitted: bool = False,
    ) -> List[Message]:
        if not admitted:
            summaries = self._admit_pieces(context, summaries, message)
        fresh = [s for s in summaries if s not in context.gathered]
        for summary in fresh:
            context.gathered[summary] = None
        if not fresh:
            return []
        if context.is_leader:
            if context.outcome is not None:
                return self._remerge(context)
            return []
        if context.shipped and context.bt_parent is not None:
            return self._emit_list(context, fresh)
        return []

    def _on_ParentUpdate(self, message: ParentUpdate) -> None:
        port = message.child_port
        if port is None or port.processor != self.node_id:
            return
        if message.deleted is not None:
            newest = self.repair_epochs.get(message.deleted, -1)
            if message.epoch < newest:
                return  # stale instruction from a superseded merge epoch
            self.repair_epochs[message.deleted] = max(newest, message.epoch)
        record = self.ensure_edge(port.neighbor)
        if message.child_is_helper:
            record.helper_parent = message.parent_port
        else:
            record.rt_parent = message.parent_port
            record.endpoint = message.parent_port
            record.neighbor_alive = False

    def _on_HelperAssignment(self, message: HelperAssignment) -> None:
        port = message.helper_port
        if port is None or port.processor != self.node_id:
            return
        victim = message.deleted
        if victim is not None:
            newest = self.repair_epochs.get(victim, -1)
            if message.epoch < newest:
                return  # stale instruction from a superseded merge epoch
            self.repair_epochs[victim] = max(newest, message.epoch)
        record = self.ensure_edge(port.neighbor)
        if not message.create:
            if record.has_helper and (victim is None or record.helper_victim == victim):
                self._drop_helper_links(record, port)
                record.clear_helper()
            return
        if record.has_helper and record.helper_victim != victim:
            # Another repair's helper lives here; a (necessarily partial)
            # merge picked a busy port.  Refuse — the full merge never does.
            return
        if record.has_helper:
            self._drop_helper_links(record, port)
        record.has_helper = True
        record.helper_victim = victim
        record.helper_parent = message.parent_port
        record.helper_left = message.left_port
        record.helper_right = message.right_port
        record.helper_height = message.height
        record.helper_children_count = 2
        record.helper_representative = message.representative_port
        if self.network is not None:
            for child in (message.left_port, message.right_port):
                if child is not None:
                    self.network.add_link_source(
                        link_source_key(port, child), self.node_id, child.processor
                    )

    def _drop_helper_links(self, record: EdgeRecord, port: Port) -> None:
        """Remove the link sources a previously applied assignment created."""
        if self.network is None:
            return
        for child in (record.helper_left, record.helper_right):
            if child is not None:
                self.network.remove_link_source(
                    link_source_key(port, child), self.node_id, child.processor
                )

    # ------------------------------------------------------------------ #
    # anti-entropy recovery (gossip digests)
    # ------------------------------------------------------------------ #
    def recovery_tick(self, victim: NodeId) -> List[Message]:
        """Emit this processor's digests for one gossip sweep of one repair.

        Everything emitted here derives from *local* knowledge only — the
        repair context this processor was handed at repair start (its own
        spine roles, its own gathered pieces, the leader's own outcome) and
        its own Table 1 records.  Three flows per sweep:

        * one spine digest per spine role towards the predecessor (probe
          status + the vouched-for/collected pieces the predecessor has not
          acknowledged yet),
        * one anchor digest up the ``BT_v`` tree (the gathered descriptors
          the parent has not acknowledged yet),
        * the leader pulls :class:`~repro.distributed.messages.PortDigest`
          record summaries for the not-yet-confirmed ports of the owners
          its outcome instructs.

        Receivers acknowledge every digest chunk (see :meth:`_on_Digest`),
        so confirmed knowledge drops out of later sweeps: at the fixed point
        the protocol is *silent* — a sweep emits nothing at all.
        """
        context = self.repairs.get(victim)
        if context is None:
            return []
        out: List[Message] = []
        for role in context.spines:
            if role.prev_hop is None:
                continue
            pending = [
                s
                for s in dict.fromkeys([*role.summaries, *role.collected])
                if s not in role.confirmed
            ]
            if role.probed and not pending:
                continue
            for chunk in _chunks(pending, MAX_ROOTS_PER_MESSAGE) or [()]:
                self._emit(
                    self._new(
                        Digest,
                        sender=self.node_id,
                        receiver=role.prev_hop,
                        deleted=victim,
                        rt_index=role.rt_index,
                        probed=role.probed,
                        stripped=context.stripped,
                        pieces=tuple(chunk),
                    ),
                    out,
                )
        if context.is_anchor and context.bt_parent is not None:
            pending = [s for s in context.gathered if s not in context.pieces_confirmed]
            for chunk in _chunks(pending, MAX_ROOTS_PER_MESSAGE):
                self._emit(
                    self._new(
                        Digest,
                        sender=self.node_id,
                        receiver=context.bt_parent,
                        deleted=victim,
                        stripped=context.stripped,
                        pieces=tuple(chunk),
                    ),
                    out,
                )
        if context.is_leader and context.outcome is not None:
            targets: Dict[NodeId, Dict[Port, None]] = {}
            for port in self._leader_target_ports(context):
                if port not in context.confirmed_ports:
                    targets.setdefault(port.processor, {})[port] = None
            for owner, ports in targets.items():
                for chunk in _chunks(list(ports), MAX_PORTS_PER_REQUEST):
                    self._emit(
                        self._new(
                            DigestRequest,
                            sender=self.node_id,
                            receiver=owner,
                            deleted=victim,
                            ports=tuple(chunk),
                        ),
                        out,
                    )
        network = self.network
        if network is not None:
            schedule = network.fault_schedule
            if (
                schedule is not None
                and schedule.has_byzantine
                and schedule.is_byzantine(self.node_id)
            ):
                out.extend(self._forge_digest(context, schedule))
        return out

    def _forge_digest(self, context: RepairContext, schedule) -> List[Message]:
        """Byzantine-only: author a validly-sealed lie about an *own* piece.

        The strongest lie the model allows — the processor constructs a
        fresh digest whose forged descriptor carries its own valid seal and
        checksum (the liar authored it, so the tags match), claiming a
        different shape for a piece the processor itself roots.  The target
        is chosen among pieces the receiver has already acknowledged
        (``confirmed``), so the receiver provably witnessed the true copy:
        the forgery is guaranteed to contradict a witness on delivery and
        the accusation lands on the right processor — exactly the
        cross-witness guarantee the ``byzantine_containment`` gate checks.
        """
        policy = schedule.policy_for_processor(self.node_id)
        if not schedule.byz_roll(policy.forge):
            return []
        candidates: List[Tuple[NodeId, Optional[int], PieceSummary]] = []
        for role in context.spines:
            if role.prev_hop is None:
                continue
            for summary in role.summaries:
                if summary in role.confirmed and summary.root_port.processor == self.node_id:
                    candidates.append((role.prev_hop, role.rt_index, summary))
        if context.is_anchor and context.bt_parent is not None:
            for summary in context.gathered:
                if (
                    summary in context.pieces_confirmed
                    and summary.root_port.processor == self.node_id
                ):
                    candidates.append((context.bt_parent, None, summary))
        if not candidates:
            return []
        receiver, rt_index, original = candidates[
            int(schedule._byz_rng.integers(len(candidates)))
        ]
        # ``replace`` re-runs ``__post_init__``: the forged descriptor gets a
        # *valid* checksum over the lie, and the fresh message a valid seal.
        forged = dataclasses.replace(original, num_leaves=original.num_leaves + 1)
        message = self._new(
            Digest,
            sender=self.node_id,
            receiver=receiver,
            deleted=context.victim,
            rt_index=rt_index,
            probed=True,
            stripped=True,
            pieces=(forged,),
        )
        message.byz_origin = self.node_id  # oracle-side provenance tag
        out: List[Message] = []
        self._emit(message, out)
        return out

    @staticmethod
    def _leader_target_ports(context: RepairContext) -> List[Port]:
        """Every port the leader's own outcome obliges it to confirm."""
        ports: Dict[Port, None] = {}
        for helper in context.outcome.helpers:
            ports[helper.port] = None
        for child_port, _child_is_leaf, _parent in context.outcome.parent_updates:
            ports[child_port] = None
        for port in context.instructed:
            ports[port] = None
        return list(ports)

    def recovery_satisfied(self, victim: NodeId) -> bool:
        """True when this processor's recovery obligations are all confirmed.

        Computed from local state only: probe seen on every spine role,
        strip applied, every vouched-for piece acknowledged by the previous
        hop, every gathered piece acknowledged by the ``BT_v`` parent, and —
        for the leader — a record digest confirming every instructed port.
        Obligations towards crashed peers are waived (their knowledge died
        with them; Figure 1's model lets neighbours observe the crash).
        """
        context = self.repairs.get(victim)
        if context is None:
            return True
        if not context.stripped and (context.released or context.glue):
            # The strip arrives as a Probe resent by a live spine
            # predecessor reading this hop's digest; with every predecessor
            # dead (crashed or quarantined) it can never arrive — waived
            # like the per-role obligations below.
            if any(
                role.prev_hop is not None and self._peer_alive(role.prev_hop)
                for role in context.spines
            ):
                return False
        for role in context.spines:
            if role.prev_hop is None or not self._peer_alive(role.prev_hop):
                continue
            if not role.probed:
                return False
            if any(
                s not in role.confirmed for s in (*role.summaries, *role.collected)
            ):
                return False
        if (
            context.is_anchor
            and context.bt_parent is not None
            and self._peer_alive(context.bt_parent)
            and any(s not in context.pieces_confirmed for s in context.gathered)
        ):
            return False
        if context.is_leader:
            if context.outcome is None:
                return False
            if set(context.outcome.summaries) != set(context.gathered):
                return False
            for port in self._leader_target_ports(context):
                if port not in context.confirmed_ports and self._peer_alive(
                    port.processor
                ):
                    return False
        return True

    def _on_Digest(self, message: Digest) -> List[Message]:
        out: List[Message] = []
        context = self.repairs.get(message.deleted)
        if message.records:
            if context is not None and context.is_leader and context.outcome is not None:
                out.extend(self._diff_record_digests(context, message.records))
            return out
        if context is None:
            return out
        if message.ack:
            # The receiver of one of our digests echoed the chunk back:
            # that knowledge has provably arrived — stop re-offering it.
            if message.rt_index is not None:
                role = next(
                    (
                        r
                        for r in context.spines
                        if r.rt_index == message.rt_index and r.prev_hop == message.sender
                    ),
                    None,
                )
                if role is not None:
                    for summary in message.pieces:
                        role.confirmed[summary] = None
            elif message.sender == context.bt_parent:
                for summary in message.pieces:
                    context.pieces_confirmed[summary] = None
            return out
        if message.rt_index is not None and not (message.probed and message.stripped):
            role = next(
                (r for r in context.spines if r.rt_index == message.rt_index), None
            )
            if role is not None and role.next_hop == message.sender:
                # The successor never saw the probe (or saw it without its
                # strip applying) — resending it is this hop's local duty
                # (the original travelled through here too), and probe
                # receipt is idempotent: it strips and nothing else twice.
                self._emit(
                    self._new(
                        Probe,
                        sender=self.node_id,
                        receiver=message.sender,
                        deleted=context.victim,
                        hops=role.position + 1,
                        rt_index=message.rt_index,
                    ),
                    out,
                )
        if message.pieces:
            out.extend(
                self._fold_pieces(context, message.rt_index, list(message.pieces), message)
            )
        if message.pieces or message.rt_index is not None:
            # Acknowledge the chunk so the sender's future digests shrink;
            # an unprobed empty digest is acked too (the resent probe may
            # yet be lost — the ack only confirms the *pieces* arrived).
            self._emit(
                self._new(
                    Digest,
                    sender=self.node_id,
                    receiver=message.sender,
                    deleted=message.deleted,
                    rt_index=message.rt_index,
                    ack=True,
                    pieces=message.pieces,
                ),
                out,
            )
        return out

    def _on_DigestRequest(self, message: DigestRequest) -> List[Message]:
        # One reply per request: the leader already chunks its requests at
        # MAX_PORTS_PER_REQUEST, so the answering record set fits one digest.
        entries = [
            self._port_digest(port, message.deleted)
            for port in message.ports
            if port.processor == self.node_id
        ]
        out: List[Message] = []
        if entries:
            self._emit(
                self._new(
                    Digest,
                    sender=self.node_id,
                    receiver=message.sender,
                    deleted=message.deleted,
                    records=tuple(entries),
                ),
                out,
            )
        return out

    def _port_digest(self, port: Port, victim: NodeId) -> PortDigest:
        """Summarize one of this processor's own Table 1 records for a digest."""
        record = self.edges.get(port.neighbor)
        if record is None:
            return PortDigest(port=port, links_ok=False)
        helper_for_victim = record.has_helper and record.helper_victim == victim
        links_ok = True
        if helper_for_victim and self.network is not None:
            for child in (record.helper_left, record.helper_right):
                if (
                    child is not None
                    and child.processor != self.node_id
                    # A link to a crashed (or quarantined) endpoint can never
                    # be re-established; waive it like recovery_satisfied
                    # waives dead peers, or the leader resends forever.
                    and self._peer_alive(child.processor)
                    and not self.network.has_link_source(
                        link_source_key(port, child), self.node_id, child.processor
                    )
                ):
                    links_ok = False
        busy_with = None
        if record.has_helper and record.helper_victim != victim:
            # Foreign helper on the requested port.  Only report it busy
            # when this repair can no longer release it — the strip already
            # ran (releases applied, helper survived) or the strip will
            # never touch this port.  While its release is still pending
            # the busy state is transient and the leader must keep
            # re-instructing, or a slow strip under delivery faults would
            # wrongly waive a helper of the *full* merge outcome.
            context = self.repairs.get(victim)
            pending_release = (
                context is not None
                and not context.stripped
                and port in context.released
            )
            if not pending_release:
                busy_with = record.helper_victim
        return PortDigest(
            port=port,
            helper_for_victim=helper_for_victim,
            helper_left=record.helper_left,
            helper_right=record.helper_right,
            helper_parent=record.helper_parent,
            rt_parent=record.rt_parent,
            links_ok=links_ok,
            busy_with=busy_with,
        )

    def _diff_record_digests(
        self, context: RepairContext, records: Tuple[PortDigest, ...]
    ) -> List[Message]:
        """Leader: diff pulled record digests against the current outcome.

        Retransmits exactly what a digest shows missing or stale: an
        assignment whose pointers (or link sources) diverge is re-sent under
        the current epoch, a helper a re-merge superseded is retracted, and
        a parent pointer that never applied gets its update again.  A port
        whose record matches the outcome on every count joins
        ``confirmed_ports`` and drops out of future pulls.
        """
        outcome = context.outcome
        epoch = context.epoch
        victim = context.victim
        out: List[Message] = []
        helpers_by_port = {helper.port: helper for helper in outcome.helpers}
        parents_by_child = {
            (child, child_is_leaf): parent
            for child, child_is_leaf, parent in outcome.parent_updates
        }
        for record in records:
            port_ok = True
            helper = helpers_by_port.get(record.port)
            helper_waived = helper is not None and record.busy_with is not None
            if helper_waived:
                # The port already simulates a helper for *another* repair;
                # its owner refuses the assignment (see _on_HelperAssignment)
                # and no retransmission can change that.  Only a partial
                # merge picks a busy port — pieces permanently missing
                # because their vouchers crashed or were quarantined — so
                # waive the instruction like the other dead-peer
                # obligations: re-instructing would livelock the recovery,
                # and a re-merge re-checks every port from scratch.
                helper = None
            if helper is not None:
                applied = (
                    record.helper_for_victim
                    and record.helper_left == helper.left_port
                    and record.helper_right == helper.right_port
                    and record.helper_parent == helper.parent_port
                    and record.links_ok
                )
                if not applied:
                    port_ok = False
                    context.instructed[helper.port] = None
                    self._emit(
                        self._new(
                            HelperAssignment,
                            sender=self.node_id,
                            receiver=record.port.processor,
                            deleted=victim,
                            helper_port=helper.port,
                            parent_port=helper.parent_port,
                            left_port=helper.left_port,
                            right_port=helper.right_port,
                            create=True,
                            representative_port=helper.representative,
                            height=helper.height,
                            num_leaves=helper.num_leaves,
                            epoch=epoch,
                        ),
                        out,
                    )
            elif record.helper_for_victim and record.port in context.instructed:
                # Applied under a superseded (partial) outcome: retract it.
                port_ok = False
                self._emit(
                    self._new(
                        HelperAssignment,
                        sender=self.node_id,
                        receiver=record.port.processor,
                        deleted=victim,
                        helper_port=record.port,
                        create=False,
                        epoch=epoch,
                    ),
                    out,
                )
            for child_is_leaf in (True, False):
                parent = parents_by_child.get((record.port, child_is_leaf))
                if parent is None:
                    continue
                if not child_is_leaf and helper_waived:
                    # The helper this update would re-parent was waived
                    # above; sending it would clobber the foreign helper's
                    # parent pointer instead.  (A helper-side update *not*
                    # paired with a waived helper targets the foreign
                    # helper itself as a re-parented piece root — that one
                    # still flows.)
                    continue
                actual = record.rt_parent if child_is_leaf else record.helper_parent
                if actual != parent:
                    port_ok = False
                    self._emit(
                        self._new(
                            ParentUpdate,
                            sender=self.node_id,
                            receiver=record.port.processor,
                            deleted=victim,
                            child_port=record.port,
                            parent_port=parent,
                            child_is_helper=not child_is_leaf,
                            epoch=epoch,
                        ),
                        out,
                    )
            if port_ok:
                context.confirmed_ports[record.port] = None
            else:
                context.confirmed_ports.pop(record.port, None)
        return out

    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Processor({self.node_id!r}, edges={len(self.edges)})"


def _chunks(items: List, size: int) -> List[List]:
    return [items[i : i + size] for i in range(0, len(items), size)]
