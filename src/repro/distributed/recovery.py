"""Message-native anti-entropy recovery: gossip digests instead of a global audit.

Until PR 5 the *repair* was message-native but the *recovery* was not:
:meth:`DistributedForgivingGraph.reconverge` audited every participant
against the full :class:`~repro.distributed.protocol.RepairPlan` and the
leader's outcome — knowledge no single processor of the paper's model
possesses.  This module replaces that god's-eye audit with the protocol
shape of self-stabilizing *silent* algorithms (Devismes–Masuzawa–Tixeuil):
periodic compact state digests whose communication cost is bounded and
separately accountable.

One **gossip sweep** works like this (all of it local knowledge plus
messages delivered through :meth:`Network.deliver_round`, so injected
faults hit the recovery traffic exactly like they hit the repair's):

1. every repair participant derives digests from its *own* context and
   Table 1 records (:meth:`Processor.recovery_tick`) and pushes them along
   its spine/anchor links — probe status and vouched-for pieces to the
   spine predecessor, gathered descriptors up ``BT_v``;
2. the merge leader pulls :class:`~repro.distributed.messages.PortDigest`
   record summaries from the owners its own outcome instructs
   (:class:`~repro.distributed.messages.DigestRequest`);
3. each processor retransmits *only* what its neighbours' digests show
   missing: a predecessor resends the probe an unprobed successor reveals,
   the leader re-merges and re-disseminates under a higher epoch when
   digests surface unreported pieces, and re-instructs owners whose record
   digests diverge from its outcome.

A sweep that produces **no retransmission traffic** (only digests flowed)
is the silent fixed point: every piece the participants vouch for reached
the leader, every instruction of the leader's outcome is applied.  The
driver, :func:`run_recovery`, repeats sweeps until that fixed point or
until its round budget runs out — in which case it reports
``converged=False`` together with the number of messages still in flight
(and discards them *loudly*, so stale recovery traffic can never leak into
the next repair).

Cost accounting mirrors the repair's: the whole recovery runs inside its
own :class:`~repro.distributed.metrics.MetricsWindow`, and the resulting
:class:`~repro.distributed.metrics.RecoveryCostReport` splits detection
cost (digest messages/bits — paid even when nothing was lost) from fault
cost (retransmissions), each checked against Lemma-4-style per-sweep
budgets.

The plan-based audit this module replaces survives as
:meth:`DistributedForgivingGraph._audit_reference` — an oracle used only by
``verify_consistency``-style checks; the perf report's
``message_native_recovery`` gate runs with the plan's global knowledge
*poisoned* to prove the recovery path never reads it.

Two byzantine-era notes (PR 6).  Recovery traffic passes through the same
``receive()``-time verification as repair traffic, so a liar that keeps
lying during recovery is caught and quarantined mid-sweep; the fixed-point
predicate (:meth:`Processor.recovery_satisfied`) waives every obligation
towards crashed *or quarantined* peers, so convergence is reached around
them.  And budget exhaustion stays loud: the in-flight messages discarded
by :meth:`Network.drop_in_flight` are counted into the metrics window's
``dropped`` tally (and therefore into the reports), never silently thrown
away.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from ..core.ports import NodeId
from .metrics import DIGEST_KINDS, MetricsWindow, RecoveryCostReport
from .network import Network

__all__ = ["BackgroundRecovery", "run_recovery"]


def _non_digest_messages(window: MetricsWindow) -> int:
    """Retransmission traffic recorded so far: everything that is not a digest."""
    return window.messages - window.count_for_kinds(DIGEST_KINDS)


class BackgroundRecovery:
    """Piggybacked anti-entropy for one repair inside a *shared* round loop.

    :func:`run_recovery` is a standalone post-hoc phase: it owns the round
    loop, sweeps, drains, and returns.  The concurrent batch driver
    (``DistributedForgivingGraph.delete_batch``) cannot hand any single
    repair the loop — several repairs interleave in the same
    ``Network.deliver_round`` stream — so this class is the same gossip
    protocol re-cut as a per-repair state machine the driver polls once per
    shared round.  Digest chunks ride the live fabric alongside other
    epochs' probes and reports (byzantine lies and delivery faults hit the
    mixed traffic), and each instance paces itself off its *own* epoch's
    quiescence: a sweep is emitted only when ``in_flight_for(victim)`` is
    zero, so acknowledgements from the previous chunked exchange have
    landed before the residue is re-offered.

    The silent-protocol property is made explicit: the first sweep emitted
    *after* every live participant's ``recovery_satisfied`` predicate holds
    is the **fixed-point probe**, and its emission count is recorded as
    ``fixed_point_messages``.  On the lossless path the probe provably
    emits nothing (every obligation a predicate waives or confirms is
    exactly what ``recovery_tick`` would re-offer), which the
    ``concurrent_repairs`` perf gate asserts as ``== 0``.
    """

    #: Consecutive quiet-but-unsatisfied polls tolerated before giving up
    #: loudly (cannot happen for live participants — an unsatisfied
    #: obligation towards a live peer always re-offers — but a guard beats
    #: an infinite loop if that invariant ever breaks).
    MAX_STALLS = 3

    def __init__(
        self,
        network: Network,
        *,
        victim: NodeId,
        participants: Sequence[NodeId],
        degree: int,
        n_ever: int,
        deadline: int,
        max_sweeps: int = 40,
        on_start: Optional[Callable[[], None]] = None,
    ) -> None:
        self.network = network
        self.victim = victim
        self.participants = list(participants)
        self.degree = degree
        self.n_ever = n_ever
        #: The repair's ``plan.max_deadline``: anti-entropy stays quiet
        #: until the repair-phase timers have all had their chance to fire.
        self.deadline = deadline
        self.max_sweeps = max_sweeps
        #: Invoked once, just before the first sweep's sends — the batch
        #: driver uses it to roll the victim's epoch window over from
        #: repair attribution to recovery attribution.
        self.on_start = on_start
        self.started = False
        self.start_round = 0
        self.end_round = 0
        self.sweeps = 0
        self.stalls = 0
        self.fixed_point_messages = -1
        self.converged = False
        self.finished = False

    def finish(self, shared_round: int) -> None:
        """Stop the machine (converged or not) at ``shared_round``."""
        self.end_round = shared_round
        self.finished = True

    def step(self, shared_round: int) -> int:
        """Poll once at ``shared_round``; returns how many messages were sent.

        A no-op while the repair phase is still inside its deadline or while
        this epoch's own traffic is in flight; otherwise emits one gossip
        sweep (every live participant's ``recovery_tick`` residue).
        """
        if self.finished or shared_round < self.deadline:
            return 0
        if self.network.in_flight_for(self.victim):
            return 0
        if not self.started:
            self.started = True
            self.start_round = shared_round
            if self.on_start is not None:
                self.on_start()
        satisfied = all(
            self.network.processors[node].recovery_satisfied(self.victim)
            for node in self.participants
            if node in self.network.processors
        )
        emitted = 0
        for node in self.participants:
            processor = self.network.processors.get(node)
            if processor is None:
                continue  # crashed or quarantined; its knowledge died with it
            for message in processor.recovery_tick(self.victim):
                self.network.send(message)
                emitted += 1
        if satisfied:
            if self.fixed_point_messages < 0:
                self.fixed_point_messages = emitted
            if emitted == 0:
                self.converged = True
                self.finish(shared_round)
                return 0
        if emitted:
            self.stalls = 0
            self.sweeps += 1
            if self.sweeps >= self.max_sweeps:
                self.finish(shared_round)
        else:
            self.stalls += 1
            if self.stalls >= self.MAX_STALLS:
                self.finish(shared_round)
        return emitted

    def report(self, window: MetricsWindow, leftover: int = 0) -> RecoveryCostReport:
        """Build this epoch's ledger from its closed recovery window.

        ``leftover`` is this epoch's in-flight count at the moment the
        driver gave up (measured *before* the loud discard, which is global
        across the wave).
        """
        return RecoveryCostReport(
            victim=self.victim,
            degree=self.degree,
            n_ever=self.n_ever,
            converged=self.converged,
            sweeps=self.sweeps,
            rounds=max(self.end_round - self.start_round, 0) if self.started else 0,
            digest_messages=window.count_for_kinds(DIGEST_KINDS),
            digest_bits=window.bits_for_kinds(DIGEST_KINDS),
            max_message_bits=window.max_message_bits,
            retransmissions=_non_digest_messages(window),
            retransmission_bits=window.bits - window.bits_for_kinds(DIGEST_KINDS),
            dropped=window.dropped,
            in_flight_leftover=leftover,
            fixed_point_messages=self.fixed_point_messages,
        )


def run_recovery(
    network: Network,
    *,
    victim: NodeId,
    participants: Sequence[NodeId],
    degree: int,
    n_ever: int,
    leader: Optional[NodeId] = None,
    max_rounds: int = 600,
    max_sweeps: int = 40,
) -> RecoveryCostReport:
    """Drive gossip sweeps for one repair until the silent fixed point.

    The driver is deliberately thin: it only fires the participants'
    recovery timers (``recovery_tick`` — the synchronous model's "everyone
    knows the round number") and delivers rounds; every detection and every
    retransmission decision is made by a processor from its own context and
    the digests that physically reached it.  ``leader`` is accepted for
    symmetry with the plan but not consulted — the leader acts because its
    own context says it is the leader.

    Termination: the protocol is *silent* in the self-stabilizing sense —
    digests are acknowledged chunk by chunk, confirmed knowledge drops out
    of later sweeps, and at the fixed point a sweep emits nothing at all.
    The driver stops once every live participant reports
    :meth:`Processor.recovery_satisfied` — a predicate each processor
    computes from its own context and the acknowledgements that physically
    reached it (a dropped digest simply stays unconfirmed and is re-offered
    next sweep, so lost *detection* traffic can never fake convergence).
    With any fault probability below one every chunk is eventually
    delivered and acknowledged, so convergence is almost sure;
    ``max_sweeps`` / ``max_rounds`` bound the pathological tail, and
    hitting them is reported (``converged=False`` plus the leftover
    in-flight count) rather than silently swallowed.
    """
    network.metrics.begin_window()
    network.begin_scaffold()
    converged = False
    sweeps = 0
    rounds = 0
    leftover = 0
    try:
        while sweeps < max_sweeps and rounds < max_rounds:
            sweeps += 1
            for node in participants:
                processor = network.processors.get(node)
                if processor is None:
                    continue  # crashed mid-recovery; its knowledge died with it
                for message in processor.recovery_tick(victim):
                    network.send(message)
            while network.in_flight and rounds < max_rounds:
                network.deliver_round()
                rounds += 1
            if network.in_flight:
                break  # round budget hit mid-delivery; reported below
            if all(
                network.processors[node].recovery_satisfied(victim)
                for node in participants
                if node in network.processors
            ):
                # Every live participant's obligations are acknowledged:
                # the next sweep would be empty — the protocol is silent.
                converged = True
                break
    finally:
        # Cleanup must run on the exception path too: the satellite fix for
        # the old reconverge() — traffic still in flight at the budget's
        # edge (or when a handler raised) is counted into the report and
        # discarded explicitly, because delivering it during a *later*
        # repair could apply stale instructions; and the metrics window
        # must never be left open for the next repair to inherit.
        network.end_scaffold()
        if not converged:
            leftover = network.drop_in_flight()
        window = network.metrics.end_window()
    return RecoveryCostReport(
        victim=victim,
        degree=degree,
        n_ever=n_ever,
        converged=converged,
        sweeps=sweeps,
        rounds=rounds,
        digest_messages=window.count_for_kinds(DIGEST_KINDS),
        digest_bits=window.bits_for_kinds(DIGEST_KINDS),
        max_message_bits=window.max_message_bits,
        retransmissions=_non_digest_messages(window),
        retransmission_bits=window.bits - window.bits_for_kinds(DIGEST_KINDS),
        dropped=window.dropped,
        in_flight_leftover=leftover,
    )
