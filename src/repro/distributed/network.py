"""Synchronous round-based message-passing network.

This is the substrate replacing the paper's physical peer-to-peer network
(documented substitution in DESIGN.md): processors are Python objects, links
are entries of an adjacency structure, and time advances in synchronous
rounds — every message sent in round ``r`` is delivered at the start of round
``r + 1``, matching the paper's cost model where a message takes at most one
time unit to traverse an edge and local computation is free.

Topology lives in a **dense-int hot core** (PR 7): node identifiers are
interned to a contiguous id space at the boundary
(:class:`repro.core.ports.Interner`), and everything inside speaks small
ints — the adjacency is a flat list of int-sets indexed by dense id, link
sources are keyed by one packed integer per link (``lo << 32 | hi``)
instead of a per-lookup ``frozenset`` allocation, and scaffolding tracks
packed keys too.  The seed-era object-dict layout (adjacency dict keyed by
raw identifiers, frozenset-keyed link sources) is retained verbatim as
:class:`_DictTopology` — the reference twin selected with ``dense=False``
that the churn-equivalence tests and the ``large_n`` benchmark compare
against.  Both cores are O(1) for :meth:`Network.connect` /
:meth:`Network.disconnect` / :meth:`Network.are_linked` and O(deg) for
neighbour iteration and :meth:`Network.remove_processor` — no operation on
the repair path ever scans the full link set.  The network enforces that
messages only travel along existing links (or repair scaffolding, see
below), and keeps the per-node and global counters that Lemma 4 bounds;
:meth:`Network.begin_repair` / :meth:`Network.end_repair` bracket one repair
with a :class:`~repro.distributed.metrics.MetricsWindow` so its cost report
is assembled from O(repair) state instead of full counter snapshots.

Two layers sit on top of the raw adjacency since the merge went
message-native (PR 4):

*Sourced links.*  A healed-graph link exists because one or more *sources*
project onto it: the surviving real edge, and any number of RT virtual
edges between the same two processors.  :meth:`add_link_source` /
:meth:`remove_link_source` maintain one set of source keys per link —
the distributed twin of the engine's edge-multiplicity counting — and the
link itself appears/disappears as its source set becomes (non-)empty.
Source updates are driven by received protocol messages (helper
assignments) and local strip knowledge, *not* by the reference engine.
Keyed sets (instead of bare counters) make the bookkeeping idempotent, so
retransmitted messages cannot corrupt the topology.

*Scaffolding.*  A repair creates temporary links for its own traffic (the
``BT_v`` tree, probe hops, merge wiring).  While a scaffold is open
(:meth:`begin_scaffold`), :meth:`send` auto-creates missing links and
records them; :meth:`end_scaffold` drops every recorded link that did not
acquire a source in the meantime — "delete the edges E_v" of Algorithm A.3,
decided from the network's own source sets rather than an engine probe.

Faults: an optional :class:`~repro.distributed.faults.FaultSchedule` is
consulted at delivery time — messages can be dropped, delayed whole rounds,
or delivered in shuffled order.  Sending is always accounted (the sender
paid for the message); what faults change is whether and when the receiver
learns anything.

Byzantine accountability (PR 6): the schedule's byzantine axis corrupts a
lying sender's payloads as they enter :meth:`send` (per copy — equivocation
for free), tagging each lie's oracle-side origin so the
:class:`~repro.distributed.accountability.InjectionLog` can score detection.
Receivers verify seals/checksums in :meth:`Processor.receive` and call
:meth:`Network.accuse`, which appends the evidence to the
:class:`~repro.distributed.accountability.AccountabilityTranscript` and
quarantines the accused — its processor and links are removed exactly like
a crashed node, so the existing recovery machinery (dead-peer waivers,
digest retransmission) heals around it.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from ..core.errors import ProtocolError, UnknownNodeError
from ..core.ports import Interner, NodeId, NodeKey
from .accountability import AccountabilityTranscript, InjectionLog
from .faults import FaultSchedule
from .messages import Message, PackedPayloads
from .metrics import MetricsWindow, NetworkMetrics
from .processor import Processor

__all__ = ["Network"]

#: Packed undirected-link key: with ids interned densely, one Python int
#: ``lo << 32 | hi`` names a link — no frozenset allocation per lookup.
#: 32 bits per endpoint bounds the core at ~4e9 nodes ever, far beyond the
#: million-node target.
_PACK = 32


class _DenseTopology:
    """Flat-array topology keyed by interned dense ids (the fast core).

    The interner assigns each identifier a contiguous int id on first
    sight; ids are never reused (removed processors keep theirs, matching
    ``n_ever``).  The adjacency is a list of int-sets indexed by dense id,
    link sources a dict keyed by the packed link int.  All methods take raw
    identifiers — interning happens here, at the boundary, so the
    :class:`Network` surface stays identifier-typed.
    """

    __slots__ = ("interner", "adj", "sources", "scaffold_links")

    def __init__(self) -> None:
        self.interner = Interner()
        #: Dense id -> set of linked dense ids (empty set for dead ids).
        self.adj: List[Set[int]] = []
        #: Packed link int -> set of source keys.
        self.sources: Dict[int, Set[Tuple]] = {}
        #: Packed link ints of the currently open repair scaffold.
        self.scaffold_links: Set[int] = set()

    # -- node lifecycle ----------------------------------------------------
    def ensure_node(self, node: NodeId) -> int:
        dense = self.interner.intern(node)
        if dense == len(self.adj):
            self.adj.append(set())
        return dense

    def drop_node(self, node: NodeId) -> None:
        dense = self.interner.get_id(node)
        if dense is None:
            return
        adj = self.adj
        neighbors = adj[dense]
        adj[dense] = set()
        for other in neighbors:
            adj[other].discard(dense)
            self.sources.pop(self._pack(dense, other), None)

    # -- links -------------------------------------------------------------
    @staticmethod
    def _pack(a: int, b: int) -> int:
        return (a << _PACK | b) if a < b else (b << _PACK | a)

    def connect(self, u: NodeId, v: NodeId) -> None:
        iu = self.interner.id_of(u)
        iv = self.interner.id_of(v)
        self.adj[iu].add(iv)
        self.adj[iv].add(iu)

    def disconnect(self, u: NodeId, v: NodeId) -> None:
        iu = self.interner.get_id(u)
        iv = self.interner.get_id(v)
        if iu is None or iv is None:
            return
        self.adj[iu].discard(iv)
        self.adj[iv].discard(iu)
        self.sources.pop(self._pack(iu, iv), None)

    def are_linked(self, u: NodeId, v: NodeId) -> bool:
        iu = self.interner.get_id(u)
        iv = self.interner.get_id(v)
        return iu is not None and iv is not None and iv in self.adj[iu]

    def neighbors_iter(self, node: NodeId) -> Iterator[NodeId]:
        dense = self.interner.get_id(node)
        if dense is None:
            return iter(())
        node_of = self.interner.node_of
        return (node_of(other) for other in self.adj[dense])

    def links_iter(self) -> Iterator[Tuple[NodeId, NodeId]]:
        node_of = self.interner.node_of
        for dense, neighbors in enumerate(self.adj):
            for other in neighbors:
                if other > dense:
                    yield (node_of(dense), node_of(other))

    def num_links(self) -> int:
        return sum(len(neighbors) for neighbors in self.adj) // 2

    # -- sourced links -----------------------------------------------------
    def add_source(self, key: Tuple, u: NodeId, v: NodeId) -> None:
        iu = self.interner.id_of(u)
        iv = self.interner.id_of(v)
        link = self._pack(iu, iv)
        sources = self.sources.get(link)
        if sources is None:
            sources = self.sources[link] = set()
        sources.add(key)
        self.adj[iu].add(iv)
        self.adj[iv].add(iu)

    def remove_source(self, key: Tuple, u: NodeId, v: NodeId) -> None:
        iu = self.interner.get_id(u)
        iv = self.interner.get_id(v)
        if iu is None or iv is None:
            return
        link = self._pack(iu, iv)
        sources = self.sources.get(link)
        if sources is None:
            return
        sources.discard(key)
        if not sources:
            del self.sources[link]
            if link not in self.scaffold_links:
                self.adj[iu].discard(iv)
                self.adj[iv].discard(iu)

    def has_source(self, key: Tuple, u: NodeId, v: NodeId) -> bool:
        iu = self.interner.get_id(u)
        iv = self.interner.get_id(v)
        if iu is None or iv is None:
            return False
        return key in self.sources.get(self._pack(iu, iv), ())

    def source_count(self, u: NodeId, v: NodeId) -> int:
        iu = self.interner.get_id(u)
        iv = self.interner.get_id(v)
        if iu is None or iv is None:
            return 0
        return len(self.sources.get(self._pack(iu, iv), ()))

    def has_any_source(self, u: NodeId, v: NodeId) -> bool:
        iu = self.interner.get_id(u)
        iv = self.interner.get_id(v)
        if iu is None or iv is None:
            return False
        return self._pack(iu, iv) in self.sources

    def replace_sources(self, expected: Dict[frozenset, Set[Tuple]]) -> None:
        id_of = self.interner.id_of
        self.sources = {
            self._pack(*(id_of(node) for node in link)): set(keys)
            for link, keys in expected.items()
        }

    def sources_view(self) -> Dict[frozenset, Set[Tuple]]:
        node_of = self.interner.node_of
        mask = (1 << _PACK) - 1
        return {
            frozenset((node_of(link >> _PACK), node_of(link & mask))): set(keys)
            for link, keys in self.sources.items()
        }

    # -- scaffolding -------------------------------------------------------
    def scaffold_add(self, u: NodeId, v: NodeId) -> None:
        self.scaffold_links.add(self._pack(self.interner.id_of(u), self.interner.id_of(v)))

    def scaffold_clear(self) -> None:
        self.scaffold_links = set()


class _DictTopology:
    """The seed-era object-dict topology, retained as the reference twin.

    Adjacency keyed by raw identifiers, link sources by ``frozenset`` pairs
    — exactly the pre-dense layout, selected with ``Network(dense=False)``
    so the churn-equivalence tests and the ``large_n`` benchmark can pin
    the dense core against it bit for bit.
    """

    __slots__ = ("adjacency", "sources", "scaffold_links")

    def __init__(self) -> None:
        self.adjacency: Dict[NodeId, Set[NodeId]] = {}
        self.sources: Dict[frozenset, Set[Tuple]] = {}
        self.scaffold_links: Set[frozenset] = set()

    @property
    def interner(self) -> None:
        return None

    # -- node lifecycle ----------------------------------------------------
    def ensure_node(self, node: NodeId) -> None:
        self.adjacency.setdefault(node, set())

    def drop_node(self, node: NodeId) -> None:
        for neighbor in self.adjacency.pop(node, ()):
            self.adjacency[neighbor].discard(node)
            self.sources.pop(frozenset((node, neighbor)), None)

    # -- links -------------------------------------------------------------
    def connect(self, u: NodeId, v: NodeId) -> None:
        self.adjacency[u].add(v)
        self.adjacency[v].add(u)

    def disconnect(self, u: NodeId, v: NodeId) -> None:
        adj_u = self.adjacency.get(u)
        if adj_u is not None:
            adj_u.discard(v)
        adj_v = self.adjacency.get(v)
        if adj_v is not None:
            adj_v.discard(u)
        self.sources.pop(frozenset((u, v)), None)

    def are_linked(self, u: NodeId, v: NodeId) -> bool:
        return v in self.adjacency.get(u, ())

    def neighbors_iter(self, node: NodeId) -> Iterator[NodeId]:
        return iter(self.adjacency.get(node, ()))

    def links_iter(self) -> Iterator[Tuple[NodeId, NodeId]]:
        seen: Set[NodeId] = set()
        for node, neighbors in self.adjacency.items():
            for other in neighbors:
                if other not in seen:
                    yield (node, other)
            seen.add(node)

    def num_links(self) -> int:
        return sum(len(neighbors) for neighbors in self.adjacency.values()) // 2

    # -- sourced links -----------------------------------------------------
    def add_source(self, key: Tuple, u: NodeId, v: NodeId) -> None:
        self.sources.setdefault(frozenset((u, v)), set()).add(key)
        self.adjacency[u].add(v)
        self.adjacency[v].add(u)

    def remove_source(self, key: Tuple, u: NodeId, v: NodeId) -> None:
        link = frozenset((u, v))
        sources = self.sources.get(link)
        if sources is None:
            return
        sources.discard(key)
        if not sources:
            del self.sources[link]
            if link not in self.scaffold_links:
                adj_u = self.adjacency.get(u)
                if adj_u is not None:
                    adj_u.discard(v)
                adj_v = self.adjacency.get(v)
                if adj_v is not None:
                    adj_v.discard(u)

    def has_source(self, key: Tuple, u: NodeId, v: NodeId) -> bool:
        return key in self.sources.get(frozenset((u, v)), ())

    def source_count(self, u: NodeId, v: NodeId) -> int:
        return len(self.sources.get(frozenset((u, v)), ()))

    def has_any_source(self, u: NodeId, v: NodeId) -> bool:
        return frozenset((u, v)) in self.sources

    def replace_sources(self, expected: Dict[frozenset, Set[Tuple]]) -> None:
        self.sources = {link: set(keys) for link, keys in expected.items()}

    def sources_view(self) -> Dict[frozenset, Set[Tuple]]:
        return {link: set(keys) for link, keys in self.sources.items()}

    # -- scaffolding -------------------------------------------------------
    def scaffold_add(self, u: NodeId, v: NodeId) -> None:
        self.scaffold_links.add(frozenset((u, v)))

    def scaffold_clear(self) -> None:
        self.scaffold_links = set()


class Network:
    """A synchronous message-passing network of :class:`Processor` objects."""

    def __init__(
        self,
        strict_links: bool = True,
        fault_schedule: Optional[FaultSchedule] = None,
        accountability: bool = True,
        dense: bool = True,
        receive_trace_limit: Optional[int] = None,
    ) -> None:
        self.processors: Dict[NodeId, Processor] = {}
        #: Per-processor receive-transcript depth (``None`` = the class
        #: default ``Processor.RECEIVE_TRACE_LIMIT``).  Transcripts dominate
        #: bytes/node at large n, so deployments that only need the dispute
        #: window can shrink it (the ``large_n`` BENCH section reports both).
        self.receive_trace_limit = receive_trace_limit
        #: When True (default) the dense-int hot core stores the topology
        #: (interned ids, flat adjacency, packed link keys) and processors
        #: use the struct-of-arrays Table 1 store; ``dense=False`` selects
        #: the retained seed-era object-dict twin for both — the
        #: equivalence/benchmark baseline of the ``large_n`` BENCH section.
        self.dense = dense
        self._topology = _DenseTopology() if dense else _DictTopology()
        self._outbox: List[Message] = []
        #: Messages a fault delayed: (deliver_at_round, message).
        self._delayed: List[Tuple[int, Message]] = []
        #: Recycled per-round delivery buffer: each round swaps the outbox
        #: against this spare list instead of allocating fresh ones (the
        #: ROADMAP's "one allocation per round, not per message" item).
        self._spare_outbox: List[Message] = []
        #: When False, the delivery machinery uses the retained seed-era
        #: reference paths (fresh per-round allocations in
        #: :meth:`deliver_round_reference`, a per-message log for sizing in
        #: :meth:`send`) — the equivalence baseline the batched fast path is
        #: benchmarked against (``network_delivery`` in BENCH_perf.json).
        self.batched_delivery = True
        #: When True (default), :meth:`send` folds per-message accounting
        #: into a per-round tally that :attr:`metrics` flushes in one batched
        #: pass — bit-identical counters, one dict walk per distinct
        #: ``(sender, kind, epoch)`` cell per round instead of ten dict
        #: updates per message.  ``False`` restores the retained per-send
        #: :meth:`NetworkMetrics.record_message` path (the PR 9 twin the
        #: ``message_fabric`` benchmark compares against).
        self.batched_accounting = True
        #: When True (default), :meth:`send` recycles delivered message
        #: instances through a per-class free list and draws new sends from
        #: it (:meth:`new` / :meth:`release`), so a steady-state flood
        #: allocates ~zero message objects per round.  ``False`` is the
        #: retained-reference twin: every message is a fresh allocation and
        #: nothing is ever recycled, so traces keep exact object identity.
        self.pooled = True
        #: When True (default), consecutive same-link messages of one
        #: packable kind coalesce into a :class:`PackedPayloads` carrier
        #: (struct-of-arrays payload columns, exact summed ``size_bits``).
        #: Automatically inert whenever the fault schedule can drop, delay
        #: or reorder — each logical message must then consume the fault
        #: RNG individually to stay replay-identical with the twin.
        self.packed_batching = True
        #: Per-class free lists of recycled message instances.
        self._pool: Dict[type, List[Message]] = {}
        #: Per-network message id counter: every message entering this
        #: network (pool reuse included) is re-stamped from it, so ids are
        #: deterministic per run no matter how many networks the process
        #: ran before this one (the module-global fallback counter only
        #: serves messages that never touch a network).
        self._message_seq = 0
        #: Round-local send tally: ``(sender, kind, epoch) -> [count,
        #: words_sum, words_max]``, flushed into :attr:`metrics` in one
        #: batched pass per round (or at any external metrics read).
        self._tally: Dict[Tuple[NodeId, str, object], List[int]] = {}
        self._round = 0
        self._metrics = NetworkMetrics()
        #: When True, sending a message between unlinked processors raises.
        self.strict_links = strict_links
        #: Optional fault injection applied at delivery time.
        self.fault_schedule = fault_schedule
        #: Links auto-created for the currently open repair scaffold (the
        #: topology keeps the O(1) membership twin of this recording list).
        self._scaffold: Optional[List[Tuple[NodeId, NodeId]]] = None
        #: Number of processors ever added (message sizing's ``n``).  Counted
        #: per addition, so removals never shrink it; the distributed healer
        #: cross-checks it against the engine's ``nodes_ever``.
        self.n_ever = 0
        #: Identifiers that have ever had a processor (see
        #: :meth:`ever_had_processor`).
        self._ever_ids: Set[NodeId] = set()
        #: Cached identifier word size ``max(ceil(log2(max(n_ever, 2))), 1)``:
        #: recomputed once per processor addition instead of once per message
        #: (the seed path recomputed the log for every single send).
        self._word_bits = 1
        #: Protocol-side accusation ledger (``None`` disables receive-time
        #: verification entirely — the baseline the overhead benchmark
        #: compares against).
        self.transcript: Optional[AccountabilityTranscript] = (
            AccountabilityTranscript() if accountability else None
        )
        #: Oracle-side ground truth of injected lies (never read by protocol
        #: code; gates/metrics score the transcript against it).
        self.injection_log = InjectionLog()
        #: Processors removed by :meth:`quarantine` (alive in the model's
        #: graph, cut off from the network — the containment action).
        self.quarantined: Set[NodeId] = set()

    @property
    def interner(self) -> Optional[Interner]:
        """The dense core's identifier interner (``None`` in reference mode)."""
        return self._topology.interner

    # ------------------------------------------------------------------ #
    # metrics (batched per-round tally)
    # ------------------------------------------------------------------ #
    @property
    def metrics(self) -> NetworkMetrics:
        """The network's counters, with any pending send tally flushed first.

        Every reader — tests, cost reports, window open/close calls — goes
        through this property, so deferred accounting is externally
        invisible: the instant anyone looks, the ledger is exact.
        """
        if self._tally:
            self._flush_tally()
        return self._metrics

    @metrics.setter
    def metrics(self, value: NetworkMetrics) -> None:
        self._tally.clear()
        for message in self._outbox:
            if type(message) is PackedPayloads:
                message.tally_entry = None
        self._metrics = value

    def _flush_tally(self) -> None:
        """Batch-apply the round's send tally (bit-identical to per-send)."""
        word_bits = self._word_bits
        record = self._metrics.record_message_batch
        for (sender, kind, epoch), (count, words, words_max) in self._tally.items():
            record(
                sender=sender,
                kind=kind,
                count=count,
                bits=words * word_bits,
                max_bits=words_max * word_bits,
                epoch=epoch,
            )
        self._tally.clear()
        # Open carriers cache a pointer into the tally we just cleared —
        # detach them so the next fold re-resolves a live cell.
        for message in self._outbox:
            if type(message) is PackedPayloads:
                message.tally_entry = None

    # ------------------------------------------------------------------ #
    # message pool
    # ------------------------------------------------------------------ #
    def new(self, cls: type, *args, **fields) -> Message:
        """Construct a message of ``cls``, recycling a pooled instance if any.

        Re-running ``__init__`` on a recycled instance resets every slot
        (payload, seal cache, oracle tags), and the per-network id counter
        re-stamps it, so a reused message is indistinguishable from a fresh
        one.  With pooling off this is a plain constructor call — the
        retained-reference twin.  Positional arguments are forwarded to
        ``__init__`` verbatim (hot call sites skip the kwargs dict).

        The per-network id stamp happens in :meth:`send` (every message
        constructed here travels through it, or — for fold carriers — is
        stamped at the fold site), so construction pays no stamp of its
        own.
        """
        if self.pooled:
            free = self._pool.get(cls)
            if free:
                message = free.pop()
                message.reset(*args, **fields)
                return message
        return cls(*args, **fields)

    def stamp(self, message: Message) -> Message:
        """Assign the next per-network id — for messages delivered out of
        band (never passing :meth:`send`, which stamps everything else)."""
        self._message_seq += 1
        message.message_id = self._message_seq
        return message

    def blank(self, cls: type) -> Message:
        """A bare instance for ``unpack_part`` to fill — no ``__init__`` paid.

        Carrier delivery rebuilds parts through this: a pooled veteran when
        one is free, otherwise an uninitialised ``__new__`` shell.  Only
        valid for packable classes, whose ``unpack_part`` writes every slot.
        """
        if self.pooled:
            free = self._pool.get(cls)
            if free:
                return free.pop()
        return cls.__new__(cls)

    def release(self, message: Message) -> None:
        """Return a message to the pool (no-op when unpooled or pinned).

        Pinned instances — accusation evidence, cross-witnessed copies —
        are never recycled: their payloads must stay readable forever.
        """
        if not self.pooled or message.pinned:
            return
        cls = type(message)
        free = self._pool.get(cls)
        if free is None:
            free = self._pool[cls] = []
        free.append(message)

    # ------------------------------------------------------------------ #
    # topology management
    # ------------------------------------------------------------------ #
    def add_processor(self, node: NodeId) -> Processor:
        """Create (or return) the processor with identifier ``node``."""
        processor = self.processors.get(node)
        if processor is None:
            processor = Processor(
                node,
                dense_records=self.dense,
                receive_trace_limit=self.receive_trace_limit,
            )
            processor.network = self
            self.processors[node] = processor
            self._topology.ensure_node(node)
            self._ever_ids.add(node)
            self.n_ever += 1
            if self._tally:
                # Pending sends were sized under the old word width.
                self._flush_tally()
            self._word_bits = max(
                int(math.ceil(math.log2(max(self.n_ever, 2)))), 1
            )
        return processor

    def ever_had_processor(self, node: NodeId) -> bool:
        """True when ``node`` has had a processor at some point (alive or not).

        Distinguishes a *crashed* peer (messages to it are dropped by the
        senders, who observed the failure per Figure 1's model) from a
        receiver that never existed (still a protocol bug worth failing
        fast on in :meth:`send`).
        """
        return node in self._ever_ids

    def remove_processor(self, node: NodeId) -> None:
        """Remove a processor, its links, and every link source it anchored."""
        if node not in self.processors:
            raise UnknownNodeError(node, "remove_processor")
        del self.processors[node]
        self._topology.drop_node(node)

    def has_processor(self, node: NodeId) -> bool:
        """True when ``node`` currently has a processor."""
        return node in self.processors

    def connect(self, u: NodeId, v: NodeId) -> None:
        """Create a bidirectional link between two existing processors."""
        if u == v:
            return
        if u not in self.processors or v not in self.processors:
            raise UnknownNodeError(u if u not in self.processors else v, "connect")
        self._topology.connect(u, v)

    def disconnect(self, u: NodeId, v: NodeId) -> None:
        """Drop the link between ``u`` and ``v`` if it exists (dead ends tolerated)."""
        self._topology.disconnect(u, v)

    def are_linked(self, u: NodeId, v: NodeId) -> bool:
        """True when a link currently exists between ``u`` and ``v``."""
        return self._topology.are_linked(u, v)

    # ------------------------------------------------------------------ #
    # sourced links (the healed graph as the processors know it)
    # ------------------------------------------------------------------ #
    def add_link_source(self, key: Tuple, u: NodeId, v: NodeId) -> None:
        """Record one source for the healed link ``(u, v)`` (idempotent).

        Creates the link if this is its first source.  Dead endpoints are
        tolerated silently: a message-driven update may race with the
        adversary's removal, and the removal wins.
        """
        if u == v or u not in self.processors or v not in self.processors:
            return
        self._topology.add_source(key, u, v)

    def remove_link_source(self, key: Tuple, u: NodeId, v: NodeId) -> None:
        """Drop one source of link ``(u, v)``; the link vanishes at zero sources
        (unless an open repair scaffold is still using it)."""
        self._topology.remove_source(key, u, v)

    def has_link_source(self, key: Tuple, u: NodeId, v: NodeId) -> bool:
        """True when ``key`` currently sources the link ``(u, v)``."""
        return self._topology.has_source(key, u, v)

    def link_source_count(self, u: NodeId, v: NodeId) -> int:
        """Number of sources of link ``(u, v)`` (the engine's edge multiplicity)."""
        return self._topology.source_count(u, v)

    def replace_link_sources(self, expected: Dict[frozenset, Set[Tuple]]) -> None:
        """Overwrite the whole source table (the oracle resync's bulk write).

        ``expected`` is keyed by ``frozenset`` endpoint pairs — the seed-era
        wire format :meth:`DistributedForgivingGraph._sync_links_reference`
        produces; the dense core re-keys it into packed ints on entry.
        """
        self._topology.replace_sources(expected)

    def export_link_sources(self) -> Dict[frozenset, Set[Tuple]]:
        """Snapshot the whole source table in the ``frozenset`` wire format.

        The inverse of :meth:`replace_link_sources` — what the healer
        service's checkpoint writer reads, so a restored network can rebuild
        the healed graph's sourced links exactly.
        """
        return self._topology.sources_view()

    def set_census(self, n_ever: int, ever_ids: Iterable[NodeId] = ()) -> None:
        """Restore the addition-counted census after a checkpoint reload.

        ``add_processor`` counts additions, so a network rebuilt from only
        the *surviving* processors would under-count ``n_ever`` (message
        sizing, and the ``verify_consistency`` cross-check against the
        engine's ``nodes_ever``, both read it) and forget which identifiers
        ever existed (``ever_had_processor`` distinguishes crashed peers
        from protocol bugs).  The checkpoint loader sets both explicitly;
        the word size is recomputed to match.
        """
        if n_ever < len(self.processors):
            raise ValueError(
                f"census {n_ever} is smaller than the {len(self.processors)} "
                "live processors"
            )
        self.n_ever = n_ever
        self._ever_ids.update(ever_ids)
        if self._tally:
            self._flush_tally()
        self._word_bits = max(int(math.ceil(math.log2(max(self.n_ever, 2)))), 1)

    # ------------------------------------------------------------------ #
    # repair scaffolding
    # ------------------------------------------------------------------ #
    def begin_scaffold(self) -> None:
        """Open a scaffold: sends may auto-create links, all recorded."""
        self._scaffold = []
        self._topology.scaffold_clear()

    def scaffold_link(self, u: NodeId, v: NodeId) -> None:
        """Explicitly create (and record) a repair-local link."""
        if u == v or self.are_linked(u, v):
            return
        self.connect(u, v)
        if self._scaffold is not None:
            self._scaffold.append((u, v))
            self._topology.scaffold_add(u, v)

    def end_scaffold(self) -> int:
        """Drop every scaffold link that acquired no source; returns how many."""
        scaffold, self._scaffold = self._scaffold, None
        topology = self._topology
        topology.scaffold_clear()
        dropped = 0
        for u, v in scaffold or ():
            if not topology.has_any_source(u, v):
                self.disconnect(u, v)
                dropped += 1
        return dropped

    def num_links(self) -> int:
        """Number of current links (O(n) sum of neighbour-set sizes)."""
        return self._topology.num_links()

    def iter_links(self) -> Iterator[Tuple[NodeId, NodeId]]:
        """Iterate the current links in arbitrary endpoint/iteration order.

        The unsorted fast accessor for internal consumers (set builders,
        graph constructors) — no per-pair :class:`NodeKey` comparisons.
        Use :meth:`links` when canonical tuple order matters.
        """
        return self._topology.links_iter()

    def links(self) -> Set[Tuple[NodeId, NodeId]]:
        """Return the current link set as canonically ordered tuples (inspection only).

        Tuple endpoints are ordered by :class:`repro.core.ports.NodeKey`, the
        repository's relabeling-invariant total order on node identifiers.
        """
        result: Set[Tuple[NodeId, NodeId]] = set()
        for u, v in self._topology.links_iter():
            result.add((u, v) if NodeKey(u) < NodeKey(v) else (v, u))
        return result

    def neighbors_unsorted(self, node: NodeId) -> List[NodeId]:
        """Current link neighbours of ``node`` in arbitrary order (fast path)."""
        return list(self._topology.neighbors_iter(node))

    def neighbors(self, node: NodeId) -> List[NodeId]:
        """Current link neighbours of ``node``, in canonical :class:`NodeKey` order."""
        return sorted(self._topology.neighbors_iter(node), key=NodeKey)

    # ------------------------------------------------------------------ #
    # per-repair accounting
    # ------------------------------------------------------------------ #
    def begin_repair(self) -> MetricsWindow:
        """Open a per-repair metrics window; all traffic until :meth:`end_repair` lands in it."""
        return self.metrics.begin_window()

    def end_repair(self) -> MetricsWindow:
        """Close the per-repair window and return its counters."""
        return self.metrics.end_window()

    # ------------------------------------------------------------------ #
    # message passing
    # ------------------------------------------------------------------ #
    def send(self, message: Message) -> None:
        """Queue a message for delivery in the next round.

        In strict mode the sender and receiver must currently be linked —
        the paper's model only lets processors talk to their immediate
        neighbours (names of other vertices may be *carried* in messages,
        but not used as direct destinations).  While a repair scaffold is
        open, a missing link is created and recorded instead: the repair is
        entitled to wire its own temporary edges (Algorithm A.3), and the
        scaffold teardown reclaims them.
        """
        sender = message.sender
        receiver = message.receiver
        # Fold fast path: when the tail of the outbox already carries this
        # exact (sender, receiver, class, epoch) stream — either as a
        # carrier or as the stream's first plain part — the existence/link
        # checks were performed when that first part was sent (nothing can
        # unlink the pair between two sends of one round), so this part
        # pays only corruption, stamping, tallying and the fold itself.
        outbox = self._outbox
        if message.packable and self.packed_batching and outbox:
            last = outbox[-1]
            fold = 0
            if (
                last.sender == sender
                and last.receiver == receiver
                and last.deleted == message.deleted
                and self.batched_accounting
                and self.batched_delivery
            ):
                cls = type(message)
                last_cls = type(last)
                if last_cls is PackedPayloads:
                    if last.part_cls is cls:
                        fold = 1
                elif last_cls is cls:
                    # Opening a carrier needs what the slow-path fold gate
                    # checks: delivery faults must bill each part its own
                    # RNG draw, so they disable packing entirely.
                    schedule = self.fault_schedule
                    if schedule is None or not schedule.has_delivery_faults:
                        fold = 2
            if fold:
                schedule = self.fault_schedule
                if schedule is not None:
                    if (
                        message.byz_origin is None
                        and schedule.has_byzantine
                        and sender != receiver
                        and schedule.is_byzantine(sender)
                    ):
                        schedule.corrupt_in_place(message)
                    if message.byz_origin is not None:
                        self.injection_log.note_sent(message.byz_origin, self._round)
                self._message_seq += 1
                message.message_id = self._message_seq
                words = message.payload_words
                if fold == 1:
                    entry = last.tally_entry
                    if entry is None:
                        key = (sender, message.kind, message.deleted)
                        entry = self._tally.get(key)
                        if entry is None:
                            entry = self._tally[key] = [0, 0, 0]
                        last.tally_entry = entry
                    entry[0] += 1
                    entry[1] += words
                    if words > entry[2]:
                        entry[2] = words
                    if last.parts:
                        # stash() inlined (epoch already matched above).
                        last.parts.append(message)
                        last.payload_words += words
                        last.count += 1
                    else:
                        last.absorb(message)
                        self.release(message)
                else:
                    key = (sender, message.kind, message.deleted)
                    entry = self._tally.get(key)
                    if entry is None:
                        entry = self._tally[key] = [1, words, words]
                    else:
                        entry[0] += 1
                        entry[1] += words
                        if words > entry[2]:
                            entry[2] = words
                    carrier = self.new(
                        PackedPayloads, sender=sender, receiver=receiver
                    )
                    self._message_seq += 1
                    carrier.message_id = self._message_seq
                    carrier.tally_entry = entry
                    carrier.begin(cls)
                    if self.pooled:
                        # Pooled fast lane: ride the instances themselves.
                        carrier.stash(last)
                        carrier.stash(message)
                    else:
                        carrier.open_columns()
                        carrier.absorb(last)
                        carrier.absorb(message)
                        self.release(last)
                        self.release(message)
                    outbox[-1] = carrier
                return
        processors = self.processors
        if sender not in processors:
            raise ProtocolError(f"sender {sender!r} does not exist")
        if receiver not in processors:
            raise ProtocolError(f"receiver {receiver!r} does not exist")
        if sender != receiver and not self.are_linked(sender, receiver):
            if self._scaffold is not None:
                self.scaffold_link(sender, receiver)
            elif self.strict_links:
                raise ProtocolError(
                    f"{message.kind} from {sender!r} to {receiver!r} "
                    "would travel between unlinked processors"
                )
        schedule = self.fault_schedule
        if (
            schedule is not None
            and message.byz_origin is None
            and schedule.has_byzantine
            and sender != receiver
            and schedule.is_byzantine(sender)
        ):
            # Payload corruption happens per outgoing copy, so one logical
            # instruction fanned out to several recipients can carry a
            # different lie to each — equivocation needs no extra machinery.
            schedule.corrupt_in_place(message)
        if message.byz_origin is not None:
            self.injection_log.note_sent(message.byz_origin, self._round)
        # Per-network id stamp (re-stamps pool reuses and direct constructs
        # alike) — in-network ids are deterministic per run, independent of
        # the process's module-global fallback counter.
        self._message_seq += 1
        message.message_id = self._message_seq
        # Accounting.  ``payload_words * _word_bits`` equals
        # ``message.size_bits(n_ever)`` exactly (same formula, log cached per
        # topology change instead of recomputed per message); the
        # batched-vs-reference equivalence checks compare the resulting bit
        # counts verbatim.  Epoch attribution: every repair-protocol message
        # carries the ``deleted`` victim it serves, which keys the per-epoch
        # windows the concurrent batch driver opens (no-op outside
        # ``delete_batch``).  On the fast path the per-message counter walk
        # is folded into a round tally flushed in one batched pass.
        if self.batched_delivery and self.batched_accounting:
            key = (sender, message.kind, message.deleted)
            words = message.payload_words
            entry = self._tally.get(key)
            if entry is None:
                self._tally[key] = [1, words, words]
            else:
                entry[0] += 1
                entry[1] += words
                if words > entry[2]:
                    entry[2] = words
        else:
            if self._tally:
                self._flush_tally()
            self._metrics.record_message(
                sender=sender,
                kind=message.kind,
                bits=(
                    message.payload_words * self._word_bits
                    if self.batched_delivery
                    else message.size_bits(max(self.n_ever, 2))
                ),
                epoch=message.deleted,
            )
        # Packed payload batching: consecutive same-link messages of one
        # packable kind (and epoch) fold into a struct-of-arrays carrier.
        # Adjacency makes folding order-preserving by construction; delivery
        # faults disable it so every logical message consumes the fault RNG
        # individually (the pure-byzantine presets ride reliable links, so
        # lies pack fine — corruption already happened above, per part).
        outbox = self._outbox
        if (
            message.packable
            and self.packed_batching
            and self.batched_delivery
            and (schedule is None or not schedule.has_delivery_faults)
            and outbox
        ):
            last = outbox[-1]
            if last.sender == sender and last.receiver == receiver:
                cls = type(message)
                last_cls = type(last)
                if last_cls is PackedPayloads:
                    if last.part_cls is cls and last.deleted == message.deleted:
                        if last.parts:
                            last.stash(message)
                        else:
                            last.absorb(message)
                            self.release(message)
                        return
                elif last_cls is cls and last.deleted == message.deleted:
                    carrier = self.new(PackedPayloads, sender=sender, receiver=receiver)
                    self._message_seq += 1
                    carrier.message_id = self._message_seq
                    carrier.begin(cls)
                    if self.pooled:
                        # Pooled fast lane: ride the instances themselves.
                        carrier.stash(last)
                        carrier.stash(message)
                    else:
                        carrier.open_columns()
                        carrier.absorb(last)
                        carrier.absorb(message)
                        self.release(last)
                        self.release(message)
                    outbox[-1] = carrier
                    return
        outbox.append(message)

    def deliver_round(self) -> int:
        """Advance one synchronous round; returns how many messages were delivered.

        The round's batch is this round's outbox plus any fault-delayed
        messages that came due.  The fault schedule (if any) judges every
        message — drop, delay, or deliver — and may shuffle the batch's
        delivery order.  Handlers may respond with new messages; those are
        sent within this round and therefore delivered in the next one.

        The fast path is struct-of-arrays: one pass over the batch both
        compacts fault survivors in place *and* extracts the
        ``(sender, receiver)`` column the reorder permutation consumes, so
        nothing walks the message objects twice; the recycled per-round
        buffer (the outbox swaps against a spare list) keeps a round at
        zero list allocations, and per-message dispatch/seal work runs off
        precomputed class attributes (``Message.kind`` / ``Message.sealed``
        and the processor-side handler cache).  The seed-era allocation
        pattern survives as :meth:`deliver_round_reference` and both paths
        are replayable to identical results (fault decisions consume the
        RNG identically; ``shuffle_round`` consumes nothing for batches
        under two messages, so skipping it there is exact).
        """
        if not self.batched_delivery:
            return self.deliver_round_reference()
        self._round += 1
        if self._tally:
            self._flush_tally()
        metrics = self._metrics
        metrics.record_rounds(1)
        batch, spare = self._outbox, self._spare_outbox
        spare.clear()  # last round's batch (kept until now so a mid-round
        self._outbox = spare  # exception can never lead to redelivery)
        self._spare_outbox = batch
        schedule = self.fault_schedule
        collect = schedule is not None and schedule.has_reorder
        pairs: Optional[List[Tuple[NodeId, NodeId]]] = [] if collect else None
        if schedule is not None and batch:
            # Fresh sends are judged exactly once, here; a message that drew
            # a delay is delivered as-is when it comes due, so its fate stays
            # within the policy's 1..max_delay contract.  Survivors are
            # compacted into the batch's own prefix — no second list — and
            # the sender/receiver column fills in the same pass.  (Carriers
            # only exist on fault-free schedules, so each judged entry here
            # is one logical message.)
            kept = 0
            for message in batch:
                sender = message.sender
                receiver = message.receiver
                if sender != receiver:
                    fate = schedule.judge(sender, receiver)
                    if fate < 0:
                        metrics.record_dropped(epoch=message.deleted)
                        self.release(message)
                        continue
                    if fate > 0:
                        self._delayed.append((self._round + fate, message))
                        continue
                batch[kept] = message
                kept += 1
                if collect:
                    pairs.append((sender, receiver))
            del batch[kept:]
        if self._delayed:
            due = [m for at, m in self._delayed if at <= self._round]
            if due:
                self._delayed = [(at, m) for at, m in self._delayed if at > self._round]
                batch.extend(due)
                if collect:
                    pairs.extend((m.sender, m.receiver) for m in due)
        if collect and len(batch) > 1:
            permutation = schedule.shuffle_round(pairs)
            if permutation is not None:
                batch[:] = [batch[i] for i in permutation]
        delivered = 0
        processors = self.processors
        for message in batch:
            processor = processors.get(message.receiver)
            if processor is None:
                # Receiver died mid-round; the paper assumes one attack per
                # round.  The undeliverable instance goes back to the pool.
                self.release(message)
                continue
            if type(message) is PackedPayloads:
                # Inlined for the hot loop; receive_packed sends its own
                # responses part-by-part (see its docstring for why).
                delivered += message.count
                processor.receive_packed(message)
                self.release(message)
                continue
            if message.byz_origin is not None:
                self.injection_log.note_delivered(message.byz_origin, message.receiver)
            responses = processor.receive(message)
            delivered += 1
            for response in responses or ():
                self.send(response)
        return delivered

    def deliver_round_reference(self) -> int:
        """The seed-era delivery round: fresh list allocations per round.

        Retained as the reference the batched fast path is equivalence-tested
        and benchmarked against (``network_delivery`` in BENCH_perf.json).
        Identical observable behaviour: same delivery order, same fault
        decisions (the RNG is consumed in the same sequence), same metrics.
        """
        self._round += 1
        self.metrics.record_rounds(1)
        outbox, self._outbox = self._outbox, []
        schedule = self.fault_schedule
        if schedule is None:
            batch = outbox
        else:
            batch = []
            for message in outbox:
                if message.sender != message.receiver:
                    fate = schedule.judge(message.sender, message.receiver)
                    if fate < 0:
                        self.metrics.record_dropped(epoch=getattr(message, "deleted", None))
                        continue
                    if fate > 0:
                        self._delayed.append((self._round + fate, message))
                        continue
                batch.append(message)
        if self._delayed:
            batch = batch + [m for at, m in self._delayed if at <= self._round]
            self._delayed = [(at, m) for at, m in self._delayed if at > self._round]
        if schedule is not None:
            permutation = schedule.shuffle_round([(m.sender, m.receiver) for m in batch])
            if permutation is not None:
                batch = [batch[i] for i in permutation]
        delivered = 0
        for message in batch:
            processor = self.processors.get(message.receiver)
            if processor is None:
                continue
            if message.byz_origin is not None:
                self.injection_log.note_delivered(message.byz_origin, message.receiver)
            responses = processor.receive(message)
            delivered += 1
            for response in responses or ():
                self.send(response)
        return delivered

    def drop_in_flight(self) -> int:
        """Discard every queued and fault-delayed message; returns how many.

        Used by the recovery driver when its round budget runs out
        mid-delivery: the leftover traffic is *counted* into the recovery
        report and removed, because delivering it during a later repair
        could apply stale instructions.  The discards are folded into the
        metrics window's ``dropped`` ledger — a message the driver threw
        away is as lost as one the network dropped, and the cost rows
        should say so.
        """
        count = 0
        for message in self._outbox:
            count += message.count
        for _, message in self._delayed:
            count += message.count
        if count:
            metrics = self.metrics  # flushes the send-side tally first
            if metrics.epoch_windows:
                for message in self._outbox:
                    metrics.record_dropped(message.count, epoch=message.deleted)
                for _, message in self._delayed:
                    metrics.record_dropped(message.count, epoch=message.deleted)
            else:
                metrics.record_dropped(count)
        for message in self._outbox:
            self.release(message)
        for _, message in self._delayed:
            self.release(message)
        self._outbox.clear()
        self._delayed.clear()
        return count

    def in_flight_for(self, victim: NodeId) -> int:
        """Queued + fault-delayed messages belonging to ``victim``'s repair.

        The concurrent batch driver uses this as the per-epoch quiescence
        test (a repair's own traffic has drained even while its wave
        siblings are still talking).  O(in-flight) per call — the queues at
        these scales are short-lived round buffers.
        """
        count = 0
        for message in self._outbox:
            if message.deleted == victim:
                count += message.count
        for _, message in self._delayed:
            if message.deleted == victim:
                count += message.count
        return count

    # ------------------------------------------------------------------ #
    # byzantine accountability
    # ------------------------------------------------------------------ #
    def accuse(
        self,
        *,
        accused: NodeId,
        reporter: NodeId,
        reason: str,
        evidence: Iterable[Message],
    ) -> bool:
        """Record a message-backed accusation and quarantine the accused.

        Called by processors from :meth:`Processor.receive` when a seal or
        checksum fails, or when a validly-sealed payload contradicts an
        already-witnessed one.  No-op (returns ``False``) when
        accountability is disabled.
        """
        if self.transcript is None:
            return False
        evidence = tuple(evidence)
        for message in evidence:
            message.pinned = True  # transcript holds it forever; never recycle
        self.transcript.record(
            accused=accused,
            reporter=reporter,
            reason=reason,
            evidence=evidence,
            round=self._round,
        )
        self.quarantine(accused)
        return True

    def quarantine(self, node: NodeId) -> None:
        """Cut a detected liar off: drop its processor and every link it holds.

        Reuses the crash machinery — a quarantined processor looks exactly
        like a dead one to everybody else (sends to it are discarded, the
        recovery fixed point waives confirmations from it), so containment
        needs no new protocol states.
        """
        if node in self.quarantined:
            return
        self.quarantined.add(node)
        if node in self.processors:
            self.remove_processor(node)

    def tick(self, round_index: int, participants) -> int:
        """Fire the round-``round_index`` timers of the given processors.

        Synchronous protocols act on timeouts as well as on messages (an
        anchor ships its list when the probe deadline passes, whether or not
        every report made it back).  Returns how many messages the timers
        produced.
        """
        produced = 0
        for node in participants:
            processor = self.processors.get(node)
            if processor is None:
                continue
            for message in processor.tick(round_index) or ():
                self.send(message)
                produced += 1
        return produced

    def run_until_quiet(self, max_rounds: int = 10_000) -> int:
        """Deliver rounds until no messages remain in flight; returns rounds used."""
        rounds = 0
        while self.in_flight:
            if rounds >= max_rounds:
                raise ProtocolError(f"protocol did not quiesce within {max_rounds} rounds")
            self.deliver_round()
            rounds += 1
        return rounds

    @property
    def pending_messages(self) -> int:
        """Logical messages queued for the next round (carrier parts counted)."""
        return sum(message.count for message in self._outbox)

    @property
    def in_flight(self) -> int:
        """Logical messages queued for the next round plus fault-delayed ones."""
        return sum(message.count for message in self._outbox) + sum(
            message.count for _, message in self._delayed
        )
