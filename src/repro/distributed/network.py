"""Synchronous round-based message-passing network.

This is the substrate replacing the paper's physical peer-to-peer network
(documented substitution in DESIGN.md): processors are Python objects, links
are entries of an adjacency structure, and time advances in synchronous
rounds — every message sent in round ``r`` is delivered at the start of round
``r + 1``, matching the paper's cost model where a message takes at most one
time unit to traverse an edge and local computation is free.

Topology is stored as an adjacency dict (one neighbour set per processor),
so :meth:`Network.connect` / :meth:`Network.disconnect` /
:meth:`Network.are_linked` are O(1) and :meth:`Network.neighbors` /
:meth:`Network.remove_processor` are O(deg) — no operation on the repair
path ever scans the full link set.  The network enforces that messages only
travel along existing links (or repair scaffolding, see below), and keeps
the per-node and global counters that Lemma 4 bounds;
:meth:`Network.begin_repair` / :meth:`Network.end_repair` bracket one repair
with a :class:`~repro.distributed.metrics.MetricsWindow` so its cost report
is assembled from O(repair) state instead of full counter snapshots.

Two layers sit on top of the raw adjacency since the merge went
message-native (PR 4):

*Sourced links.*  A healed-graph link exists because one or more *sources*
project onto it: the surviving real edge, and any number of RT virtual
edges between the same two processors.  :meth:`add_link_source` /
:meth:`remove_link_source` maintain one set of source keys per link —
the distributed twin of the engine's edge-multiplicity counting — and the
link itself appears/disappears as its source set becomes (non-)empty.
Source updates are driven by received protocol messages (helper
assignments) and local strip knowledge, *not* by the reference engine.
Keyed sets (instead of bare counters) make the bookkeeping idempotent, so
retransmitted messages cannot corrupt the topology.

*Scaffolding.*  A repair creates temporary links for its own traffic (the
``BT_v`` tree, probe hops, merge wiring).  While a scaffold is open
(:meth:`begin_scaffold`), :meth:`send` auto-creates missing links and
records them; :meth:`end_scaffold` drops every recorded link that did not
acquire a source in the meantime — "delete the edges E_v" of Algorithm A.3,
decided from the network's own source sets rather than an engine probe.

Faults: an optional :class:`~repro.distributed.faults.FaultSchedule` is
consulted at delivery time — messages can be dropped, delayed whole rounds,
or delivered in shuffled order.  Sending is always accounted (the sender
paid for the message); what faults change is whether and when the receiver
learns anything.

Byzantine accountability (PR 6): the schedule's byzantine axis corrupts a
lying sender's payloads as they enter :meth:`send` (per copy — equivocation
for free), tagging each lie's oracle-side origin so the
:class:`~repro.distributed.accountability.InjectionLog` can score detection.
Receivers verify seals/checksums in :meth:`Processor.receive` and call
:meth:`Network.accuse`, which appends the evidence to the
:class:`~repro.distributed.accountability.AccountabilityTranscript` and
quarantines the accused — its processor and links are removed exactly like
a crashed node, so the existing recovery machinery (dead-peer waivers,
digest retransmission) heals around it.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..core.errors import ProtocolError, UnknownNodeError
from ..core.ports import NodeId, NodeKey
from .accountability import AccountabilityTranscript, InjectionLog
from .faults import FaultSchedule
from .messages import Message
from .metrics import MetricsWindow, NetworkMetrics
from .processor import Processor

__all__ = ["Network"]


class Network:
    """A synchronous message-passing network of :class:`Processor` objects."""

    def __init__(
        self,
        strict_links: bool = True,
        fault_schedule: Optional[FaultSchedule] = None,
        accountability: bool = True,
    ) -> None:
        self.processors: Dict[NodeId, Processor] = {}
        #: Adjacency: one set of linked neighbours per current processor.
        self._adjacency: Dict[NodeId, Set[NodeId]] = {}
        #: Source keys per link (see module docstring); a link with sources
        #: is part of the healed graph, a link without is scaffolding.
        self._link_sources: Dict[frozenset, Set[Tuple]] = {}
        self._outbox: List[Message] = []
        #: Messages a fault delayed: (deliver_at_round, message).
        self._delayed: List[Tuple[int, Message]] = []
        #: Recycled per-round delivery buffer: each round swaps the outbox
        #: against this spare list instead of allocating fresh ones (the
        #: ROADMAP's "one allocation per round, not per message" item).
        self._spare_outbox: List[Message] = []
        #: When False, the delivery machinery uses the retained seed-era
        #: reference paths (fresh per-round allocations in
        #: :meth:`deliver_round_reference`, a per-message log for sizing in
        #: :meth:`send`) — the equivalence baseline the batched fast path is
        #: benchmarked against (``network_delivery`` in BENCH_perf.json).
        self.batched_delivery = True
        self._round = 0
        self.metrics = NetworkMetrics()
        #: When True, sending a message between unlinked processors raises.
        self.strict_links = strict_links
        #: Optional fault injection applied at delivery time.
        self.fault_schedule = fault_schedule
        #: Links auto-created for the currently open repair scaffold (the
        #: set is the O(1) membership twin of the recording list).
        self._scaffold: Optional[List[Tuple[NodeId, NodeId]]] = None
        self._scaffold_links: Set[frozenset] = set()
        #: Number of processors ever added (message sizing's ``n``).  Counted
        #: per addition, so removals never shrink it; the distributed healer
        #: cross-checks it against the engine's ``nodes_ever``.
        self.n_ever = 0
        #: Identifiers that have ever had a processor (see
        #: :meth:`ever_had_processor`).
        self._ever_ids: Set[NodeId] = set()
        #: Cached identifier word size ``max(ceil(log2(max(n_ever, 2))), 1)``:
        #: recomputed once per processor addition instead of once per message
        #: (the seed path recomputed the log for every single send).
        self._word_bits = 1
        #: Protocol-side accusation ledger (``None`` disables receive-time
        #: verification entirely — the baseline the overhead benchmark
        #: compares against).
        self.transcript: Optional[AccountabilityTranscript] = (
            AccountabilityTranscript() if accountability else None
        )
        #: Oracle-side ground truth of injected lies (never read by protocol
        #: code; gates/metrics score the transcript against it).
        self.injection_log = InjectionLog()
        #: Processors removed by :meth:`quarantine` (alive in the model's
        #: graph, cut off from the network — the containment action).
        self.quarantined: Set[NodeId] = set()

    # ------------------------------------------------------------------ #
    # topology management
    # ------------------------------------------------------------------ #
    def add_processor(self, node: NodeId) -> Processor:
        """Create (or return) the processor with identifier ``node``."""
        if node not in self.processors:
            processor = Processor(node)
            processor.network = self
            self.processors[node] = processor
            self._adjacency[node] = set()
            self._ever_ids.add(node)
            self.n_ever += 1
            self._word_bits = max(
                int(math.ceil(math.log2(max(self.n_ever, 2)))), 1
            )
        return self.processors[node]

    def ever_had_processor(self, node: NodeId) -> bool:
        """True when ``node`` has had a processor at some point (alive or not).

        Distinguishes a *crashed* peer (messages to it are dropped by the
        senders, who observed the failure per Figure 1's model) from a
        receiver that never existed (still a protocol bug worth failing
        fast on in :meth:`send`).
        """
        return node in self._ever_ids

    def remove_processor(self, node: NodeId) -> None:
        """Remove a processor, its links, and every link source it anchored."""
        if node not in self.processors:
            raise UnknownNodeError(node, "remove_processor")
        del self.processors[node]
        for neighbor in self._adjacency.pop(node, ()):
            self._adjacency[neighbor].discard(node)
            self._link_sources.pop(frozenset((node, neighbor)), None)

    def has_processor(self, node: NodeId) -> bool:
        """True when ``node`` currently has a processor."""
        return node in self.processors

    def connect(self, u: NodeId, v: NodeId) -> None:
        """Create a bidirectional link between two existing processors."""
        if u == v:
            return
        if u not in self.processors or v not in self.processors:
            raise UnknownNodeError(u if u not in self.processors else v, "connect")
        self._adjacency[u].add(v)
        self._adjacency[v].add(u)

    def disconnect(self, u: NodeId, v: NodeId) -> None:
        """Drop the link between ``u`` and ``v`` if it exists (dead ends tolerated)."""
        adj_u = self._adjacency.get(u)
        if adj_u is not None:
            adj_u.discard(v)
        adj_v = self._adjacency.get(v)
        if adj_v is not None:
            adj_v.discard(u)
        self._link_sources.pop(frozenset((u, v)), None)

    def are_linked(self, u: NodeId, v: NodeId) -> bool:
        """True when a link currently exists between ``u`` and ``v``."""
        return v in self._adjacency.get(u, ())

    # ------------------------------------------------------------------ #
    # sourced links (the healed graph as the processors know it)
    # ------------------------------------------------------------------ #
    def add_link_source(self, key: Tuple, u: NodeId, v: NodeId) -> None:
        """Record one source for the healed link ``(u, v)`` (idempotent).

        Creates the link if this is its first source.  Dead endpoints are
        tolerated silently: a message-driven update may race with the
        adversary's removal, and the removal wins.
        """
        if u == v or u not in self.processors or v not in self.processors:
            return
        self._link_sources.setdefault(frozenset((u, v)), set()).add(key)
        self._adjacency[u].add(v)
        self._adjacency[v].add(u)

    def remove_link_source(self, key: Tuple, u: NodeId, v: NodeId) -> None:
        """Drop one source of link ``(u, v)``; the link vanishes at zero sources
        (unless an open repair scaffold is still using it)."""
        link = frozenset((u, v))
        sources = self._link_sources.get(link)
        if sources is None:
            return
        sources.discard(key)
        if not sources:
            del self._link_sources[link]
            if link not in self._scaffold_links:
                adj_u = self._adjacency.get(u)
                if adj_u is not None:
                    adj_u.discard(v)
                adj_v = self._adjacency.get(v)
                if adj_v is not None:
                    adj_v.discard(u)

    def has_link_source(self, key: Tuple, u: NodeId, v: NodeId) -> bool:
        """True when ``key`` currently sources the link ``(u, v)``."""
        return key in self._link_sources.get(frozenset((u, v)), ())

    def link_source_count(self, u: NodeId, v: NodeId) -> int:
        """Number of sources of link ``(u, v)`` (the engine's edge multiplicity)."""
        return len(self._link_sources.get(frozenset((u, v)), ()))

    # ------------------------------------------------------------------ #
    # repair scaffolding
    # ------------------------------------------------------------------ #
    def begin_scaffold(self) -> None:
        """Open a scaffold: sends may auto-create links, all recorded."""
        self._scaffold = []
        self._scaffold_links = set()

    def scaffold_link(self, u: NodeId, v: NodeId) -> None:
        """Explicitly create (and record) a repair-local link."""
        if u == v or self.are_linked(u, v):
            return
        self.connect(u, v)
        if self._scaffold is not None:
            self._scaffold.append((u, v))
            self._scaffold_links.add(frozenset((u, v)))

    def end_scaffold(self) -> int:
        """Drop every scaffold link that acquired no source; returns how many."""
        scaffold, self._scaffold = self._scaffold, None
        self._scaffold_links = set()
        dropped = 0
        for u, v in scaffold or ():
            if frozenset((u, v)) not in self._link_sources:
                self.disconnect(u, v)
                dropped += 1
        return dropped

    def num_links(self) -> int:
        """Number of current links (O(n) sum of neighbour-set sizes)."""
        return sum(len(neighbors) for neighbors in self._adjacency.values()) // 2

    def links(self) -> Set[Tuple[NodeId, NodeId]]:
        """Return the current link set as canonically ordered tuples (inspection only).

        Tuple endpoints are ordered by :class:`repro.core.ports.NodeKey`, the
        repository's relabeling-invariant total order on node identifiers.
        """
        result: Set[Tuple[NodeId, NodeId]] = set()
        for node, neighbors in self._adjacency.items():
            node_key = NodeKey(node)
            for other in neighbors:
                if node_key < NodeKey(other):
                    result.add((node, other))
        return result

    def neighbors(self, node: NodeId) -> List[NodeId]:
        """Current link neighbours of ``node``, in canonical :class:`NodeKey` order."""
        return sorted(self._adjacency.get(node, ()), key=NodeKey)

    # ------------------------------------------------------------------ #
    # per-repair accounting
    # ------------------------------------------------------------------ #
    def begin_repair(self) -> MetricsWindow:
        """Open a per-repair metrics window; all traffic until :meth:`end_repair` lands in it."""
        return self.metrics.begin_window()

    def end_repair(self) -> MetricsWindow:
        """Close the per-repair window and return its counters."""
        return self.metrics.end_window()

    # ------------------------------------------------------------------ #
    # message passing
    # ------------------------------------------------------------------ #
    def send(self, message: Message) -> None:
        """Queue a message for delivery in the next round.

        In strict mode the sender and receiver must currently be linked —
        the paper's model only lets processors talk to their immediate
        neighbours (names of other vertices may be *carried* in messages,
        but not used as direct destinations).  While a repair scaffold is
        open, a missing link is created and recorded instead: the repair is
        entitled to wire its own temporary edges (Algorithm A.3), and the
        scaffold teardown reclaims them.
        """
        if message.sender not in self.processors:
            raise ProtocolError(f"sender {message.sender!r} does not exist")
        if message.receiver not in self.processors:
            raise ProtocolError(f"receiver {message.receiver!r} does not exist")
        if message.sender != message.receiver and not self.are_linked(
            message.sender, message.receiver
        ):
            if self._scaffold is not None:
                self.scaffold_link(message.sender, message.receiver)
            elif self.strict_links:
                raise ProtocolError(
                    f"{message.kind} from {message.sender!r} to {message.receiver!r} "
                    "would travel between unlinked processors"
                )
        schedule = self.fault_schedule
        if (
            schedule is not None
            and message.byz_origin is None
            and schedule.has_byzantine
            and message.sender != message.receiver
            and schedule.is_byzantine(message.sender)
        ):
            # Payload corruption happens per outgoing copy, so one logical
            # instruction fanned out to several recipients can carry a
            # different lie to each — equivocation needs no extra machinery.
            schedule.corrupt_in_place(message)
        if message.byz_origin is not None:
            self.injection_log.note_sent(message.byz_origin, self._round)
        self._outbox.append(message)
        # ``payload_words * _word_bits`` equals ``message.size_bits(n_ever)``
        # exactly (same formula, log cached per topology change instead of
        # recomputed per message); the batched-vs-reference equivalence
        # checks compare the resulting bit counts verbatim.
        self.metrics.record_message(
            sender=message.sender,
            kind=message.kind,
            bits=(
                message.payload_words * self._word_bits
                if self.batched_delivery
                else message.size_bits(max(self.n_ever, 2))
            ),
        )

    def deliver_round(self) -> int:
        """Advance one synchronous round; returns how many messages were delivered.

        The round's batch is this round's outbox plus any fault-delayed
        messages that came due.  The fault schedule (if any) judges every
        message — drop, delay, or deliver — and may shuffle the batch's
        delivery order.  Handlers may respond with new messages; those are
        sent within this round and therefore delivered in the next one.

        The fast path recycles one per-round buffer (the outbox swaps
        against a spare list, fault survivors are compacted in place, and
        the reorder machinery only runs when some policy can actually
        reorder), so a round costs zero list allocations instead of several;
        the seed-era allocation pattern survives as
        :meth:`deliver_round_reference` and both paths are replayable to
        identical results (fault decisions consume the RNG identically).
        """
        if not self.batched_delivery:
            return self.deliver_round_reference()
        self._round += 1
        self.metrics.record_rounds(1)
        batch, spare = self._outbox, self._spare_outbox
        spare.clear()  # last round's batch (kept until now so a mid-round
        self._outbox = spare  # exception can never lead to redelivery)
        self._spare_outbox = batch
        schedule = self.fault_schedule
        if schedule is not None and batch:
            # Fresh sends are judged exactly once, here; a message that drew
            # a delay is delivered as-is when it comes due, so its fate stays
            # within the policy's 1..max_delay contract.  Survivors are
            # compacted into the batch's own prefix — no second list.
            kept = 0
            for message in batch:
                if message.sender != message.receiver:
                    fate = schedule.judge(message.sender, message.receiver)
                    if fate < 0:
                        self.metrics.record_dropped()
                        continue
                    if fate > 0:
                        self._delayed.append((self._round + fate, message))
                        continue
                batch[kept] = message
                kept += 1
            del batch[kept:]
        if self._delayed:
            due = [m for at, m in self._delayed if at <= self._round]
            if due:
                self._delayed = [(at, m) for at, m in self._delayed if at > self._round]
                batch.extend(due)
        if schedule is not None and schedule.has_reorder and len(batch) > 1:
            permutation = schedule.shuffle_round([(m.sender, m.receiver) for m in batch])
            if permutation is not None:
                batch[:] = [batch[i] for i in permutation]
        delivered = 0
        for message in batch:
            processor = self.processors.get(message.receiver)
            if processor is None:
                continue  # receiver died mid-round; the paper assumes one attack per round
            if message.byz_origin is not None:
                self.injection_log.note_delivered(message.byz_origin, message.receiver)
            responses = processor.receive(message)
            delivered += 1
            for response in responses or ():
                self.send(response)
        return delivered

    def deliver_round_reference(self) -> int:
        """The seed-era delivery round: fresh list allocations per round.

        Retained as the reference the batched fast path is equivalence-tested
        and benchmarked against (``network_delivery`` in BENCH_perf.json).
        Identical observable behaviour: same delivery order, same fault
        decisions (the RNG is consumed in the same sequence), same metrics.
        """
        self._round += 1
        self.metrics.record_rounds(1)
        outbox, self._outbox = self._outbox, []
        schedule = self.fault_schedule
        if schedule is None:
            batch = outbox
        else:
            batch = []
            for message in outbox:
                if message.sender != message.receiver:
                    fate = schedule.judge(message.sender, message.receiver)
                    if fate < 0:
                        self.metrics.record_dropped()
                        continue
                    if fate > 0:
                        self._delayed.append((self._round + fate, message))
                        continue
                batch.append(message)
        if self._delayed:
            batch = batch + [m for at, m in self._delayed if at <= self._round]
            self._delayed = [(at, m) for at, m in self._delayed if at > self._round]
        if schedule is not None:
            permutation = schedule.shuffle_round([(m.sender, m.receiver) for m in batch])
            if permutation is not None:
                batch = [batch[i] for i in permutation]
        delivered = 0
        for message in batch:
            processor = self.processors.get(message.receiver)
            if processor is None:
                continue
            if message.byz_origin is not None:
                self.injection_log.note_delivered(message.byz_origin, message.receiver)
            responses = processor.receive(message)
            delivered += 1
            for response in responses or ():
                self.send(response)
        return delivered

    def drop_in_flight(self) -> int:
        """Discard every queued and fault-delayed message; returns how many.

        Used by the recovery driver when its round budget runs out
        mid-delivery: the leftover traffic is *counted* into the recovery
        report and removed, because delivering it during a later repair
        could apply stale instructions.  The discards are folded into the
        metrics window's ``dropped`` ledger — a message the driver threw
        away is as lost as one the network dropped, and the cost rows
        should say so.
        """
        count = len(self._outbox) + len(self._delayed)
        if count:
            self.metrics.record_dropped(count)
        self._outbox.clear()
        self._delayed.clear()
        return count

    # ------------------------------------------------------------------ #
    # byzantine accountability
    # ------------------------------------------------------------------ #
    def accuse(
        self,
        *,
        accused: NodeId,
        reporter: NodeId,
        reason: str,
        evidence: Iterable[Message],
    ) -> bool:
        """Record a message-backed accusation and quarantine the accused.

        Called by processors from :meth:`Processor.receive` when a seal or
        checksum fails, or when a validly-sealed payload contradicts an
        already-witnessed one.  No-op (returns ``False``) when
        accountability is disabled.
        """
        if self.transcript is None:
            return False
        self.transcript.record(
            accused=accused,
            reporter=reporter,
            reason=reason,
            evidence=tuple(evidence),
            round=self._round,
        )
        self.quarantine(accused)
        return True

    def quarantine(self, node: NodeId) -> None:
        """Cut a detected liar off: drop its processor and every link it holds.

        Reuses the crash machinery — a quarantined processor looks exactly
        like a dead one to everybody else (sends to it are discarded, the
        recovery fixed point waives confirmations from it), so containment
        needs no new protocol states.
        """
        if node in self.quarantined:
            return
        self.quarantined.add(node)
        if node in self.processors:
            self.remove_processor(node)

    def tick(self, round_index: int, participants) -> int:
        """Fire the round-``round_index`` timers of the given processors.

        Synchronous protocols act on timeouts as well as on messages (an
        anchor ships its list when the probe deadline passes, whether or not
        every report made it back).  Returns how many messages the timers
        produced.
        """
        produced = 0
        for node in participants:
            processor = self.processors.get(node)
            if processor is None:
                continue
            for message in processor.tick(round_index) or ():
                self.send(message)
                produced += 1
        return produced

    def run_until_quiet(self, max_rounds: int = 10_000) -> int:
        """Deliver rounds until no messages remain in flight; returns rounds used."""
        rounds = 0
        while self.in_flight:
            if rounds >= max_rounds:
                raise ProtocolError(f"protocol did not quiesce within {max_rounds} rounds")
            self.deliver_round()
            rounds += 1
        return rounds

    @property
    def pending_messages(self) -> int:
        """Messages queued for the next round."""
        return len(self._outbox)

    @property
    def in_flight(self) -> int:
        """Messages queued for the next round plus fault-delayed ones."""
        return len(self._outbox) + len(self._delayed)
