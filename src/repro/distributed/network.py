"""Synchronous round-based message-passing network.

This is the substrate replacing the paper's physical peer-to-peer network
(documented substitution in DESIGN.md): processors are Python objects, links
are entries of an adjacency structure, and time advances in synchronous
rounds — every message sent in round ``r`` is delivered at the start of round
``r + 1``, matching the paper's cost model where a message takes at most one
time unit to traverse an edge and local computation is free.

Topology is stored as an adjacency dict (one neighbour set per processor),
so :meth:`Network.connect` / :meth:`Network.disconnect` /
:meth:`Network.are_linked` are O(1) and :meth:`Network.neighbors` /
:meth:`Network.remove_processor` are O(deg) — no operation on the repair
path ever scans the full link set.  The network enforces that messages only
travel along existing links (or links being created by the repair itself,
which the protocol registers before use), and keeps the per-node and global
counters that Lemma 4 bounds; :meth:`Network.begin_repair` /
:meth:`Network.end_repair` bracket one repair with a
:class:`~repro.distributed.metrics.MetricsWindow` so its cost report is
assembled from O(repair) state instead of full counter snapshots.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Set, Tuple

from ..core.errors import ProtocolError, UnknownNodeError
from ..core.ports import NodeId, NodeKey
from .messages import Message
from .metrics import MetricsWindow, NetworkMetrics
from .processor import Processor

__all__ = ["Network"]


class Network:
    """A synchronous message-passing network of :class:`Processor` objects."""

    def __init__(self, strict_links: bool = True) -> None:
        self.processors: Dict[NodeId, Processor] = {}
        #: Adjacency: one set of linked neighbours per current processor.
        self._adjacency: Dict[NodeId, Set[NodeId]] = {}
        self._outbox: List[Message] = []
        self._inbox: Deque[Message] = deque()
        self.metrics = NetworkMetrics()
        #: When True, sending a message between unlinked processors raises.
        self.strict_links = strict_links
        #: Number of processors ever added (message sizing's ``n``).  Counted
        #: per addition, so removals never shrink it; the distributed healer
        #: cross-checks it against the engine's ``nodes_ever``.
        self.n_ever = 0

    # ------------------------------------------------------------------ #
    # topology management
    # ------------------------------------------------------------------ #
    def add_processor(self, node: NodeId) -> Processor:
        """Create (or return) the processor with identifier ``node``."""
        if node not in self.processors:
            self.processors[node] = Processor(node)
            self._adjacency[node] = set()
            self.n_ever += 1
        return self.processors[node]

    def remove_processor(self, node: NodeId) -> None:
        """Remove a processor and all its links (the adversary's deletion)."""
        if node not in self.processors:
            raise UnknownNodeError(node, "remove_processor")
        del self.processors[node]
        for neighbor in self._adjacency.pop(node, ()):
            self._adjacency[neighbor].discard(node)

    def has_processor(self, node: NodeId) -> bool:
        """True when ``node`` currently has a processor."""
        return node in self.processors

    def connect(self, u: NodeId, v: NodeId) -> None:
        """Create a bidirectional link between two existing processors."""
        if u == v:
            return
        if u not in self.processors or v not in self.processors:
            raise UnknownNodeError(u if u not in self.processors else v, "connect")
        self._adjacency[u].add(v)
        self._adjacency[v].add(u)

    def disconnect(self, u: NodeId, v: NodeId) -> None:
        """Drop the link between ``u`` and ``v`` if it exists (dead ends tolerated)."""
        adj_u = self._adjacency.get(u)
        if adj_u is not None:
            adj_u.discard(v)
        adj_v = self._adjacency.get(v)
        if adj_v is not None:
            adj_v.discard(u)

    def are_linked(self, u: NodeId, v: NodeId) -> bool:
        """True when a link currently exists between ``u`` and ``v``."""
        return v in self._adjacency.get(u, ())

    def num_links(self) -> int:
        """Number of current links (O(n) sum of neighbour-set sizes)."""
        return sum(len(neighbors) for neighbors in self._adjacency.values()) // 2

    def links(self) -> Set[Tuple[NodeId, NodeId]]:
        """Return the current link set as canonically ordered tuples (inspection only).

        Tuple endpoints are ordered by :class:`repro.core.ports.NodeKey`, the
        repository's relabeling-invariant total order on node identifiers.
        """
        result: Set[Tuple[NodeId, NodeId]] = set()
        for node, neighbors in self._adjacency.items():
            node_key = NodeKey(node)
            for other in neighbors:
                if node_key < NodeKey(other):
                    result.add((node, other))
        return result

    def neighbors(self, node: NodeId) -> List[NodeId]:
        """Current link neighbours of ``node``, in canonical :class:`NodeKey` order."""
        return sorted(self._adjacency.get(node, ()), key=NodeKey)

    # ------------------------------------------------------------------ #
    # per-repair accounting
    # ------------------------------------------------------------------ #
    def begin_repair(self) -> MetricsWindow:
        """Open a per-repair metrics window; all traffic until :meth:`end_repair` lands in it."""
        return self.metrics.begin_window()

    def end_repair(self) -> MetricsWindow:
        """Close the per-repair window and return its counters."""
        return self.metrics.end_window()

    # ------------------------------------------------------------------ #
    # message passing
    # ------------------------------------------------------------------ #
    def send(self, message: Message) -> None:
        """Queue a message for delivery in the next round.

        In strict mode the sender and receiver must currently be linked —
        the paper's model only lets processors talk to their immediate
        neighbours (names of other vertices may be *carried* in messages,
        but not used as direct destinations).
        """
        if message.sender not in self.processors:
            raise ProtocolError(f"sender {message.sender!r} does not exist")
        if message.receiver not in self.processors:
            raise ProtocolError(f"receiver {message.receiver!r} does not exist")
        if (
            self.strict_links
            and message.sender != message.receiver
            and not self.are_linked(message.sender, message.receiver)
        ):
            raise ProtocolError(
                f"{message.kind} from {message.sender!r} to {message.receiver!r} "
                "would travel between unlinked processors"
            )
        self._outbox.append(message)
        self.metrics.record_message(
            sender=message.sender,
            kind=message.kind,
            bits=message.size_bits(max(self.n_ever, 2)),
        )

    def deliver_round(self) -> int:
        """Deliver every queued message to its receiver; returns how many were delivered."""
        delivered = 0
        batch, self._outbox = self._outbox, []
        self.metrics.record_rounds(1)
        for message in batch:
            processor = self.processors.get(message.receiver)
            if processor is None:
                continue  # receiver died mid-round; the paper assumes one attack per round
            processor.receive(message)
            delivered += 1
        return delivered

    def run_until_quiet(self, max_rounds: int = 10_000) -> int:
        """Deliver rounds until no messages remain in flight; returns rounds used."""
        rounds = 0
        while self._outbox:
            if rounds >= max_rounds:
                raise ProtocolError(f"protocol did not quiesce within {max_rounds} rounds")
            self.deliver_round()
            rounds += 1
        return rounds

    @property
    def pending_messages(self) -> int:
        """Messages queued for the next round."""
        return len(self._outbox)
