"""Synchronous round-based message-passing network.

This is the substrate replacing the paper's physical peer-to-peer network
(documented substitution in DESIGN.md): processors are Python objects, links
are entries of an adjacency structure, and time advances in synchronous
rounds — every message sent in round ``r`` is delivered at the start of round
``r + 1``, matching the paper's cost model where a message takes at most one
time unit to traverse an edge and local computation is free.

The network enforces that messages only travel along existing links (or
links being created by the repair itself, which the protocol registers
before use), and keeps the per-node and global counters that Lemma 4 bounds.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Callable, Deque, Dict, Iterable, List, Optional, Set, Tuple

from ..core.errors import ProtocolError, UnknownNodeError
from ..core.ports import NodeId
from .messages import Message
from .metrics import NetworkMetrics
from .processor import Processor

__all__ = ["Network"]


class Network:
    """A synchronous message-passing network of :class:`Processor` objects."""

    def __init__(self, strict_links: bool = True) -> None:
        self.processors: Dict[NodeId, Processor] = {}
        self._links: Set[frozenset] = set()
        self._outbox: List[Message] = []
        self._inbox: Deque[Message] = deque()
        self.metrics = NetworkMetrics()
        #: When True, sending a message between unlinked processors raises.
        self.strict_links = strict_links
        #: Number of nodes ever seen, kept by the simulator for message sizing.
        self.n_ever = 0

    # ------------------------------------------------------------------ #
    # topology management
    # ------------------------------------------------------------------ #
    def add_processor(self, node: NodeId) -> Processor:
        """Create (or return) the processor with identifier ``node``."""
        if node not in self.processors:
            self.processors[node] = Processor(node)
            self.n_ever = max(self.n_ever, len(self.processors))
        return self.processors[node]

    def remove_processor(self, node: NodeId) -> None:
        """Remove a processor and all its links (the adversary's deletion)."""
        if node not in self.processors:
            raise UnknownNodeError(node, "remove_processor")
        del self.processors[node]
        self._links = {link for link in self._links if node not in link}

    def has_processor(self, node: NodeId) -> bool:
        """True when ``node`` currently has a processor."""
        return node in self.processors

    def connect(self, u: NodeId, v: NodeId) -> None:
        """Create a bidirectional link between two existing processors."""
        if u == v:
            return
        if u not in self.processors or v not in self.processors:
            raise UnknownNodeError(u if u not in self.processors else v, "connect")
        self._links.add(frozenset((u, v)))

    def disconnect(self, u: NodeId, v: NodeId) -> None:
        """Drop the link between ``u`` and ``v`` if it exists."""
        self._links.discard(frozenset((u, v)))

    def are_linked(self, u: NodeId, v: NodeId) -> bool:
        """True when a link currently exists between ``u`` and ``v``."""
        return frozenset((u, v)) in self._links

    def links(self) -> Set[Tuple[NodeId, NodeId]]:
        """Return the current link set as ordered tuples (for inspection)."""
        return {tuple(sorted(link, key=lambda n: (type(n).__name__, repr(n)))) for link in self._links}

    def neighbors(self, node: NodeId) -> List[NodeId]:
        """Current link neighbours of ``node``."""
        result = []
        for link in self._links:
            if node in link:
                (other,) = set(link) - {node}
                result.append(other)
        return sorted(result, key=lambda n: (type(n).__name__, repr(n)))

    # ------------------------------------------------------------------ #
    # message passing
    # ------------------------------------------------------------------ #
    def send(self, message: Message) -> None:
        """Queue a message for delivery in the next round.

        In strict mode the sender and receiver must currently be linked —
        the paper's model only lets processors talk to their immediate
        neighbours (names of other vertices may be *carried* in messages,
        but not used as direct destinations).
        """
        if message.sender not in self.processors:
            raise ProtocolError(f"sender {message.sender!r} does not exist")
        if message.receiver not in self.processors:
            raise ProtocolError(f"receiver {message.receiver!r} does not exist")
        if (
            self.strict_links
            and message.sender != message.receiver
            and not self.are_linked(message.sender, message.receiver)
        ):
            raise ProtocolError(
                f"{message.kind} from {message.sender!r} to {message.receiver!r} "
                "would travel between unlinked processors"
            )
        self._outbox.append(message)
        self.metrics.record_message(
            sender=message.sender,
            kind=message.kind,
            bits=message.size_bits(max(self.n_ever, 2)),
        )

    def deliver_round(self) -> int:
        """Deliver every queued message to its receiver; returns how many were delivered."""
        delivered = 0
        batch, self._outbox = self._outbox, []
        self.metrics.record_rounds(1)
        for message in batch:
            processor = self.processors.get(message.receiver)
            if processor is None:
                continue  # receiver died mid-round; the paper assumes one attack per round
            processor.receive(message)
            delivered += 1
        return delivered

    def run_until_quiet(self, max_rounds: int = 10_000) -> int:
        """Deliver rounds until no messages remain in flight; returns rounds used."""
        rounds = 0
        while self._outbox:
            if rounds >= max_rounds:
                raise ProtocolError(f"protocol did not quiesce within {max_rounds} rounds")
            self.deliver_round()
            rounds += 1
        return rounds

    @property
    def pending_messages(self) -> int:
        """Messages queued for the next round."""
        return len(self._outbox)
