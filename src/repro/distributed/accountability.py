"""Accountable byzantine detection: transcripts, accusations and ground truth.

Byzantine payload faults (see :mod:`repro.distributed.faults`) make
processors *lie* — corrupt ``PieceSummary`` descriptors, doctored
``Digest`` chunks, equivocated ``HelperAssignment``\\ s.  Detection is
message-native: a processor accuses a peer only from messages it
physically received, and every accusation carries the evidence — the
conflicting message pair (or the single message whose seal/checksum does
not match its payload).  This module holds the two ledgers involved, with
a deliberate split mirroring the engine-oracle split of
:mod:`repro.distributed.simulator`:

* :class:`AccountabilityTranscript` — the **protocol-side** artifact.  It
  is built exclusively from received messages; nothing in it requires
  global knowledge.  In the spirit of pod-style accountable transcripts,
  any third party replaying the evidence pairs can re-derive each verdict.
* :class:`InjectionLog` — the **oracle-side** ground truth.  The fault
  layer records which lies it actually injected and who they reached, so
  experiments and perf gates can score the transcript (detection rate,
  false accusations, containment radius) without the protocol ever
  reading this log.

The measured quantities derived here:

* **containment radius** of a byzantine processor = how many distinct
  processors one of its corrupted payloads *reached* before (and
  including when) it was detected, i.e. ``len(touched[accused])``;
* **detection latency** = rounds between the first delivered lie and the
  first accusation naming that processor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..core.ports import NodeId
from .messages import Message

__all__ = ["Accusation", "AccountabilityTranscript", "InjectionLog"]


@dataclass(frozen=True)
class Accusation:
    """One verdict: ``reporter`` names ``accused``, with message evidence.

    ``evidence`` is the message pair whose payloads contradict each other
    (equivocation / forgery caught by a cross-witness) or the single
    message whose seal or descriptor checksum fails verification
    (post-hoc payload corruption).  The messages are the protocol's proof:
    they were physically delivered to the reporter.
    """

    accused: NodeId
    reporter: NodeId
    reason: str
    evidence: Tuple[Message, ...]
    round: int

    def describe(self) -> str:
        kinds = ",".join(m.kind for m in self.evidence)
        return (
            f"round {self.round}: {self.reporter!r} accuses {self.accused!r}"
            f" ({self.reason}; evidence: {kinds})"
        )


@dataclass
class AccountabilityTranscript:
    """Protocol-side ledger of accusations, append-only during a run."""

    accusations: List[Accusation] = field(default_factory=list)
    first_accusation_round: Dict[NodeId, int] = field(default_factory=dict)
    _reporters: Dict[NodeId, Set[NodeId]] = field(default_factory=dict)

    def record(
        self,
        *,
        accused: NodeId,
        reporter: NodeId,
        reason: str,
        evidence: Tuple[Message, ...],
        round: int,
    ) -> Accusation:
        accusation = Accusation(
            accused=accused,
            reporter=reporter,
            reason=reason,
            evidence=evidence,
            round=round,
        )
        self.accusations.append(accusation)
        self.first_accusation_round.setdefault(accused, round)
        self._reporters.setdefault(accused, set()).add(reporter)
        return accusation

    @property
    def accused(self) -> Set[NodeId]:
        return set(self.first_accusation_round)

    def reporters(self, accused: NodeId) -> Set[NodeId]:
        return set(self._reporters.get(accused, set()))

    def against(self, accused: NodeId) -> List[Accusation]:
        return [a for a in self.accusations if a.accused == accused]

    def __len__(self) -> int:
        return len(self.accusations)

    def __bool__(self) -> bool:
        # An empty transcript is still a transcript; truthiness follows
        # "has any accusation" for convenient `assert not transcript` checks.
        return bool(self.accusations)


@dataclass
class InjectionLog:
    """Oracle-side ground truth of injected lies; never read by protocol code.

    The fault layer (and byzantine processors' own forging hook) notes
    every corrupted payload it sends and every receiver such a payload
    actually reaches.  Gates and experiment rows compare the
    :class:`AccountabilityTranscript` against this log; the processors do
    not know it exists.
    """

    lies_sent: Dict[NodeId, int] = field(default_factory=dict)
    lies_delivered: Dict[NodeId, int] = field(default_factory=dict)
    touched: Dict[NodeId, Set[NodeId]] = field(default_factory=dict)
    first_lie_round: Dict[NodeId, int] = field(default_factory=dict)

    def note_sent(self, origin: NodeId, round: int) -> None:
        self.lies_sent[origin] = self.lies_sent.get(origin, 0) + 1
        self.first_lie_round.setdefault(origin, round)

    def note_delivered(self, origin: NodeId, receiver: NodeId) -> None:
        self.lies_delivered[origin] = self.lies_delivered.get(origin, 0) + 1
        self.touched.setdefault(origin, set()).add(receiver)

    @property
    def origins_with_delivered_lies(self) -> Set[NodeId]:
        return {origin for origin, count in self.lies_delivered.items() if count}

    @property
    def total_sent(self) -> int:
        return sum(self.lies_sent.values())

    @property
    def total_delivered(self) -> int:
        return sum(self.lies_delivered.values())

    def containment_radius(self, origin: NodeId) -> int:
        return len(self.touched.get(origin, set()))

    def detection_latency(
        self, origin: NodeId, transcript: "AccountabilityTranscript"
    ) -> Optional[int]:
        caught = transcript.first_accusation_round.get(origin)
        lied = self.first_lie_round.get(origin)
        if caught is None or lied is None:
            return None
        return max(0, caught - lied)
