"""The message-native merge: healed structure computed from message payloads.

Until PR 4 the distributed simulator replayed the *communication pattern* of
a repair faithfully but took the *structural outcome* (which helper nodes
exist, who simulates them, the shape of the merged reconstruction tree) from
the embedded centralized engine — processors could never disagree.  This
module removes that substitution:

* :class:`PieceSummary` is the O(1)-word descriptor of one surviving
  complete tree — exactly the information the paper's ``FindPrRoots`` probes
  collect (root identity, leaf count, height, representative port).  It is
  the payload of :class:`~repro.distributed.messages.PrimaryRootReport` /
  :class:`~repro.distributed.messages.PrimaryRootList` messages, so the
  merge leader only ever knows the pieces whose descriptors actually
  *arrived*.

* :func:`plan_strip` is the read-only twin of
  :func:`repro.core.reconstruction_tree.extract_surviving_complete_trees`:
  it inspects an affected RT *before* the deletion is applied and lays out
  the repair's local knowledge — which complete pieces survive (as
  summaries), which helpers are released ("marked red"), and which virtual
  edges break.  Each item is attributed to the processor that knows it
  locally, so the protocol can hand every participant exactly its own
  pre-failure knowledge and nothing more.

* :func:`merge_summaries` replays ``ComputeHaft`` (Algorithm A.9) — the
  binary-addition combine plus the representative mechanism — purely on
  summaries, producing a :class:`MergeOutcome`: the new helper nodes (with
  simulating port, children, parent, representative) and the healed-graph
  link sources they imply.  Given the full summary set it is provably
  identical to the engine's :func:`~repro.core.reconstruction_tree.compute_haft`
  (both sort by ``(num_leaves, port_order_key(representative))`` and combine
  identically); given a *partial* set — messages were dropped — it yields a
  self-consistent but divergent structure, which is what the simulator's
  reconvergence loop detects and repairs.

The centralized engine is retained only as an *oracle*: the equivalence
tests assert that the message-native structure converges to it.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..core.ports import NodeId, Port, port_order_key
from ..core.reconstruction_tree import (
    ReconstructionTree,
    RTHelper,
    RTLeaf,
    RTNode,
    representative_of,
)
from .messages import payload_checksum

__all__ = [
    "PieceSummary",
    "StripPlan",
    "MergedHelper",
    "MergeOutcome",
    "plan_strip",
    "merge_summaries",
    "link_source_key",
    "real_source_key",
    "trivial_summary",
]

#: Identifier words one serialized :class:`PieceSummary` occupies in a
#: message (root port, representative port, leaf count, height).
SUMMARY_WORDS = 4


def link_source_key(parent_port: Port, child_port: Port) -> Tuple[str, Port, Port]:
    """The source key a virtual RT edge contributes to a healed-graph link.

    Mirrors the engine's edge-multiplicity bookkeeping: one source per
    parent-child edge of a reconstruction tree, identified by the ports of
    the two virtual nodes (a helper's ``simulated_by`` or a leaf's port).
    """
    return ("rt", parent_port, child_port)


def real_source_key(u: NodeId, v: NodeId) -> Tuple[str, FrozenSet[NodeId]]:
    """The source key a surviving real ``G'`` edge contributes to its link."""
    return ("real", frozenset((u, v)))


@dataclass(frozen=True)
class PieceSummary:
    """O(1)-word descriptor of one surviving complete tree (a primary root)."""

    #: Port identifying the piece's root: a leaf's port or a helper's
    #: ``simulated_by`` port.
    root_port: Port
    #: True when the root is a leaf (trivial single-leaf piece).
    root_is_leaf: bool
    #: Number of leaves of the piece (a power of two — the piece is complete).
    num_leaves: int
    #: Height of the piece (0 for a leaf).
    height: int
    #: The piece's representative leaf port (the one free processor that will
    #: simulate the next helper created on top of it).
    representative: Port
    #: Content checksum, always (re)computed by ``__post_init__``.
    #: ``compare=False`` keeps equality/hash purely semantic; ``repr=False``
    #: keeps it out of the message seals (which cover payload reprs).  The
    #: byzantine fault layer corrupts a descriptor by overwriting fields
    #: while *retaining* the honest checksum — the mismatch is what any
    #: receiver can detect locally.  A byzantine *author* instead reseals a
    #: self-consistent lie (valid checksum), caught only by cross-witnessing.
    checksum: int = field(default=0, compare=False, repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "checksum", self.content_checksum())

    def content_checksum(self) -> int:
        return payload_checksum(
            "PieceSummary",
            self.root_port,
            self.root_is_leaf,
            self.num_leaves,
            self.height,
            self.representative,
        )

    def checksum_valid(self) -> bool:
        # Validity is immutable (frozen dataclass), so cache the verdict:
        # an honest descriptor relayed across many hops hashes once.
        cached = self.__dict__.get("_checksum_ok")
        if cached is None:
            cached = self.checksum == self.content_checksum()
            object.__setattr__(self, "_checksum_ok", cached)
        return cached


def trivial_summary(neighbor: NodeId, victim: NodeId) -> PieceSummary:
    """The single-leaf piece a directly-connected neighbour contributes."""
    port = Port(neighbor, victim)
    return PieceSummary(
        root_port=port, root_is_leaf=True, num_leaves=1, height=0, representative=port
    )


def summary_of(node: RTNode) -> PieceSummary:
    """Summarize a complete subtree root (reads only O(1) cached counters)."""
    if isinstance(node, RTLeaf):
        return PieceSummary(
            root_port=node.port,
            root_is_leaf=True,
            num_leaves=1,
            height=0,
            representative=node.port,
        )
    return PieceSummary(
        root_port=node.simulated_by,
        root_is_leaf=False,
        num_leaves=node.num_leaves,
        height=node.height,
        representative=representative_of(node).port,
    )


@dataclass
class StripPlan:
    """Read-only strip of one affected RT: the repair's pre-failure knowledge."""

    #: Summaries of the surviving complete pieces, in discovery order.
    summaries: List[PieceSummary] = field(default_factory=list)
    #: For each summary, the index into the RT's probe path of the spine
    #: processor that reports it (deeper pieces need the probe to travel
    #: further before their descriptor starts flowing back).
    spine_positions: List[int] = field(default_factory=list)
    #: Ports whose helper is released ("marked red"), grouped by the owning
    #: processor — releasing is a local action triggered by the probe.
    released_by_processor: Dict[NodeId, List[Port]] = field(default_factory=dict)
    #: Destroyed virtual edges as (source key, endpoint, endpoint) triples,
    #: grouped by the surviving processor that owns the parent side and drops
    #: the link source locally.  Edges incident to the dead processor are
    #: omitted: its removal purges them wholesale.
    glue_by_processor: Dict[NodeId, List[Tuple[Tuple, NodeId, NodeId]]] = field(
        default_factory=dict
    )


def _node_port(node: RTNode) -> Port:
    return node.port if isinstance(node, RTLeaf) else node.simulated_by


def plan_strip(
    rt: ReconstructionTree,
    dead_processor: NodeId,
    dead_nodes: Sequence[RTNode],
    probe_path: Sequence[NodeId],
) -> StripPlan:
    """Lay out the strip of one affected RT without mutating it.

    Mirrors :func:`extract_surviving_complete_trees` (same traversal, same
    completeness test, same released set) but only *describes* the outcome:
    the engine still performs the real dismantling when the oracle runs.
    ``probe_path`` is the RT's right spine; every discovered item is
    attributed to a spine position / owning processor so the protocol can
    distribute the knowledge.
    """
    plan = StripPlan()
    path_index = {proc: i for i, proc in enumerate(probe_path)}
    last_position = max(len(probe_path) - 1, 0)

    def position_of(processor: NodeId, depth: int) -> int:
        if processor in path_index:
            return path_index[processor]
        return min(depth, last_position)

    def add_piece(node: RTNode, depth: int) -> None:
        plan.summaries.append(summary_of(node))
        plan.spine_positions.append(position_of(node.processor, depth))

    def release(helper: RTHelper) -> None:
        if helper.processor != dead_processor:
            plan.released_by_processor.setdefault(helper.processor, []).append(
                helper.simulated_by
            )

    def record_cut(parent: RTNode, child: RTNode) -> None:
        p, c = parent.processor, child.processor
        if p == c or dead_processor in (p, c):
            return  # self-projections carry no link; dead-incident links are purged
        key = link_source_key(_node_port(parent), _node_port(child))
        plan.glue_by_processor.setdefault(p, []).append((key, p, c))

    def depth_of(node: RTNode) -> int:
        depth = 0
        cursor = node.parent
        while cursor is not None:
            depth += 1
            cursor = cursor.parent
        return depth

    def collect_strip(node: RTNode, depth: int) -> None:
        while True:
            if node.num_leaves == (1 << node.height):
                add_piece(node, depth)
                return
            release(node)
            if node.left is not None:
                record_cut(node, node.left)
                add_piece(node.left, depth)
            right = node.right
            if right is None:
                return
            record_cut(node, right)
            node = right
            depth += 1

    root = rt.root
    if isinstance(root, RTLeaf):
        if root.port.processor != dead_processor:
            add_piece(root, 0)
        return plan

    if not dead_nodes:
        collect_strip(root, 0)
        return plan

    dead_ids = {id(dead) for dead in dead_nodes}
    broken: Dict[int, RTNode] = {id(dead): dead for dead in dead_nodes}
    for dead in dead_nodes:
        cursor = dead.parent
        while cursor is not None and id(cursor) not in broken:
            broken[id(cursor)] = cursor
            cursor = cursor.parent
    for node in broken.values():
        if isinstance(node, RTLeaf):
            continue
        node_depth = depth_of(node)
        for child in (node.left, node.right):
            if child is not None:
                record_cut(node, child)
                if id(child) not in broken:
                    collect_strip(child, node_depth + 1)
        if id(node) not in dead_ids:
            release(node)
    return plan


# --------------------------------------------------------------------------- #
# ComputeHaft on summaries (the leader's local computation)
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class MergedHelper:
    """One helper node the merge creates, described entirely by ports."""

    #: Port whose processor simulates the helper.
    port: Port
    left_port: Port
    left_is_leaf: bool
    right_port: Port
    right_is_leaf: bool
    #: ``None`` for the root of the merged haft; filled for every other helper.
    parent_port: Optional[Port]
    height: int
    num_leaves: int
    #: Representative leaf port of the helper's subtree.
    representative: Port


@dataclass
class MergeOutcome:
    """Everything a repair must apply, derived purely from received summaries."""

    victim: NodeId
    #: The summaries this outcome was computed from (the leader's knowledge).
    summaries: Tuple[PieceSummary, ...]
    #: New helpers in creation order (matching the engine's ``compute_haft``).
    helpers: List[MergedHelper] = field(default_factory=list)
    #: Root of the merged haft (a piece root or a new helper port).
    root_port: Optional[Port] = None
    root_is_leaf: bool = False
    #: New RT parent for every piece root that gained one:
    #: ``(child_port, child_is_leaf, parent_port)``.
    parent_updates: List[Tuple[Port, bool, Port]] = field(default_factory=list)

    def helper_ports(self) -> Set[Port]:
        return {helper.port for helper in self.helpers}

    def link_sources(self) -> List[Tuple[Tuple, NodeId, NodeId]]:
        """The healed-graph link sources the new helpers' child edges imply."""
        sources: List[Tuple[Tuple, NodeId, NodeId]] = []
        for helper in self.helpers:
            for child_port in (helper.left_port, helper.right_port):
                u, v = helper.port.processor, child_port.processor
                if u != v:
                    sources.append((link_source_key(helper.port, child_port), u, v))
        return sources


@dataclass
class _Piece:
    """Mutable merge-time wrapper around a summary or a freshly made helper."""

    port: Port
    is_leaf: bool
    num_leaves: int
    height: int
    representative: Port


def merge_summaries(victim: NodeId, summaries: Sequence[PieceSummary]) -> MergeOutcome:
    """Run ``ComputeHaft`` on piece descriptors alone (Algorithm A.9).

    This is the leader anchor's *local* computation (local work is free in
    the paper's model): given the primary-root descriptors that reached it,
    produce the complete merge outcome — every new helper with its simulating
    port, children, parent and representative, ready to disseminate as
    :class:`~repro.distributed.messages.HelperAssignment` /
    :class:`~repro.distributed.messages.ParentUpdate` messages.

    The combine replicates :func:`repro.core.reconstruction_tree.compute_haft`
    step for step — same ``(num_leaves, port_order_key(representative))``
    merge order, same equal-size binary-addition phase, same smallest-first
    chain — so identical inputs yield the identical structure.
    """
    outcome = MergeOutcome(victim=victim, summaries=tuple(summaries))
    if not summaries:
        return outcome
    pieces = [
        _Piece(
            port=s.root_port,
            is_leaf=s.root_is_leaf,
            num_leaves=s.num_leaves,
            height=s.height,
            representative=s.representative,
        )
        for s in dict.fromkeys(summaries)  # idempotent under retransmission
    ]

    def sort_key(piece: _Piece) -> Tuple[int, tuple]:
        return (piece.num_leaves, port_order_key(piece.representative))

    # A leaf and the helper simulated by the same port are *distinct* virtual
    # nodes (a helper is always an ancestor of its own leaf), so parent
    # lookups key on (port, is_leaf), never on the port alone.
    parent_of: Dict[Tuple[Port, bool], Port] = {}
    helper_records: List[Tuple[Port, _Piece, _Piece, _Piece]] = []

    def make_helper(a: _Piece, b: _Piece) -> _Piece:
        merged = _Piece(
            port=a.representative,
            is_leaf=False,
            num_leaves=a.num_leaves + b.num_leaves,
            height=1 + max(a.height, b.height),
            representative=b.representative,
        )
        parent_of[(a.port, a.is_leaf)] = merged.port
        parent_of[(b.port, b.is_leaf)] = merged.port
        helper_records.append((merged.port, a, b, merged))
        return merged

    forest = sorted(pieces, key=sort_key)
    if len(forest) > 1:
        # Phase 1 — combine equal-sized complete trees (binary-addition carries).
        i = 0
        while i < len(forest) - 1:
            a, b = forest[i], forest[i + 1]
            if a.num_leaves == b.num_leaves:
                merged = make_helper(a, b)
                del forest[i : i + 2]
                bisect.insort_left(forest, merged, key=sort_key)
                i = max(i - 1, 0)
            else:
                i += 1
        # Phase 2 — chain distinct sizes smallest-first (larger tree on the left).
        root = forest[0]
        for tree in forest[1:]:
            root = make_helper(tree, root)
    else:
        root = forest[0]

    for port, left, right, merged in helper_records:
        outcome.helpers.append(
            MergedHelper(
                port=port,
                left_port=left.port,
                left_is_leaf=left.is_leaf,
                right_port=right.port,
                right_is_leaf=right.is_leaf,
                parent_port=parent_of.get((port, False)),
                height=merged.height,
                num_leaves=merged.num_leaves,
                representative=merged.representative,
            )
        )
    for piece in pieces:
        parent = parent_of.get((piece.port, piece.is_leaf))
        if parent is not None:
            outcome.parent_updates.append((piece.port, piece.is_leaf, parent))
    outcome.root_port = root.port
    outcome.root_is_leaf = root.is_leaf
    return outcome
