"""Fault injection for the message-passing substrate.

The paper's model assumes reliable synchronous links; self-stabilizing work
(Devismes et al.'s silent protocols, the PODS heterogeneous-overlay line)
treats the interesting regime instead: messages may be *dropped*, *delayed*
or *reordered*, and the protocol must detect the resulting inconsistency and
reconverge.  This module provides the per-link fault policies the
:class:`~repro.distributed.network.Network` applies at delivery time:

* :class:`LinkFaultPolicy` — probabilities for one link (or the default),
* :class:`ByzantinePolicy` — probabilities that one *processor* lies: it
  corrupts outgoing piece descriptors, doctors digest chunks, flips probe
  status claims, equivocates helper assignments, or authors forged (but
  validly-sealed) digests.  Fault-layer lies keep the honest payload seal
  (the adversary cannot forge the author's MAC), so receivers detect them
  locally; authored forgeries are caught by cross-witnessing in
  :mod:`repro.distributed.processor`.
* :class:`FaultSchedule` — a seeded RNG plus policies; deterministic given
  ``(seed, message sequence)``, so every faulty run is replayable.  The
  byzantine axis draws from a *separate* RNG stream, so delivery-fault
  decisions are bit-identical with or without byzantine processors.
* :func:`fault_schedule` — named presets: the delivery-only
  :data:`DELIVERY_PRESETS` (``"drop"``, ``"delay"``, ``"reorder"``,
  ``"chaos"``) used by the E11/E12 experiments, the CI fault-schedule
  smoke and the tests, plus the byzantine presets (``"byzantine"``,
  ``"byzantine-chaos"``) used by E13 and the ``byzantine_containment``
  perf gate.
* :class:`FaultSpec` — the typed-config entry point unifying preset
  strings, explicit :class:`FaultSchedule` objects and comma-separated
  CLI flag values (:meth:`FaultSpec.parse` / :meth:`FaultSpec.parse_list`)
  under one value the experiment configs, the sweeps, the perf-report
  flags and the healer service all accept.

Faults apply only to protocol traffic travelling through
:meth:`Network.deliver_round` (delivery faults) or entering
:meth:`Network.send` (byzantine payload corruption); the model-level
notifications of Figure 1 (deletion/insertion awareness) are delivered out
of band and stay exempt, matching the paper's assumption that the
adversary's moves themselves are observed reliably.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.ports import NodeId
from .messages import Message, PortDigest

__all__ = [
    "LinkFaultPolicy",
    "ByzantinePolicy",
    "FaultSchedule",
    "FaultSpec",
    "fault_schedule",
    "FAULT_PRESETS",
    "DELIVERY_PRESETS",
    "BYZANTINE_PRESETS",
    "ByzantineSpec",
]


@dataclass(frozen=True)
class LinkFaultPolicy:
    """Fault probabilities for one link (all zero = reliable link)."""

    #: Probability that a message on this link is silently dropped.
    drop: float = 0.0
    #: Probability that a message is delayed by 1..``max_delay`` extra rounds
    #: (judged once, at send time — the delay is bounded by ``max_delay``).
    delay: float = 0.0
    #: Largest delay in rounds a delayed message can suffer.
    max_delay: int = 3
    #: Probability that a message on this link loses its delivery slot: all
    #: such messages of a round are delivered in a shuffled order relative
    #: to each other (within-round reordering).
    reorder: float = 0.0

    def __post_init__(self) -> None:
        for name in ("drop", "delay", "reorder"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} probability must lie in [0, 1], got {value}")
        if self.max_delay < 1:
            raise ValueError("max_delay must be at least 1 round")

    @property
    def is_reliable(self) -> bool:
        return self.drop == 0.0 and self.delay == 0.0 and self.reorder == 0.0


RELIABLE = LinkFaultPolicy()


@dataclass(frozen=True)
class ByzantinePolicy:
    """Lie probabilities for one processor (all zero = honest).

    The first four modes are *payload corruptions*: the fault layer mutates
    an already-authored message while retaining the honest seal/checksum
    tags (modelling an adversary that controls the processor's output but
    cannot forge MACs) — any receiver detects these locally.  ``forge`` is
    the stronger *authored lie*: the processor itself constructs a
    validly-sealed digest vouching a false descriptor for a piece it owns;
    only a cross-witness holding the true copy can catch that one.
    """

    #: Probability an outgoing report/list/digest's piece descriptors are
    #: corrupted (wrong leaf count, height, or representative port).
    corrupt_pieces: float = 0.0
    #: Probability an outgoing spine digest flips its probed/stripped claims.
    lie_status: float = 0.0
    #: Probability an outgoing record digest's Table 1 summaries are doctored.
    lie_records: float = 0.0
    #: Probability an outgoing helper assignment / parent update is mutated
    #: per copy — different recipients receive different payloads.
    equivocate: float = 0.0
    #: Probability per recovery sweep that the processor authors a forged,
    #: validly-sealed digest about one of its own confirmed pieces.
    forge: float = 0.0

    def __post_init__(self) -> None:
        for name in ("corrupt_pieces", "lie_status", "lie_records", "equivocate", "forge"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} probability must lie in [0, 1], got {value}")

    @property
    def is_honest(self) -> bool:
        return (
            self.corrupt_pieces == 0.0
            and self.lie_status == 0.0
            and self.lie_records == 0.0
            and self.equivocate == 0.0
            and self.forge == 0.0
        )


HONEST = ByzantinePolicy()


@dataclass(frozen=True)
class ByzantineSpec:
    """Preset-level byzantine configuration: population fraction + policy."""

    fraction: float
    policy: ByzantinePolicy


class FaultSchedule:
    """Seeded per-link fault decisions, deterministic and replayable.

    Parameters
    ----------
    default:
        Policy applied to links without a specific entry.
    per_link:
        Optional overrides keyed by the (unordered) endpoint pair.
    seed:
        RNG seed; the same seed and message sequence reproduce the same
        drops/delays/shuffles exactly, which is what makes the CI
        fault-schedule smoke and the reconvergence tests deterministic.
    byzantine:
        Optional explicit per-processor byzantine policies.
    byzantine_fraction / byzantine_policy:
        Population-level byzantine axis: each processor not named in
        ``byzantine`` is byzantine with ``byzantine_fraction`` probability
        (a stable seeded hash of its id — order-independent and
        deterministic) and, if so, lies per ``byzantine_policy``.
    """

    def __init__(
        self,
        default: LinkFaultPolicy = RELIABLE,
        per_link: Optional[Dict[Tuple[NodeId, NodeId], LinkFaultPolicy]] = None,
        seed: int = 0,
        name: str = "custom",
        byzantine: Optional[Dict[NodeId, ByzantinePolicy]] = None,
        byzantine_fraction: float = 0.0,
        byzantine_policy: Optional[ByzantinePolicy] = None,
    ) -> None:
        self.default = default
        self.per_link: Dict[FrozenSet[NodeId], LinkFaultPolicy] = {
            frozenset(pair): policy for pair, policy in (per_link or {}).items()
        }
        self.seed = seed
        self.name = name
        #: True when some policy can reorder at all — lets the network skip
        #: the per-round shuffle machinery entirely otherwise (judging a
        #: zero-probability reorder consumes no RNG, so skipping is exact).
        self.has_reorder = default.reorder > 0.0 or any(
            policy.reorder > 0.0 for policy in self.per_link.values()
        )
        #: True when some policy can drop/delay/reorder at all.  When every
        #: link is reliable (including the pure-byzantine presets, whose
        #: lies ride reliable links), each message's fate is "deliver" and
        #: ``judge`` consumes no RNG — which is what lets the network fold
        #: same-link messages into packed carriers without perturbing the
        #: fault replay (packing is disabled whenever this is True).
        self.has_delivery_faults = not default.is_reliable or any(
            not policy.is_reliable for policy in self.per_link.values()
        )
        self._rng = np.random.default_rng(seed)
        # Observability: how often each fault actually fired.
        self.dropped = 0
        self.delayed = 0
        self.reordered_batches = 0
        # Byzantine axis.  Lies draw from a *separate* RNG stream so the
        # delivery-fault decisions above are bit-identical with or without
        # byzantine processors (same seed => same drops/delays/shuffles).
        if not 0.0 <= byzantine_fraction <= 1.0:
            raise ValueError(
                f"byzantine_fraction must lie in [0, 1], got {byzantine_fraction}"
            )
        self.byzantine: Dict[NodeId, ByzantinePolicy] = dict(byzantine or {})
        self.byzantine_fraction = byzantine_fraction
        self.byzantine_policy = byzantine_policy if byzantine_policy is not None else HONEST
        self._byz_rng = np.random.default_rng([seed, 0xB12A])
        self._byz_cache: Dict[NodeId, bool] = {}
        self.corrupted = 0

    def policy_for(self, sender: NodeId, receiver: NodeId) -> LinkFaultPolicy:
        # Presets never set per-link overrides, so the common case skips the
        # per-message frozenset allocation entirely (RNG use is unchanged —
        # the returned policy decides that, not the lookup).
        if not self.per_link:
            return self.default
        return self.per_link.get(frozenset((sender, receiver)), self.default)

    def judge(self, sender: NodeId, receiver: NodeId) -> int:
        """Fate of one message: ``-1`` = drop, ``0`` = deliver now, ``k>0`` = delay ``k`` rounds."""
        policy = self.policy_for(sender, receiver)
        if policy.is_reliable:
            return 0
        roll = self._rng.random()
        if roll < policy.drop:
            self.dropped += 1
            return -1
        if roll < policy.drop + policy.delay:
            self.delayed += 1
            return int(self._rng.integers(1, policy.max_delay + 1))
        return 0

    def shuffle_round(self, links: "list[Tuple[NodeId, NodeId]]") -> Optional[np.ndarray]:
        """A permutation of this round's delivery order, or ``None``.

        ``links`` is the (sender, receiver) pair of each message in the
        batch.  Every message whose link's policy rolls a reorder loses its
        slot; the displaced messages are delivered in shuffled order among
        themselves, so reordering respects the per-link policies.
        """
        if len(links) < 2:
            return None
        movable = []
        for index, (sender, receiver) in enumerate(links):
            policy = self.policy_for(sender, receiver)
            if policy.reorder > 0.0 and self._rng.random() < policy.reorder:
                movable.append(index)
        if len(movable) < 2:
            return None
        self.reordered_batches += 1
        permutation = np.arange(len(links))
        permutation[movable] = permutation[self._rng.permutation(movable)]
        return permutation

    # ------------------------------------------------------------------ #
    # byzantine axis
    # ------------------------------------------------------------------ #
    @property
    def has_byzantine(self) -> bool:
        if any(not policy.is_honest for policy in self.byzantine.values()):
            return True
        return self.byzantine_fraction > 0.0 and not self.byzantine_policy.is_honest

    def is_byzantine(self, node: NodeId) -> bool:
        """Deterministic membership: explicit entry, else a stable seeded hash.

        The hash depends only on ``(seed, node)`` — not on query order or
        how many processors exist — so membership is replayable and two
        runs over different topologies agree on shared node ids.
        """
        cached = self._byz_cache.get(node)
        if cached is None:
            if node in self.byzantine:
                cached = not self.byzantine[node].is_honest
            elif self.byzantine_fraction > 0.0 and not self.byzantine_policy.is_honest:
                # blake2b, not crc32: crc's high bits are visibly biased on
                # short reprs (a whole 80-node population can miss a 0.2
                # fraction), while a cryptographic digest is uniform.
                digest = hashlib.blake2b(
                    repr((self.seed, node)).encode("utf-8"), digest_size=8
                ).digest()
                cached = (
                    int.from_bytes(digest, "big") / 2**64 < self.byzantine_fraction
                )
            else:
                cached = False
            self._byz_cache[node] = cached
        return cached

    def policy_for_processor(self, node: NodeId) -> ByzantinePolicy:
        explicit = self.byzantine.get(node)
        if explicit is not None:
            return explicit
        return self.byzantine_policy if self.is_byzantine(node) else HONEST

    def byz_roll(self, probability: float) -> bool:
        """One byzantine decision (consumes the byzantine RNG stream only)."""
        return probability > 0.0 and float(self._byz_rng.random()) < probability

    def corrupt_in_place(self, message: Message) -> Optional[str]:
        """Maybe corrupt one outgoing message of a byzantine sender.

        Returns the lie's reason string when a corruption fired (the
        network then tags the message's oracle-side ``byz_origin``), else
        ``None``.  Every corruption first reads ``message.seal`` — freezing
        the honest MAC — then mutates payload fields, so the lie is always
        locally detectable by the receiver; descriptor mutations likewise
        retain the author's content checksum.  Mutations always change
        semantic content (no silent no-ops), so an injected lie is an
        actual lie.
        """
        policy = self.policy_for_processor(message.sender)
        if policy.is_honest:
            return None
        kind = message.kind
        reason = None
        if kind in ("PrimaryRootReport", "PrimaryRootList"):
            if message.roots and self.byz_roll(policy.corrupt_pieces):
                _ = message.seal
                message.roots = self._corrupt_summaries(message.roots)
                reason = "corrupt-pieces"
        elif kind == "Digest":
            if message.records and self.byz_roll(policy.lie_records):
                _ = message.seal
                message.records = self._corrupt_records(message.records)
                reason = "lie-records"
            elif message.pieces and self.byz_roll(policy.corrupt_pieces):
                _ = message.seal
                message.pieces = self._corrupt_summaries(message.pieces)
                reason = "corrupt-pieces"
            elif (
                message.rt_index is not None
                and not message.ack
                and self.byz_roll(policy.lie_status)
            ):
                _ = message.seal
                message.probed = not message.probed
                message.stripped = not message.stripped
                reason = "lie-status"
        elif kind == "HelperAssignment":
            if self.byz_roll(policy.equivocate):
                # Judged per copy: different recipients of the "same"
                # assignment receive differently-mutated payloads.
                _ = message.seal
                message.num_leaves = message.num_leaves + 1 + int(self._byz_rng.integers(3))
                message.height += 1
                reason = "equivocate"
        elif kind == "ParentUpdate":
            if self.byz_roll(policy.equivocate):
                _ = message.seal
                message.epoch += 1
                message.child_is_helper = not message.child_is_helper
                reason = "equivocate"
        if reason is not None:
            self.corrupted += 1
            message.byz_origin = message.sender
        return reason

    def _corrupt_summaries(self, items: Sequence[object]) -> Tuple[object, ...]:
        """Corrupt one descriptor of the batch, retaining its honest checksum."""
        out = list(items)
        index = int(self._byz_rng.integers(len(out)))
        original = out[index]
        mode = int(self._byz_rng.integers(3))
        if mode == 2 and original.representative != original.root_port:
            fake = dataclasses.replace(original, representative=original.root_port)
        elif mode == 1:
            fake = dataclasses.replace(original, height=original.height + 1)
        else:
            fake = dataclasses.replace(original, num_leaves=original.num_leaves + 1)
        # ``replace`` recomputed the checksum over the lie; the adversary
        # cannot forge the author's tag, so restore the stale honest one.
        object.__setattr__(fake, "checksum", original.checksum)
        out[index] = fake
        return tuple(out)

    def _corrupt_records(self, records: Sequence[PortDigest]) -> Tuple[PortDigest, ...]:
        """Doctor one Table 1 record summary, retaining its honest checksum."""
        out = list(records)
        index = int(self._byz_rng.integers(len(out)))
        original = out[index]
        mode = int(self._byz_rng.integers(3))
        if mode == 0:
            fake = dataclasses.replace(original, helper_for_victim=not original.helper_for_victim)
        elif mode == 1:
            fake = dataclasses.replace(original, links_ok=not original.links_ok)
        else:
            fake = dataclasses.replace(
                original,
                rt_parent=None if original.rt_parent is not None else original.port,
            )
        object.__setattr__(fake, "checksum", original.checksum)
        out[index] = fake
        return tuple(out)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultSchedule({self.name!r}, seed={self.seed}, default={self.default})"


#: Delivery-only presets: the vocabulary shared by experiments E11/E12, the
#: CI fault-schedule matrix, the reconvergence tests and the oracle-equality
#: perf gates (which require every processor to be *honest* so the
#: message-built state can converge to the engine exactly).
DELIVERY_PRESETS: Dict[str, LinkFaultPolicy] = {
    "lossless": RELIABLE,
    "drop": LinkFaultPolicy(drop=0.15),
    "delay": LinkFaultPolicy(delay=0.25, max_delay=4),
    "reorder": LinkFaultPolicy(reorder=0.5),
    "chaos": LinkFaultPolicy(drop=0.1, delay=0.15, max_delay=3, reorder=0.3),
}

#: Lie mix used by the named byzantine presets.
_BYZANTINE_POLICY = ByzantinePolicy(
    corrupt_pieces=0.3,
    lie_status=0.15,
    lie_records=0.3,
    equivocate=0.25,
    forge=0.2,
)

#: Byzantine presets: population fraction + per-processor lie policy, keyed
#: by the same names as their :data:`FAULT_PRESETS` delivery entries.
BYZANTINE_PRESETS: Dict[str, ByzantineSpec] = {
    "byzantine": ByzantineSpec(fraction=0.2, policy=_BYZANTINE_POLICY),
    "byzantine-chaos": ByzantineSpec(fraction=0.2, policy=_BYZANTINE_POLICY),
}

#: Named presets: every delivery preset, plus the byzantine presets
#: (``"byzantine"`` lies over reliable links; ``"byzantine-chaos"`` combines
#: lies with the ``chaos`` delivery policy).  Experiments that score the
#: protocol against the engine *oracle* iterate :data:`DELIVERY_PRESETS`
#: instead — quarantining a liar leaves a deliberate, permanent divergence.
FAULT_PRESETS: Dict[str, LinkFaultPolicy] = {
    **DELIVERY_PRESETS,
    "byzantine": RELIABLE,
    "byzantine-chaos": DELIVERY_PRESETS["chaos"],
}


def fault_schedule(preset: str, seed: int = 0) -> Optional[FaultSchedule]:
    """Build the named preset's schedule (``None`` for ``"lossless"``)."""
    try:
        policy = FAULT_PRESETS[preset]
    except KeyError:
        raise ValueError(
            f"unknown fault preset {preset!r}; available: {sorted(FAULT_PRESETS)}"
        ) from None
    spec = BYZANTINE_PRESETS.get(preset)
    if policy.is_reliable and spec is None:
        return None
    if spec is None:
        return FaultSchedule(default=policy, seed=seed, name=preset)
    return FaultSchedule(
        default=policy,
        seed=seed,
        name=preset,
        byzantine_fraction=spec.fraction,
        byzantine_policy=spec.policy,
    )


@dataclass(frozen=True)
class FaultSpec:
    """The typed fault axis: one value every configuration surface accepts.

    Historically the fault axis travelled as three different shapes —
    preset strings in :class:`repro.experiments.config.AttackConfig`,
    :class:`FaultSchedule` objects handed straight to healer constructors,
    and comma-separated flag values in ``scripts/perf_report.py`` — with
    validation scattered across each consumer.  ``FaultSpec`` is the single
    entry point: :meth:`parse` normalizes ``None`` / preset string /
    ``FaultSchedule`` / ``FaultSpec`` into one frozen value, :meth:`build`
    materializes the seeded schedule on demand, and :meth:`parse_list`
    owns the flag-splitting (``"all"`` / ``"none"`` / comma list) the
    perf-report CLI uses.  Every rejection names the full preset
    vocabulary, extending the :func:`fault_schedule` ValueError contract.

    A spec built from a preset is declarative and JSON-serializable
    (``{"preset": ..., "seed": ...}``); a spec wrapping an explicit
    :class:`FaultSchedule` carries live RNG state and is therefore
    rejected by :meth:`to_json` — the healer service persists its fault
    axis, so :class:`repro.service.ServiceConfig` only accepts the
    declarative form.
    """

    preset: str = "lossless"
    #: Seed for the materialized schedule; ``None`` defers to the seed the
    #: caller passes to :meth:`build` (usually the experiment seed).
    seed: Optional[int] = None
    #: Explicit pre-built schedule (overrides ``preset``/``seed``); carries
    #: live RNG state, so such a spec is not JSON-serializable.
    schedule: Optional[FaultSchedule] = None

    def __post_init__(self) -> None:
        if self.schedule is None and self.preset not in FAULT_PRESETS:
            raise ValueError(
                f"unknown fault preset {self.preset!r}; available: {sorted(FAULT_PRESETS)}"
            )

    # ------------------------------------------------------------------ #
    # parsing
    # ------------------------------------------------------------------ #
    @classmethod
    def parse(
        cls,
        value: Union[None, str, FaultSchedule, "FaultSpec"],
        seed: Optional[int] = None,
    ) -> "FaultSpec":
        """Normalize any accepted fault-axis shape into one ``FaultSpec``.

        ``None`` means lossless; a string names a preset (unknown names
        raise a ``ValueError`` listing every preset); a ``FaultSchedule``
        is wrapped as an explicit schedule; an existing ``FaultSpec``
        passes through (re-seeded when it had no seed and ``seed`` is
        given).  Any other type is a ``TypeError``.
        """
        if value is None:
            return cls(preset="lossless", seed=seed)
        if isinstance(value, FaultSpec):
            if seed is not None and value.seed is None and value.schedule is None:
                return dataclasses.replace(value, seed=seed)
            return value
        if isinstance(value, FaultSchedule):
            return cls(preset=value.name, seed=value.seed, schedule=value)
        if isinstance(value, str):
            return cls(preset=value, seed=seed)
        raise TypeError(
            "fault axis must be None, a preset name, a FaultSchedule or a "
            f"FaultSpec, got {type(value).__name__}"
        )

    @classmethod
    def parse_list(
        cls,
        value: str,
        *,
        flag: str = "fault presets",
        registry: Optional[Mapping[str, object]] = None,
        everything: Optional[Sequence[str]] = None,
    ) -> List[str]:
        """Split a comma-separated flag value into validated preset names.

        The shared grammar of the perf-report scheduling flags: ``"all"``
        expands to ``everything`` (default: the registry's keys in
        insertion order), ``"none"`` or an empty string means no presets,
        anything else is a comma list validated against ``registry``
        (default: :data:`FAULT_PRESETS`).  Unknown names raise a
        ``ValueError`` that names the flag and every available preset.
        """
        vocabulary = FAULT_PRESETS if registry is None else registry
        stripped = value.strip()
        if stripped == "all":
            return list(vocabulary if everything is None else everything)
        if stripped == "none" or not stripped:
            return []
        presets = [p.strip() for p in value.split(",") if p.strip()]
        unknown = [p for p in presets if p not in vocabulary]
        if unknown:
            raise ValueError(
                f"unknown {flag} preset(s) {unknown}; available: {sorted(vocabulary)}"
            )
        return presets

    # ------------------------------------------------------------------ #
    # materialization
    # ------------------------------------------------------------------ #
    @property
    def is_lossless(self) -> bool:
        """True when :meth:`build` returns ``None`` (no fault machinery)."""
        if self.schedule is not None:
            return False
        return self.preset == "lossless"

    def build(self, seed: Optional[int] = None) -> Optional[FaultSchedule]:
        """Materialize the seeded schedule (``None`` on the lossless axis).

        The explicit ``schedule`` wins when present; otherwise the preset
        is built with the spec's own seed, falling back to the caller's
        ``seed`` (the usual experiment seed), falling back to ``0``.  A
        preset spec builds a *fresh* schedule each call — RNG state is
        never shared between consumers.
        """
        if self.schedule is not None:
            return self.schedule
        resolved = self.seed if self.seed is not None else (seed if seed is not None else 0)
        return fault_schedule(self.preset, seed=resolved)

    def to_json(self) -> Dict[str, object]:
        """The declarative form (raises for explicit-schedule specs)."""
        if self.schedule is not None:
            raise ValueError(
                "a FaultSpec wrapping an explicit FaultSchedule carries live "
                "RNG state and cannot be serialized; use a preset spec"
            )
        return {"preset": self.preset, "seed": self.seed}

    @classmethod
    def from_json(cls, payload: Mapping[str, object]) -> "FaultSpec":
        return cls(preset=str(payload["preset"]), seed=payload.get("seed"))  # type: ignore[arg-type]

    def describe(self) -> str:
        if self.schedule is not None:
            return f"schedule:{self.schedule.name}"
        return self.preset
