"""Fault injection for the message-passing substrate.

The paper's model assumes reliable synchronous links; self-stabilizing work
(Devismes et al.'s silent protocols, the PODS heterogeneous-overlay line)
treats the interesting regime instead: messages may be *dropped*, *delayed*
or *reordered*, and the protocol must detect the resulting inconsistency and
reconverge.  This module provides the per-link fault policies the
:class:`~repro.distributed.network.Network` applies at delivery time:

* :class:`LinkFaultPolicy` — probabilities for one link (or the default),
* :class:`FaultSchedule` — a seeded RNG plus policies; deterministic given
  ``(seed, message sequence)``, so every faulty run is replayable,
* :func:`fault_schedule` — named presets (``"drop"``, ``"delay"``,
  ``"reorder"``, ``"chaos"``) used by the E11 experiment, the CI
  fault-schedule smoke and the tests.

Faults apply only to protocol traffic travelling through
:meth:`Network.deliver_round`; the model-level notifications of Figure 1
(deletion/insertion awareness) are delivered out of band and stay exempt,
matching the paper's assumption that the adversary's moves themselves are
observed reliably.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Tuple

import numpy as np

from ..core.ports import NodeId

__all__ = ["LinkFaultPolicy", "FaultSchedule", "fault_schedule", "FAULT_PRESETS"]


@dataclass(frozen=True)
class LinkFaultPolicy:
    """Fault probabilities for one link (all zero = reliable link)."""

    #: Probability that a message on this link is silently dropped.
    drop: float = 0.0
    #: Probability that a message is delayed by 1..``max_delay`` extra rounds
    #: (judged once, at send time — the delay is bounded by ``max_delay``).
    delay: float = 0.0
    #: Largest delay in rounds a delayed message can suffer.
    max_delay: int = 3
    #: Probability that a message on this link loses its delivery slot: all
    #: such messages of a round are delivered in a shuffled order relative
    #: to each other (within-round reordering).
    reorder: float = 0.0

    def __post_init__(self) -> None:
        for name in ("drop", "delay", "reorder"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} probability must lie in [0, 1], got {value}")
        if self.max_delay < 1:
            raise ValueError("max_delay must be at least 1 round")

    @property
    def is_reliable(self) -> bool:
        return self.drop == 0.0 and self.delay == 0.0 and self.reorder == 0.0


RELIABLE = LinkFaultPolicy()


class FaultSchedule:
    """Seeded per-link fault decisions, deterministic and replayable.

    Parameters
    ----------
    default:
        Policy applied to links without a specific entry.
    per_link:
        Optional overrides keyed by the (unordered) endpoint pair.
    seed:
        RNG seed; the same seed and message sequence reproduce the same
        drops/delays/shuffles exactly, which is what makes the CI
        fault-schedule smoke and the reconvergence tests deterministic.
    """

    def __init__(
        self,
        default: LinkFaultPolicy = RELIABLE,
        per_link: Optional[Dict[Tuple[NodeId, NodeId], LinkFaultPolicy]] = None,
        seed: int = 0,
        name: str = "custom",
    ) -> None:
        self.default = default
        self.per_link: Dict[FrozenSet[NodeId], LinkFaultPolicy] = {
            frozenset(pair): policy for pair, policy in (per_link or {}).items()
        }
        self.seed = seed
        self.name = name
        #: True when some policy can reorder at all — lets the network skip
        #: the per-round shuffle machinery entirely otherwise (judging a
        #: zero-probability reorder consumes no RNG, so skipping is exact).
        self.has_reorder = default.reorder > 0.0 or any(
            policy.reorder > 0.0 for policy in self.per_link.values()
        )
        self._rng = np.random.default_rng(seed)
        # Observability: how often each fault actually fired.
        self.dropped = 0
        self.delayed = 0
        self.reordered_batches = 0

    def policy_for(self, sender: NodeId, receiver: NodeId) -> LinkFaultPolicy:
        return self.per_link.get(frozenset((sender, receiver)), self.default)

    def judge(self, sender: NodeId, receiver: NodeId) -> int:
        """Fate of one message: ``-1`` = drop, ``0`` = deliver now, ``k>0`` = delay ``k`` rounds."""
        policy = self.policy_for(sender, receiver)
        if policy.is_reliable:
            return 0
        roll = self._rng.random()
        if roll < policy.drop:
            self.dropped += 1
            return -1
        if roll < policy.drop + policy.delay:
            self.delayed += 1
            return int(self._rng.integers(1, policy.max_delay + 1))
        return 0

    def shuffle_round(self, links: "list[Tuple[NodeId, NodeId]]") -> Optional[np.ndarray]:
        """A permutation of this round's delivery order, or ``None``.

        ``links`` is the (sender, receiver) pair of each message in the
        batch.  Every message whose link's policy rolls a reorder loses its
        slot; the displaced messages are delivered in shuffled order among
        themselves, so reordering respects the per-link policies.
        """
        if len(links) < 2:
            return None
        movable = []
        for index, (sender, receiver) in enumerate(links):
            policy = self.policy_for(sender, receiver)
            if policy.reorder > 0.0 and self._rng.random() < policy.reorder:
                movable.append(index)
        if len(movable) < 2:
            return None
        self.reordered_batches += 1
        permutation = np.arange(len(links))
        permutation[movable] = permutation[self._rng.permutation(movable)]
        return permutation

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultSchedule({self.name!r}, seed={self.seed}, default={self.default})"


#: Named presets: the vocabulary shared by experiment E11, the CI
#: fault-schedule matrix and the reconvergence tests.
FAULT_PRESETS: Dict[str, LinkFaultPolicy] = {
    "lossless": RELIABLE,
    "drop": LinkFaultPolicy(drop=0.15),
    "delay": LinkFaultPolicy(delay=0.25, max_delay=4),
    "reorder": LinkFaultPolicy(reorder=0.5),
    "chaos": LinkFaultPolicy(drop=0.1, delay=0.15, max_delay=3, reorder=0.3),
}


def fault_schedule(preset: str, seed: int = 0) -> Optional[FaultSchedule]:
    """Build the named preset's schedule (``None`` for ``"lossless"``)."""
    try:
        policy = FAULT_PRESETS[preset]
    except KeyError:
        raise ValueError(
            f"unknown fault preset {preset!r}; available: {sorted(FAULT_PRESETS)}"
        ) from None
    if policy.is_reliable:
        return None
    return FaultSchedule(default=policy, seed=seed, name=preset)
