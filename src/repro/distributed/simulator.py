"""The distributed Forgiving Graph: the healer API on a message-passing substrate.

:class:`DistributedForgivingGraph` exposes the same healer protocol as
:class:`repro.core.ForgivingGraph` (``insert`` / ``delete`` /
``actual_graph`` / ``g_prime_view`` / ``alive_nodes`` ...), but every repair
is replayed as explicit messages over a synchronous round-based network of
:class:`~repro.distributed.processor.Processor` objects, each holding the
Table 1 per-edge state.  ``delete`` therefore returns a
:class:`~repro.distributed.metrics.DeletionCostReport` with the quantities
Lemma 4 bounds: total messages, bits, rounds, the largest message and the
busiest processor.

The structural repair decisions are made by an embedded reference engine
(see the faithfulness note in :mod:`repro.distributed.protocol`), so the
distributed state provably converges to the same reconstruction trees; the
added value of this class is the cost accounting and the per-processor view,
both of which the tests cross-check against the engine.

The accounting is *incremental end to end*, matching the protocol's own
asymptotics (Lemma 4 bounds each repair at ``O(d log n)`` messages, so the
measurement layer must not be O(n + m) per deletion): link sync applies the
engine's :attr:`~repro.core.ForgivingGraph.edge_delta_log` suffix — exactly
the healed edges the repair added or removed — instead of diffing full edge
sets, and per-deletion cost reports come from the network's per-repair
:class:`~repro.distributed.metrics.MetricsWindow` instead of diffing full
counter snapshots.  ``delete`` performs no full-graph work; the seed-era
full-diff link sync is retained as ``_sync_links_reference`` for the
equivalence tests and the perf report's baseline side.

The class is also a first-class engine citizen: it is registered in
:mod:`repro.baselines.registry` as ``"distributed_forgiving_graph"``, it
exposes the degree-touch journal the incremental adversaries consume, and
:class:`repro.engine.AttackSession` attaches each deletion's
``DeletionCostReport`` to its :class:`~repro.engine.StepEvent`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import networkx as nx

from ..core.errors import InvariantViolationError
from ..core.forgiving_graph import ForgivingGraph
from ..core.ports import NodeId, Port
from ..core.reconstruction_tree import RTHelper, RTLeaf
from .messages import InsertionNotice
from .metrics import DeletionCostReport
from .network import Network
from .protocol import execute_repair, plan_repair

__all__ = ["DistributedForgivingGraph"]


class DistributedForgivingGraph:
    """Forgiving Graph healer running on the message-passing substrate."""

    name = "distributed_forgiving_graph"

    def __init__(self, check_invariants: bool = False) -> None:
        self._engine = ForgivingGraph(check_invariants=check_invariants)
        self.network = Network(strict_links=True)
        #: One cost report per deletion, in order.
        self.cost_reports: List[DeletionCostReport] = []
        # Cursor into the engine's edge-delta journal: everything before it
        # has already been applied to the network's link set.
        self._edge_cursor = 0

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_graph(cls, graph: nx.Graph, **kwargs) -> "DistributedForgivingGraph":
        """Build the distributed healer from an initial networkx graph ``G_0``."""
        healer = cls(**kwargs)
        for node in graph.nodes:
            healer._bootstrap_node(node)
        for u, v in graph.edges:
            healer._bootstrap_edge(u, v)
        return healer

    @classmethod
    def from_edges(
        cls, edges: Iterable[Tuple[NodeId, NodeId]], nodes: Iterable[NodeId] = (), **kwargs
    ) -> "DistributedForgivingGraph":
        """Build the distributed healer from an initial edge list."""
        graph = nx.Graph()
        graph.add_nodes_from(nodes)
        graph.add_edges_from(edges)
        return cls.from_graph(graph, **kwargs)

    def _bootstrap_node(self, node: NodeId) -> None:
        # The network counts additions itself; ``verify_consistency``
        # cross-checks its ``n_ever`` against the engine's ``nodes_ever``.
        self._engine._add_initial_node(node)
        self.network.add_processor(node)

    def _bootstrap_edge(self, u: NodeId, v: NodeId) -> None:
        self._engine._add_initial_edge(u, v)
        self._sync_links()  # the new G_0 edge is the engine's edge delta
        # Pre-processing (Figure 1): each endpoint starts knowing its G_0
        # neighbours, i.e. runs Init(v) locally — no messages needed.
        self.network.processors[u].ensure_edge(v)
        self.network.processors[v].ensure_edge(u)

    # ------------------------------------------------------------------ #
    # healer protocol (delegated views)
    # ------------------------------------------------------------------ #
    @property
    def alive_nodes(self) -> Set[NodeId]:
        """Surviving node identifiers."""
        return self._engine.alive_nodes

    @property
    def deleted_nodes(self) -> Set[NodeId]:
        """Deleted node identifiers."""
        return self._engine.deleted_nodes

    @property
    def num_alive(self) -> int:
        """Number of surviving nodes."""
        return self._engine.num_alive

    @property
    def nodes_ever(self) -> int:
        """Number of nodes ever seen (the ``n`` of the theorems)."""
        return self._engine.nodes_ever

    @property
    def engine(self) -> ForgivingGraph:
        """The embedded reference engine (shares all structural state)."""
        return self._engine

    def is_alive(self, node: NodeId) -> bool:
        """True when ``node`` is currently alive."""
        return self._engine.is_alive(node)

    def actual_graph(self) -> nx.Graph:
        """The healed graph ``G`` (identical to the engine's view)."""
        return self._engine.actual_graph()

    def actual_view(self) -> nx.Graph:
        """Zero-copy read-only view of the healed graph ``G``."""
        return self._engine.actual_view()

    def g_prime_view(self) -> nx.Graph:
        """The insertion-only graph ``G'``."""
        return self._engine.g_prime_view()

    def g_prime_graph_view(self) -> nx.Graph:
        """Zero-copy read-only view of ``G'``."""
        return self._engine.g_prime_graph_view()

    def g_prime_degree(self, node: NodeId) -> int:
        """Degree of ``node`` in ``G'``."""
        return self._engine.g_prime_degree(node)

    def actual_degree(self, node: NodeId) -> int:
        """Degree of ``node`` in the healed graph ``G`` (O(1))."""
        return self._engine.actual_degree(node)

    @property
    def degree_touch_log(self):
        """The engine's degree-touch journal (lets the incremental adversaries
        run their lazy-heap fast path against the distributed healer too)."""
        return self._engine.degree_touch_log

    def degree_increase_factor(self, node: Optional[NodeId] = None) -> float:
        """Worst ``deg(v, G) / deg(v, G')`` ratio (Theorem 1.1's metric)."""
        return self._engine.degree_increase_factor(node)

    # ------------------------------------------------------------------ #
    # adversarial operations
    # ------------------------------------------------------------------ #
    def insert(self, node: NodeId, attach_to: Sequence[NodeId] = ()) -> None:
        """Adversarial insertion: join the network with edges to ``attach_to``.

        The inserted processor knows its chosen neighbours locally and sends
        each of them one :class:`InsertionNotice` so they can create their
        Table 1 edge record — the only communication insertions need.
        """
        self._engine.insert(node, attach_to=attach_to)
        processor = self.network.add_processor(node)
        self._sync_links()  # the attach edges are the insertion's edge delta
        for neighbor in dict.fromkeys(attach_to):
            processor.ensure_edge(neighbor)
            self.network.send(
                InsertionNotice(sender=node, receiver=neighbor, inserted=node)
            )
        if attach_to:
            self.network.deliver_round()

    def delete(self, node: NodeId) -> DeletionCostReport:
        """Adversarial deletion: heal the network and account for every message.

        The whole accounting is O(repair): planning reads zero-copy views,
        link sync applies the engine's edge delta, and the cost report is
        read off the per-repair metrics window — no ``actual_graph()`` call,
        no full edge-set diff, no full counter snapshot.
        """
        degree = self._engine.g_prime_degree(node)
        plan = plan_repair(self._engine, node)
        self.network.begin_repair()

        engine_report = self._engine.delete(node)

        # The processor is gone; the surviving links must match the healed graph.
        if self.network.has_processor(node):
            self.network.remove_processor(node)
        self._sync_links()

        rounds = execute_repair(self.network, self._engine, plan, engine_report)

        window = self.network.end_repair()
        report = DeletionCostReport(
            deleted_node=node,
            degree=degree,
            n_ever=self._engine.nodes_ever,
            messages=window.messages,
            bits=window.bits,
            rounds=rounds,
            max_message_bits=window.max_message_bits,
            max_messages_per_node=window.max_messages_per_node(),
            helpers_created=engine_report.helpers_created,
            helpers_released=engine_report.helpers_released,
        )
        self.cost_reports.append(report)
        return report

    def _sync_links(self) -> None:
        """Apply the engine's edge-delta journal suffix to the link set.

        O(delta) in the number of healed edges the last operation added or
        removed: removals are applied unconditionally (dead endpoints are
        tolerated — the processor's removal already dropped those links) and
        additions connect only pairs of live processors, which is every edge
        the repair glue can produce.
        """
        log = self._engine.edge_delta_log
        if self._edge_cursor >= len(log):
            return
        network = self.network
        for added, u, v in log[self._edge_cursor :]:
            if added:
                if network.has_processor(u) and network.has_processor(v):
                    network.connect(u, v)
            else:
                network.disconnect(u, v)
        self._edge_cursor = len(log)

    def _sync_links_reference(self) -> None:
        """The retained seed-era link sync: a full healed-edge diff (O(n + m)).

        Rebuilds the healed graph, diffs its whole edge set against the
        network's whole link set, and applies the difference.  Kept as the
        ground truth the delta-driven :meth:`_sync_links` is equivalence-
        tested against, and as the baseline side of the perf report's
        ``distributed_repair`` section.  Leaves the delta cursor fully
        drained so the two paths can be interleaved.
        """
        healed_edges = {
            frozenset(edge) for edge in self._engine.actual_graph().edges
        }
        current = {frozenset(link) for link in self.network.links()}
        for link in current - healed_edges:
            u, v = tuple(link)
            self.network.disconnect(u, v)
        for link in healed_edges - current:
            u, v = tuple(link)
            if self.network.has_processor(u) and self.network.has_processor(v):
                self.network.connect(u, v)
        self._edge_cursor = len(self._engine.edge_delta_log)

    # ------------------------------------------------------------------ #
    # consistency between distributed state and the reference engine
    # ------------------------------------------------------------------ #
    def verify_consistency(self) -> None:
        """Check that the distributed state matches the reference engine.

        Three families of checks, all raising
        :class:`InvariantViolationError` on mismatch: the network's
        addition-counted ``n_ever`` must equal the engine's ``nodes_ever``
        (the engine-driven cross-check of the message-sizing ``n``); the
        delta-synced link set must equal the healed graph's edge set (what
        the retained full-diff ``_sync_links_reference`` would produce); and
        for every helper node the engine maintains, the simulating processor
        must have ``has_helper`` set with the matching children pointers,
        with no processor claiming a helper the engine does not know about.
        """
        if self.network.n_ever != self._engine.nodes_ever:
            raise InvariantViolationError(
                f"network counted {self.network.n_ever} processors ever, "
                f"engine has seen {self._engine.nodes_ever} nodes"
            )

        healed_edges = {frozenset(edge) for edge in self._engine.actual_view().edges}
        links = {frozenset(link) for link in self.network.links()}
        if links != healed_edges:
            missing = healed_edges - links
            extra = links - healed_edges
            raise InvariantViolationError(
                f"link set diverges from the healed graph "
                f"(missing={len(missing)}, unexpected={len(extra)})"
            )

        engine_helpers: Dict[Port, RTHelper] = {}
        for rt in self._engine.reconstruction_trees():
            engine_helpers.update(rt.helpers)

        recorded: Dict[Port, Tuple[Optional[Port], Optional[Port]]] = {}
        for node_id, processor in self.network.processors.items():
            for neighbor, record in processor.edges.items():
                if record.has_helper:
                    recorded[Port(node_id, neighbor)] = (record.helper_left, record.helper_right)

        missing = set(engine_helpers) - set(recorded)
        if missing:
            raise InvariantViolationError(
                f"{len(missing)} helper nodes are unknown to their processors: {sorted(map(str, missing))[:5]}"
            )
        extra = set(recorded) - set(engine_helpers)
        if extra:
            raise InvariantViolationError(
                f"{len(extra)} processors claim helpers the engine does not have: {sorted(map(str, extra))[:5]}"
            )
        for port, helper in engine_helpers.items():
            left, right = recorded[port]
            expected_left = helper.left.port if isinstance(helper.left, RTLeaf) else helper.left.simulated_by
            expected_right = helper.right.port if isinstance(helper.right, RTLeaf) else helper.right.simulated_by
            if left != expected_left or right != expected_right:
                raise InvariantViolationError(
                    f"helper {port} child pointers diverge between processor and engine"
                )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DistributedForgivingGraph(alive={self.num_alive}, ever={self.nodes_ever}, "
            f"messages={self.network.metrics.total_messages})"
        )
