"""The distributed Forgiving Graph: the healer API on a message-passing substrate.

:class:`DistributedForgivingGraph` exposes the same healer protocol as
:class:`repro.core.ForgivingGraph` (``insert`` / ``delete`` /
``actual_graph`` / ``g_prime_view`` / ``alive_nodes`` ...), but every repair
is replayed as explicit messages over a synchronous round-based network of
:class:`~repro.distributed.processor.Processor` objects, each holding the
Table 1 per-edge state.  ``delete`` therefore returns a
:class:`~repro.distributed.metrics.DeletionCostReport` with the quantities
Lemma 4 bounds: total messages, bits, rounds, the largest message and the
busiest processor.

The structural repair decisions are made by an embedded reference engine
(see the faithfulness note in :mod:`repro.distributed.protocol`), so the
distributed state provably converges to the same reconstruction trees; the
added value of this class is the cost accounting and the per-processor view,
both of which the tests cross-check against the engine.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import networkx as nx

from ..core.errors import InvariantViolationError
from ..core.forgiving_graph import ForgivingGraph
from ..core.ports import NodeId, Port
from ..core.reconstruction_tree import RTHelper, RTLeaf
from .messages import InsertionNotice
from .metrics import DeletionCostReport
from .network import Network
from .protocol import execute_repair, plan_repair

__all__ = ["DistributedForgivingGraph"]


class DistributedForgivingGraph:
    """Forgiving Graph healer running on the message-passing substrate."""

    name = "distributed_forgiving_graph"

    def __init__(self, check_invariants: bool = False) -> None:
        self._engine = ForgivingGraph(check_invariants=check_invariants)
        self.network = Network(strict_links=True)
        #: One cost report per deletion, in order.
        self.cost_reports: List[DeletionCostReport] = []

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_graph(cls, graph: nx.Graph, **kwargs) -> "DistributedForgivingGraph":
        """Build the distributed healer from an initial networkx graph ``G_0``."""
        healer = cls(**kwargs)
        for node in graph.nodes:
            healer._bootstrap_node(node)
        for u, v in graph.edges:
            healer._bootstrap_edge(u, v)
        return healer

    @classmethod
    def from_edges(
        cls, edges: Iterable[Tuple[NodeId, NodeId]], nodes: Iterable[NodeId] = (), **kwargs
    ) -> "DistributedForgivingGraph":
        """Build the distributed healer from an initial edge list."""
        graph = nx.Graph()
        graph.add_nodes_from(nodes)
        graph.add_edges_from(edges)
        return cls.from_graph(graph, **kwargs)

    def _bootstrap_node(self, node: NodeId) -> None:
        self._engine._add_initial_node(node)
        self.network.add_processor(node)
        self.network.n_ever = self._engine.nodes_ever

    def _bootstrap_edge(self, u: NodeId, v: NodeId) -> None:
        self._engine._add_initial_edge(u, v)
        self.network.connect(u, v)
        # Pre-processing (Figure 1): each endpoint starts knowing its G_0
        # neighbours, i.e. runs Init(v) locally — no messages needed.
        self.network.processors[u].ensure_edge(v)
        self.network.processors[v].ensure_edge(u)

    # ------------------------------------------------------------------ #
    # healer protocol (delegated views)
    # ------------------------------------------------------------------ #
    @property
    def alive_nodes(self) -> Set[NodeId]:
        """Surviving node identifiers."""
        return self._engine.alive_nodes

    @property
    def deleted_nodes(self) -> Set[NodeId]:
        """Deleted node identifiers."""
        return self._engine.deleted_nodes

    @property
    def num_alive(self) -> int:
        """Number of surviving nodes."""
        return self._engine.num_alive

    @property
    def nodes_ever(self) -> int:
        """Number of nodes ever seen (the ``n`` of the theorems)."""
        return self._engine.nodes_ever

    @property
    def engine(self) -> ForgivingGraph:
        """The embedded reference engine (shares all structural state)."""
        return self._engine

    def is_alive(self, node: NodeId) -> bool:
        """True when ``node`` is currently alive."""
        return self._engine.is_alive(node)

    def actual_graph(self) -> nx.Graph:
        """The healed graph ``G`` (identical to the engine's view)."""
        return self._engine.actual_graph()

    def actual_view(self) -> nx.Graph:
        """Zero-copy read-only view of the healed graph ``G``."""
        return self._engine.actual_view()

    def g_prime_view(self) -> nx.Graph:
        """The insertion-only graph ``G'``."""
        return self._engine.g_prime_view()

    def g_prime_graph_view(self) -> nx.Graph:
        """Zero-copy read-only view of ``G'``."""
        return self._engine.g_prime_graph_view()

    def g_prime_degree(self, node: NodeId) -> int:
        """Degree of ``node`` in ``G'``."""
        return self._engine.g_prime_degree(node)

    def degree_increase_factor(self, node: Optional[NodeId] = None) -> float:
        """Worst ``deg(v, G) / deg(v, G')`` ratio (Theorem 1.1's metric)."""
        return self._engine.degree_increase_factor(node)

    # ------------------------------------------------------------------ #
    # adversarial operations
    # ------------------------------------------------------------------ #
    def insert(self, node: NodeId, attach_to: Sequence[NodeId] = ()) -> None:
        """Adversarial insertion: join the network with edges to ``attach_to``.

        The inserted processor knows its chosen neighbours locally and sends
        each of them one :class:`InsertionNotice` so they can create their
        Table 1 edge record — the only communication insertions need.
        """
        self._engine.insert(node, attach_to=attach_to)
        processor = self.network.add_processor(node)
        self.network.n_ever = self._engine.nodes_ever
        for neighbor in dict.fromkeys(attach_to):
            self.network.connect(node, neighbor)
            processor.ensure_edge(neighbor)
            self.network.send(
                InsertionNotice(sender=node, receiver=neighbor, inserted=node)
            )
        if attach_to:
            self.network.deliver_round()

    def delete(self, node: NodeId) -> DeletionCostReport:
        """Adversarial deletion: heal the network and account for every message."""
        degree = self._engine.g_prime_degree(node)
        plan = plan_repair(self._engine, node)
        before = self.network.metrics.snapshot()

        engine_report = self._engine.delete(node)

        # The processor is gone; the surviving links must match the healed graph.
        if self.network.has_processor(node):
            self.network.remove_processor(node)
        self._sync_links()

        rounds = execute_repair(self.network, self._engine, plan, engine_report)

        after = self.network.metrics
        per_node_delta = {
            proc: after.messages_sent_by_node.get(proc, 0) - before.messages_sent_by_node.get(proc, 0)
            for proc in after.messages_sent_by_node
        }
        report = DeletionCostReport(
            deleted_node=node,
            degree=degree,
            n_ever=self._engine.nodes_ever,
            messages=after.total_messages - before.total_messages,
            bits=after.total_bits - before.total_bits,
            rounds=rounds,
            max_message_bits=after.max_message_bits,
            max_messages_per_node=max(per_node_delta.values(), default=0),
            helpers_created=engine_report.helpers_created,
            helpers_released=engine_report.helpers_released,
        )
        self.cost_reports.append(report)
        return report

    def _sync_links(self) -> None:
        """Make the network's link set equal to the healed graph's edge set."""
        healed_edges = {
            frozenset(edge) for edge in self._engine.actual_graph().edges
        }
        current = {frozenset(link) for link in self.network.links()}
        for link in current - healed_edges:
            u, v = tuple(link)
            self.network.disconnect(u, v)
        for link in healed_edges - current:
            u, v = tuple(link)
            if self.network.has_processor(u) and self.network.has_processor(v):
                self.network.connect(u, v)

    # ------------------------------------------------------------------ #
    # consistency between distributed state and the reference engine
    # ------------------------------------------------------------------ #
    def verify_consistency(self) -> None:
        """Check that the processors' Table 1 records match the engine's RTs.

        For every helper node the engine maintains, the simulating processor
        must have ``has_helper`` set with the matching children pointers; and
        no processor may claim a helper the engine does not know about.
        Raises :class:`InvariantViolationError` on any mismatch.
        """
        engine_helpers: Dict[Port, RTHelper] = {}
        for rt in self._engine.reconstruction_trees():
            engine_helpers.update(rt.helpers)

        recorded: Dict[Port, Tuple[Optional[Port], Optional[Port]]] = {}
        for node_id, processor in self.network.processors.items():
            for neighbor, record in processor.edges.items():
                if record.has_helper:
                    recorded[Port(node_id, neighbor)] = (record.helper_left, record.helper_right)

        missing = set(engine_helpers) - set(recorded)
        if missing:
            raise InvariantViolationError(
                f"{len(missing)} helper nodes are unknown to their processors: {sorted(map(str, missing))[:5]}"
            )
        extra = set(recorded) - set(engine_helpers)
        if extra:
            raise InvariantViolationError(
                f"{len(extra)} processors claim helpers the engine does not have: {sorted(map(str, extra))[:5]}"
            )
        for port, helper in engine_helpers.items():
            left, right = recorded[port]
            expected_left = helper.left.port if isinstance(helper.left, RTLeaf) else helper.left.simulated_by
            expected_right = helper.right.port if isinstance(helper.right, RTLeaf) else helper.right.simulated_by
            if left != expected_left or right != expected_right:
                raise InvariantViolationError(
                    f"helper {port} child pointers diverge between processor and engine"
                )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DistributedForgivingGraph(alive={self.num_alive}, ever={self.nodes_ever}, "
            f"messages={self.network.metrics.total_messages})"
        )
