"""The distributed Forgiving Graph: the healer API on a message-passing substrate.

:class:`DistributedForgivingGraph` exposes the same healer protocol as
:class:`repro.core.ForgivingGraph` (``insert`` / ``delete`` /
``actual_graph`` / ``g_prime_view`` / ``alive_nodes`` ...), but every repair
runs as explicit messages over a synchronous round-based network of
:class:`~repro.distributed.processor.Processor` objects, each holding the
Table 1 per-edge state.  ``delete`` therefore returns a
:class:`~repro.distributed.metrics.DeletionCostReport` with the quantities
Lemma 4 bounds: total messages, bits, rounds, the largest message and the
busiest processor.

The merge is **message-native** (PR 4): the structural outcome of each
repair — which helper nodes exist, who simulates them, which healed links
appear — is decided by the merge-leader processor from the primary-root
descriptors that physically reached it, and applied by the owners from the
instructions they physically received (see
:mod:`repro.distributed.protocol`).  The embedded reference engine still
executes every adversarial move, but only as an *oracle*: it maintains the
``G'`` bookkeeping the adversary and the measurement layer read, and the
equivalence tests compare the distributed state against it.  Nothing on the
repair path consults the engine's merge outcome — under a lossless network
the two provably coincide; under an injected
:class:`~repro.distributed.faults.FaultSchedule` they *diverge*.

The recovery is message-native too (PR 5): :meth:`reconverge` is now a thin
driver over the gossip-digest anti-entropy protocol of
:mod:`repro.distributed.recovery` — each participant derives a compact
digest from its *own* repair context and Table 1 records, gossips it along
spine/anchor links as real ``Digest`` / ``DigestRequest`` messages through
:meth:`Network.deliver_round` (so faults hit recovery traffic as well), and
retransmits only what its neighbours' digests show missing, until a sweep
is silent.  The old plan-based global audit survives as
:meth:`_audit_reference` — an oracle for ``verify_consistency``-style
checks, never consulted by the recovery (``quarantine_plan_audit`` poisons
the plan's global knowledge to prove it structurally).

Fault tolerance is **byzantine-aware** (PR 6): when the fault schedule
carries a byzantine axis, designated processors corrupt outgoing payloads
(see :class:`~repro.distributed.faults.ByzantinePolicy`), receivers detect
the lies message-natively — payload seals, descriptor checksums and
cross-witness validation, never an oracle read — and every detection lands
as an :class:`~repro.distributed.accountability.Accusation` on the
network's transcript, quarantining the accused (crash semantics: links
dropped, recovery heals around it).  ``delete`` snapshots the transcript
and the oracle-side injection log around each repair and attaches the
deltas — accusations, containment radius, detection latency — as a
:class:`~repro.distributed.metrics.ByzantineReport` on the cost report.

The accounting remains incremental end to end (Lemma 4 bounds each repair
at ``O(d log n)`` messages, so the measurement layer must not be O(n + m)
per deletion): planning reads zero-copy views and O(broken-region)
structures, link maintenance is driven by O(repair) message effects on the
network's sourced link set, and per-deletion cost reports come from the
network's per-repair :class:`~repro.distributed.metrics.MetricsWindow`.
The seed-era full-diff link sync survives as
:meth:`_sync_links_reference` — now an oracle *resync* used by the
equivalence tests and as a last-resort recovery path.

The class is also a first-class engine citizen: it is registered in
:mod:`repro.baselines.registry` as ``"distributed_forgiving_graph"``, it
exposes the degree-touch journal the incremental adversaries consume, and
:class:`repro.engine.AttackSession` attaches each deletion's
``DeletionCostReport`` to its :class:`~repro.engine.StepEvent`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import networkx as nx

from ..core.errors import InvariantViolationError
from ..core.forgiving_graph import ForgivingGraph
from ..core.ports import NodeId, Port
from ..core.reconstruction_tree import RTHelper, RTLeaf
from .faults import FaultSchedule
from .merge import link_source_key, real_source_key
from .messages import HelperAssignment, InsertionNotice, ParentUpdate, PrimaryRootList, Probe
from .metrics import (
    BurstCostReport,
    ByzantineReport,
    DeletionCostReport,
    MetricsWindow,
    RecoveryCostReport,
)
from .network import Network
from .protocol import RepairPlan, execute_repair, plan_repair, seed_repair
from .recovery import BackgroundRecovery, run_recovery

__all__ = ["DistributedForgivingGraph", "ReconvergenceReport"]


class _Quarantine:
    """Poison placeholder: any read of the quarantined state raises."""

    _message = "quarantined state was read"

    def _trip(self, what: str):
        raise AssertionError(f"{self._message} ({what})")

    def __getattr__(self, name):
        self._trip(name)

    def __iter__(self):
        self._trip("iter")

    def __len__(self):
        self._trip("len")

    def __getitem__(self, index):
        self._trip("getitem")

    def __bool__(self):
        self._trip("bool")


class _OracleQuarantine(_Quarantine):
    """Poison proving the repair path never reads the oracle's merge."""

    _message = "message-native repair consulted the reference engine's merge outcome"


class _PlanAuditQuarantine(_Quarantine):
    """Poison proving the recovery path never reads the plan's global knowledge.

    The repair plan's ``contexts`` map (every participant's knowledge) and
    ``all_summaries`` union are exactly what no single processor of the
    paper's model holds; the digest recovery must work without them, so the
    ``message_native_recovery`` gate replaces both with this poison before
    any reconvergence runs.
    """

    _message = (
        "message-native recovery consulted the repair plan's global knowledge"
    )


#: Back-compat alias: reconvergence now returns the full recovery ledger.
ReconvergenceReport = RecoveryCostReport


@dataclass
class _RepairRuntime:
    """Per-repair state kept for recovery driving and reference audits.

    ``victim`` / ``leader`` / ``degree`` / ``helpers_released`` are copied
    out of the plan at repair time so that nothing on the recovery or
    reporting path needs to read the plan again once its global knowledge
    has been quarantined.
    """

    plan: RepairPlan
    victim: NodeId
    leader: Optional[NodeId]
    degree: int
    helpers_released: int
    participants: List[NodeId] = field(default_factory=list)


class DistributedForgivingGraph:
    """Forgiving Graph healer running on the message-passing substrate.

    Parameters
    ----------
    check_invariants:
        Forwarded to the embedded oracle engine.
    fault_schedule:
        Optional :class:`~repro.distributed.faults.FaultSchedule`; when set,
        protocol messages can be dropped / delayed / reordered and each
        deletion finishes with a reconvergence pass (see ``auto_reconverge``).
    auto_reconverge:
        Run :meth:`reconverge` at the end of every ``delete`` when a fault
        schedule is active (on by default — the next adversarial move should
        find the network consistent, matching the paper's one-attack-at-a-
        time model).
    quarantine_oracle:
        After every oracle ``delete`` replace the engine's merge-outcome
        attributes with poison objects that raise on access — a structural
        proof that the measured repair path never reads them.  Used by the
        perf report's ``message_native_merge`` gate and the tests.
    quarantine_plan_audit:
        After every repair replace the plan's *global* knowledge (the
        per-participant context map and the all-pieces union — exactly what
        no single processor holds) with poison objects, so any reconvergence
        that follows provably runs on gossip digests alone.  Used by the
        perf report's ``message_native_recovery`` gate and the tests; the
        plan-based :meth:`_audit_reference` naturally raises under it.
    repair_concurrency:
        Default admission cap for :meth:`delete_batch`: ``1`` pins the
        sequential reference path, ``None`` (default) admits every
        pairwise-disjoint repair of a burst concurrently.
    receive_trace_limit:
        Per-processor receive-transcript depth (``None`` keeps
        ``Processor.RECEIVE_TRACE_LIMIT``); threaded through the network to
        every processor it creates.
    """

    name = "distributed_forgiving_graph"

    def __init__(
        self,
        check_invariants: bool = False,
        fault_schedule: Optional[FaultSchedule] = None,
        auto_reconverge: bool = True,
        quarantine_oracle: bool = False,
        quarantine_plan_audit: bool = False,
        dense: bool = True,
        repair_concurrency: Optional[int] = None,
        receive_trace_limit: Optional[int] = None,
    ) -> None:
        self._engine = ForgivingGraph(check_invariants=check_invariants)
        #: ``dense=False`` selects the retained seed-era object-dict network
        #: core (the equivalence/benchmark twin of the dense-int hot core).
        self.network = Network(
            strict_links=True,
            fault_schedule=fault_schedule,
            dense=dense,
            receive_trace_limit=receive_trace_limit,
        )
        #: One cost report per deletion, in order.
        self.cost_reports: List[DeletionCostReport] = []
        #: One recovery ledger per reconverge() call, in order.
        self.recovery_reports: List[RecoveryCostReport] = []
        #: One ledger per :meth:`delete_batch` call, in order.
        self.burst_reports: List[BurstCostReport] = []
        self.auto_reconverge = auto_reconverge
        self.quarantine_oracle = quarantine_oracle
        self.quarantine_plan_audit = quarantine_plan_audit
        #: Default admission cap for :meth:`delete_batch` (``None`` =
        #: unbounded — every pairwise-disjoint repair of a burst is admitted
        #: into the shared fabric at once; ``1`` = the retained sequential
        #: reference path, bit-identical to looping :meth:`delete`).
        self.repair_concurrency = repair_concurrency
        self._runtime: Optional[_RepairRuntime] = None

    @property
    def reconvergence_reports(self) -> List[RecoveryCostReport]:
        """Back-compat alias for :attr:`recovery_reports`."""
        return self.recovery_reports

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_graph(cls, graph: nx.Graph, **kwargs) -> "DistributedForgivingGraph":
        """Build the distributed healer from an initial networkx graph ``G_0``."""
        healer = cls(**kwargs)
        for node in graph.nodes:
            healer._bootstrap_node(node)
        for u, v in graph.edges:
            healer._bootstrap_edge(u, v)
        return healer

    @classmethod
    def from_edges(
        cls, edges: Iterable[Tuple[NodeId, NodeId]], nodes: Iterable[NodeId] = (), **kwargs
    ) -> "DistributedForgivingGraph":
        """Build the distributed healer from an initial edge list."""
        graph = nx.Graph()
        graph.add_nodes_from(nodes)
        graph.add_edges_from(edges)
        return cls.from_graph(graph, **kwargs)

    def _bootstrap_node(self, node: NodeId) -> None:
        # The network counts additions itself; ``verify_consistency``
        # cross-checks its ``n_ever`` against the engine's ``nodes_ever``.
        self._engine._add_initial_node(node)
        self.network.add_processor(node)

    def _bootstrap_edge(self, u: NodeId, v: NodeId) -> None:
        self._engine._add_initial_edge(u, v)
        # Pre-processing (Figure 1): each endpoint starts knowing its G_0
        # neighbours, i.e. runs Init(v) locally — no messages needed.  The
        # link is sourced by the real edge itself.
        self.network.add_link_source(real_source_key(u, v), u, v)
        self.network.processors[u].ensure_edge(v)
        self.network.processors[v].ensure_edge(u)

    # ------------------------------------------------------------------ #
    # healer protocol (delegated views)
    # ------------------------------------------------------------------ #
    @property
    def alive_nodes(self) -> Set[NodeId]:
        """Surviving node identifiers."""
        return self._engine.alive_nodes

    @property
    def deleted_nodes(self) -> Set[NodeId]:
        """Deleted node identifiers."""
        return self._engine.deleted_nodes

    @property
    def num_alive(self) -> int:
        """Number of surviving nodes."""
        return self._engine.num_alive

    @property
    def nodes_ever(self) -> int:
        """Number of nodes ever seen (the ``n`` of the theorems)."""
        return self._engine.nodes_ever

    @property
    def engine(self) -> ForgivingGraph:
        """The embedded reference engine (the equivalence oracle)."""
        return self._engine

    @property
    def fault_schedule(self) -> Optional[FaultSchedule]:
        """The active fault schedule, if any."""
        return self.network.fault_schedule

    def is_alive(self, node: NodeId) -> bool:
        """True when ``node`` is currently alive."""
        return self._engine.is_alive(node)

    def actual_graph(self) -> nx.Graph:
        """The healed graph ``G`` (the oracle's view)."""
        return self._engine.actual_graph()

    def actual_view(self) -> nx.Graph:
        """Zero-copy read-only view of the healed graph ``G``."""
        return self._engine.actual_view()

    def network_graph(self) -> nx.Graph:
        """The healed graph as the *processors* know it: current link set.

        This is the message-native counterpart of :meth:`actual_graph` —
        under a lossless network the two are identical; under faults they
        diverge until :meth:`reconverge` restores the fixed point.
        """
        graph = nx.Graph()
        graph.add_nodes_from(self.network.processors)
        graph.add_edges_from(self.network.iter_links())
        return graph

    def g_prime_view(self) -> nx.Graph:
        """The insertion-only graph ``G'``."""
        return self._engine.g_prime_view()

    def g_prime_graph_view(self) -> nx.Graph:
        """Zero-copy read-only view of ``G'``."""
        return self._engine.g_prime_graph_view()

    def g_prime_degree(self, node: NodeId) -> int:
        """Degree of ``node`` in ``G'``."""
        return self._engine.g_prime_degree(node)

    def actual_degree(self, node: NodeId) -> int:
        """Degree of ``node`` in the healed graph ``G`` (O(1))."""
        return self._engine.actual_degree(node)

    @property
    def degree_touch_log(self):
        """The engine's degree-touch journal (lets the incremental adversaries
        run their lazy-heap fast path against the distributed healer too)."""
        return self._engine.degree_touch_log

    def compact_journals(self) -> Dict[str, int]:
        """Compact the engine's journals (see :meth:`ForgivingGraph.compact_journals`)."""
        return self._engine.compact_journals()

    def degree_increase_factor(self, node: Optional[NodeId] = None) -> float:
        """Worst ``deg(v, G) / deg(v, G')`` ratio (Theorem 1.1's metric)."""
        return self._engine.degree_increase_factor(node)

    # ------------------------------------------------------------------ #
    # adversarial operations
    # ------------------------------------------------------------------ #
    def insert(self, node: NodeId, attach_to: Sequence[NodeId] = ()) -> None:
        """Adversarial insertion: join the network with edges to ``attach_to``.

        The inserted processor knows its chosen neighbours locally and sends
        each of them one :class:`InsertionNotice` so they can create their
        Table 1 edge record — the only communication insertions need.  The
        new links are sourced by the real edges (both endpoints know them at
        attach time, Figure 1's model), so a lost notice cannot detach the
        topology.
        """
        self._engine.insert(node, attach_to=attach_to)
        processor = self.network.add_processor(node)
        for neighbor in dict.fromkeys(attach_to):
            if not self.network.has_processor(neighbor):
                # A quarantined neighbour looks crashed to the protocol: the
                # oracle records the edge, but no processor can ack the
                # attachment, so the message-native side skips the wiring.
                continue
            self.network.add_link_source(real_source_key(node, neighbor), node, neighbor)
            processor.ensure_edge(neighbor)
            self.network.processors[neighbor].ensure_edge(node)
            self.network.send(
                self.network.new(InsertionNotice, sender=node, receiver=neighbor, inserted=node)
            )
        if attach_to:
            self.network.deliver_round()

    def delete(self, node: NodeId) -> DeletionCostReport:
        """Adversarial deletion: heal the network and account for every message.

        The repair is planned from pre-deletion local knowledge, executed as
        messages, and measured off the per-repair metrics window — O(repair)
        work throughout, and no oracle reads anywhere on the path.
        """
        degree = self._engine.g_prime_degree(node)
        self._uninstall_runtime()
        plan = plan_repair(self._engine, node)

        # Byzantine accountability: snapshot the transcript / injection-log
        # counters so the report can carry this deletion's deltas.
        schedule = self.network.fault_schedule
        transcript = self.network.transcript
        track_byzantine = (
            transcript is not None and schedule is not None and schedule.has_byzantine
        )
        if track_byzantine:
            injection = self.network.injection_log
            pre_accused = set(transcript.accused)
            pre_accusations = len(transcript)
            pre_lies_sent = injection.total_sent
            pre_lies_delivered = injection.total_delivered

        self.network.begin_repair()

        # The oracle executes the same move (it owns the G'/alive bookkeeping
        # every consumer reads); its merge outcome is quarantined away from
        # the message path when paranoia is requested.
        self._engine.delete(node)
        if self.quarantine_oracle:
            self._engine.last_repair_rt = _OracleQuarantine()
            self._engine.last_new_helpers = _OracleQuarantine()
            self._engine.last_released_helper_ports = _OracleQuarantine()

        if self.network.has_processor(node):
            self.network.remove_processor(node)
        rounds = execute_repair(self.network, plan)

        window = self.network.end_repair()
        self._runtime = _RepairRuntime(
            plan=plan,
            victim=plan.victim,
            leader=plan.leader,
            degree=degree,
            helpers_released=sum(
                len(context.released) for context in plan.contexts.values()
            ),
            participants=[p for p in plan.contexts if self.network.has_processor(p)],
        )
        if self.quarantine_plan_audit:
            # From here on the plan's global knowledge is poison: the
            # recovery below (and any manual reconverge) must run on gossip
            # digests alone.
            plan.contexts = _PlanAuditQuarantine()
            plan.all_summaries = _PlanAuditQuarantine()
        recon: Optional[RecoveryCostReport] = None
        if self.network.fault_schedule is not None and self.auto_reconverge:
            recon = self.reconverge()

        byzantine: Optional[ByzantineReport] = None
        if track_byzantine:
            newly = tuple(
                sorted(transcript.accused - pre_accused, key=repr)
            )
            latencies: Dict[NodeId, int] = {}
            for accused in newly:
                latency = injection.detection_latency(accused, transcript)
                if latency is not None:
                    latencies[accused] = latency
            byzantine = ByzantineReport(
                lies_sent=injection.total_sent - pre_lies_sent,
                lies_delivered=injection.total_delivered - pre_lies_delivered,
                accusations=len(transcript) - pre_accusations,
                newly_accused=newly,
                false_accusations=sum(
                    1 for accused in newly if not schedule.is_byzantine(accused)
                ),
                containment={
                    accused: injection.containment_radius(accused) for accused in newly
                },
                detection_latency=latencies,
                quarantined_total=len(self.network.quarantined),
            )

        outcome = self._leader_outcome()
        report = DeletionCostReport(
            deleted_node=node,
            degree=degree,
            n_ever=self._engine.nodes_ever,
            messages=window.messages,
            bits=window.bits,
            rounds=rounds,
            max_message_bits=window.max_message_bits,
            max_messages_per_node=window.max_messages_per_node(),
            helpers_created=len(outcome.helpers) if outcome is not None else 0,
            helpers_released=self._runtime.helpers_released,
            # All of this deletion's losses: the repair window's plus any
            # suffered while reconverging (the window closes before recovery).
            dropped_messages=window.dropped
            + (recon.dropped if recon is not None else 0),
            retransmissions=recon.retransmissions if recon is not None else 0,
            reconvergence_rounds=recon.rounds if recon is not None else 0,
            converged=recon.converged if recon is not None else True,
            recovery=recon,
            byzantine=byzantine,
        )
        self.cost_reports.append(report)
        return report

    # ------------------------------------------------------------------ #
    # concurrent epoch-tagged bursts
    # ------------------------------------------------------------------ #
    _BATCH_DEFAULT = object()  # sentinel: "use self.repair_concurrency"

    def delete_batch(
        self,
        victims: Sequence[NodeId],
        concurrency=_BATCH_DEFAULT,
        max_rounds: int = 600,
        max_sweeps: int = 40,
    ) -> BurstCostReport:
        """Heal a burst of deletions, admitting disjoint repairs concurrently.

        The driver plans every pending victim, groups pairwise-disjoint
        repair footprints (the ``repair_footprint`` locality test of
        ``experiments.sweeps``) into an admission **wave**, and runs the
        whole wave's repairs inside one shared ``deliver_round`` stream:
        every message carries its repair's victim as epoch tag, handler
        state is epoch-keyed, and per-epoch metrics windows attribute each
        message to its repair.  Overlapping footprints queue and are
        re-planned once their predecessors complete (the predecessor's
        repair changes the RT structure the successor's plan must read).
        Anti-entropy is folded into the background: once a repair's
        deadline passes, its participants gossip digest chunks *inside the
        same loop* (see :class:`~repro.distributed.recovery
        .BackgroundRecovery`), and the first sweep after every
        ``recovery_satisfied`` predicate holds is recorded as the
        fixed-point probe — provably empty on the lossless path.

        ``concurrency=1`` is the retained reference path: it literally
        loops :meth:`delete`, so it is bit-identical to sequential deletes
        under every delivery preset.  Burst cost trends to ~max, not ~sum,
        of the individual repair latencies (the ``concurrent_repairs``
        BENCH gate).
        """
        if concurrency is self._BATCH_DEFAULT:
            concurrency = self.repair_concurrency
        victims = list(dict.fromkeys(victims))
        if concurrency is not None and concurrency <= 1:
            reports = [self.delete(victim) for victim in victims]
            burst = BurstCostReport(
                victims=tuple(victims),
                concurrency=1,
                waves=len(victims),
                rounds=sum(r.rounds + r.reconvergence_rounds for r in reports),
                reports=reports,
                wave_sizes=tuple(1 for _ in victims),
            )
            self.burst_reports.append(burst)
            return burst

        from ..experiments.sweeps import independent_repair_batches

        self._uninstall_runtime()
        pending = list(victims)
        all_reports: List[DeletionCostReport] = []
        wave_sizes: List[int] = []
        total_rounds = 0
        while pending:
            # Plan every pending victim on the *current* engine state and
            # admit the first-fit disjoint batch (same footprint definition
            # as ``experiments.sweeps.repair_footprint``).
            plans: Dict[NodeId, RepairPlan] = {}
            footprints = []
            for victim in pending:
                plan = plan_repair(self._engine, victim)
                plans[victim] = plan
                footprints.append((victim, frozenset(plan.contexts) | {victim}))
            wave = independent_repair_batches(footprints)[0]
            if concurrency is not None:
                wave = wave[: max(int(concurrency), 1)]
            admitted = set(wave)
            pending = [victim for victim in pending if victim not in admitted]
            wave_reports, wave_rounds = self._run_wave(
                [(victim, plans[victim]) for victim in wave],
                max_rounds=max_rounds,
                max_sweeps=max_sweeps,
            )
            all_reports.extend(wave_reports)
            wave_sizes.append(len(wave))
            total_rounds += wave_rounds
        burst = BurstCostReport(
            victims=tuple(victims),
            concurrency=concurrency,
            waves=len(wave_sizes),
            rounds=total_rounds,
            reports=all_reports,
            wave_sizes=tuple(wave_sizes),
        )
        self.burst_reports.append(burst)
        return burst

    def _run_wave(
        self,
        wave: List[Tuple[NodeId, RepairPlan]],
        max_rounds: int,
        max_sweeps: int,
    ) -> Tuple[List[DeletionCostReport], int]:
        """Run one admission wave of disjoint repairs in a shared round loop."""
        network = self.network
        metrics = network.metrics
        schedule = network.fault_schedule
        transcript = network.transcript
        track_byzantine = (
            transcript is not None and schedule is not None and schedule.has_byzantine
        )
        if track_byzantine:
            injection = network.injection_log
            pre_accused = set(transcript.accused)
            pre_accusations = len(transcript)
            pre_lies_sent = injection.total_sent
            pre_lies_delivered = injection.total_delivered

        # Everything reporting needs is copied out of the plans now, so the
        # plan-audit quarantine can poison their global knowledge before a
        # single message flows.
        degrees = {victim: self._engine.g_prime_degree(victim) for victim, _ in wave}
        leaders = {victim: plan.leader for victim, plan in wave}
        released = {
            victim: sum(len(context.released) for context in plan.contexts.values())
            for victim, plan in wave
        }
        deadlines = {victim: plan.max_deadline for victim, plan in wave}

        # Admission: the whole wave dies in one adversarial move — oracle
        # deletes first (mirroring ``delete``), then every repair seeds its
        # Phase 0/1 into the same open scaffold.
        for victim, _ in wave:
            self._engine.delete(victim)
            if self.quarantine_oracle:
                self._engine.last_repair_rt = _OracleQuarantine()
                self._engine.last_new_helpers = _OracleQuarantine()
                self._engine.last_released_helper_ports = _OracleQuarantine()
            if network.has_processor(victim):
                network.remove_processor(victim)
        network.begin_scaffold()
        participants_by_victim: Dict[NodeId, List[NodeId]] = {}
        union_participants: List[NodeId] = []
        seen: Set[NodeId] = set()
        for victim, plan in wave:
            metrics.begin_epoch_window(victim)
            participants = seed_repair(network, plan)
            participants_by_victim[victim] = participants
            for node in participants:
                if node not in seen:
                    seen.add(node)
                    union_participants.append(node)

        repair_windows: Dict[NodeId, MetricsWindow] = {}
        recoveries: List[BackgroundRecovery] = []
        if self.auto_reconverge:
            for victim, _ in wave:

                def _roll_window(victim: NodeId = victim) -> None:
                    # The repair phase is quiet: everything this epoch sends
                    # from here on is anti-entropy, attributed to its own
                    # recovery window.
                    repair_windows[victim] = metrics.end_epoch_window(victim)
                    metrics.begin_epoch_window(victim)

                recoveries.append(
                    BackgroundRecovery(
                        network,
                        victim=victim,
                        participants=participants_by_victim[victim],
                        degree=degrees[victim],
                        n_ever=self._engine.nodes_ever,
                        deadline=deadlines[victim],
                        max_sweeps=max_sweeps,
                        on_start=_roll_window,
                    )
                )
        if self.quarantine_plan_audit:
            for _, plan in wave:
                plan.contexts = _PlanAuditQuarantine()
                plan.all_summaries = _PlanAuditQuarantine()

        # The shared round loop: all epochs' probes, reports, merges,
        # assignments and digests interleave in the same delivery stream.
        shared_deadline = max(deadlines.values(), default=1)
        rounds = 1
        while (
            network.in_flight
            or rounds < shared_deadline
            or any(not recovery.finished for recovery in recoveries)
        ):
            if rounds >= max_rounds:
                break
            network.deliver_round()
            rounds += 1
            network.tick(rounds, union_participants)
            for recovery in recoveries:
                recovery.step(rounds)

        # Budget exhaustion is loud, exactly like the standalone recovery:
        # per-epoch leftovers are measured, then the traffic is discarded
        # (the drops land in whichever epoch window is open for the victim).
        leftovers: Dict[NodeId, int] = {}
        if network.in_flight or any(not recovery.finished for recovery in recoveries):
            for recovery in recoveries:
                if not recovery.finished:
                    leftovers[recovery.victim] = network.in_flight_for(recovery.victim)
                    recovery.finish(rounds)
            network.drop_in_flight()
        network.end_scaffold()

        byzantine: Optional[ByzantineReport] = None
        if track_byzantine:
            newly = tuple(sorted(transcript.accused - pre_accused, key=repr))
            latencies: Dict[NodeId, int] = {}
            for accused in newly:
                latency = injection.detection_latency(accused, transcript)
                if latency is not None:
                    latencies[accused] = latency
            byzantine = ByzantineReport(
                lies_sent=injection.total_sent - pre_lies_sent,
                lies_delivered=injection.total_delivered - pre_lies_delivered,
                accusations=len(transcript) - pre_accusations,
                newly_accused=newly,
                false_accusations=sum(
                    1 for accused in newly if not schedule.is_byzantine(accused)
                ),
                containment={
                    accused: injection.containment_radius(accused) for accused in newly
                },
                detection_latency=latencies,
                quarantined_total=len(network.quarantined),
            )

        recovery_by_victim = {recovery.victim: recovery for recovery in recoveries}
        wave_reports: List[DeletionCostReport] = []
        for victim, _ in wave:
            repair_window = repair_windows.pop(victim, None)
            if repair_window is None:
                # Recovery never reached its quiet point (or is disabled):
                # the epoch window still holds the repair attribution.
                repair_window = metrics.end_epoch_window(victim)
                recovery_window = MetricsWindow()
            else:
                recovery_window = metrics.end_epoch_window(victim)
            recovery = recovery_by_victim.get(victim)
            recon: Optional[RecoveryCostReport] = None
            if recovery is not None:
                recon = recovery.report(
                    recovery_window, leftover=leftovers.get(victim, 0)
                )
                self.recovery_reports.append(recon)
            outcome = self._outcome_of(leaders[victim], victim)
            wave_reports.append(
                DeletionCostReport(
                    deleted_node=victim,
                    degree=degrees[victim],
                    n_ever=self._engine.nodes_ever,
                    messages=repair_window.messages,
                    bits=repair_window.bits,
                    # Shared wall clock: every repair of the wave rode the
                    # same rounds (the burst's cost ≈ max story).
                    rounds=rounds,
                    max_message_bits=repair_window.max_message_bits,
                    max_messages_per_node=repair_window.max_messages_per_node(),
                    helpers_created=len(outcome.helpers) if outcome is not None else 0,
                    helpers_released=released[victim],
                    dropped_messages=repair_window.dropped
                    + (recon.dropped if recon is not None else 0),
                    retransmissions=recon.retransmissions if recon is not None else 0,
                    reconvergence_rounds=recon.rounds if recon is not None else 0,
                    converged=recon.converged if recon is not None else True,
                    recovery=recon,
                    byzantine=None,
                )
            )
        if byzantine is not None and wave_reports:
            # Wave-level accountability deltas ride the wave's last report
            # (attaching to each would double-count under aggregation).
            wave_reports[-1] = dataclasses.replace(wave_reports[-1], byzantine=byzantine)

        for victim, _ in wave:
            for node in participants_by_victim[victim]:
                processor = network.processors.get(node)
                if processor is not None:
                    processor.uninstall_repair(victim)
        self.cost_reports.extend(wave_reports)
        return wave_reports, rounds

    def _outcome_of(self, leader: Optional[NodeId], victim: NodeId):
        """One repair's leader merge outcome, read through its processor."""
        if leader is None:
            return None
        processor = self.network.processors.get(leader)
        if processor is None:
            return None
        context = processor.repairs.get(victim)
        return context.outcome if context is not None else None

    def _leader_outcome(self):
        """The leader's current merge outcome, read through its processor.

        Reporting reads the leader's *own* context as installed on its
        processor (never the plan's context map, which may be quarantined).
        """
        runtime = self._runtime
        if runtime is None or runtime.leader is None:
            return None
        return self._outcome_of(runtime.leader, runtime.victim)

    def _uninstall_runtime(self) -> None:
        """Retire the previous repair's contexts before planning the next one."""
        runtime, self._runtime = self._runtime, None
        if runtime is None:
            return
        for node in runtime.participants:
            processor = self.network.processors.get(node)
            if processor is not None:
                processor.uninstall_repair(runtime.victim)

    # ------------------------------------------------------------------ #
    # reconvergence (gossip-digest anti-entropy, message-native)
    # ------------------------------------------------------------------ #
    def reconverge(self, max_rounds: int = 600, max_sweeps: int = 40) -> RecoveryCostReport:
        """Drive the last repair's distributed state back to a fixed point.

        A thin driver over :func:`repro.distributed.recovery.run_recovery`:
        participants gossip compact digests of their *own* repair state
        along spine/anchor links (real messages through
        ``Network.deliver_round``, so faults hit recovery traffic too) and
        retransmit exactly what their neighbours' digests show missing; the
        leader re-merges under a higher epoch when digests surface
        unreported pieces.  A sweep that carried digests only is the silent
        fixed point.  With any fault probability below one, termination is
        almost sure, every run is deterministic given the fault schedule's
        seed, and exhausting ``max_rounds`` mid-delivery is reported
        (``converged=False`` plus the discarded in-flight count), never
        silently swallowed.
        """
        runtime = self._runtime
        if runtime is None:
            return RecoveryCostReport(
                victim=None, degree=0, n_ever=self._engine.nodes_ever, converged=True
            )
        report = run_recovery(
            self.network,
            victim=runtime.victim,
            participants=runtime.participants,
            degree=runtime.degree,
            n_ever=self._engine.nodes_ever,
            leader=runtime.leader,
            max_rounds=max_rounds,
            max_sweeps=max_sweeps,
        )
        self.recovery_reports.append(report)
        return report

    # ------------------------------------------------------------------ #
    # the retained plan-based audit (an oracle, never on the recovery path)
    # ------------------------------------------------------------------ #
    def audit_reference(self) -> List:
        """Run the plan-based global audit for the last repair (oracle only).

        Returns the retransmissions the old god's-eye audit would still
        want — an empty list certifies the digest recovery reached the same
        fixed point the global audit recognizes.  Used by the equivalence
        tests as a ``verify_consistency``-style check; it reads the plan's
        global knowledge, so it *raises* under ``quarantine_plan_audit``
        (which is exactly the structural proof the recovery gate wants).
        """
        runtime = self._runtime
        if runtime is None:
            return []
        return self._audit_reference(runtime.plan)

    def _audit_reference(self, plan: RepairPlan) -> List:
        """One global audit pass: the retransmissions the repair still needs.

        The seed-era detection, retained as an oracle: it walks *every*
        participant's plan context and the full piece union — knowledge no
        single processor of the paper's model holds — which is why the
        digest protocol replaced it on the recovery path.
        """
        resends: List = []
        network = self.network
        victim = plan.victim
        leader = plan.leader
        leader_context = plan.contexts.get(leader) if leader is not None else None

        # (1) Strip knowledge that never applied: resend the probe.
        for node, context in plan.contexts.items():
            if not context.stripped and (context.released or context.glue):
                sender = leader if leader is not None else node
                resends.append(
                    Probe(sender=sender, receiver=node, deleted=victim, hops=0)
                )

        if leader_context is None:
            return resends

        # (2) Pieces the leader never learnt about: their owners re-offer them.
        known = set(leader_context.gathered)
        for summary in plan.all_summaries:
            if summary not in known:
                resends.append(
                    PrimaryRootList(
                        sender=summary.root_port.processor,
                        receiver=leader,
                        deleted=victim,
                        roots=(summary,),
                    )
                )
        outcome = leader_context.outcome
        if outcome is None or set(outcome.summaries) != set(leader_context.gathered):
            # The leader has (or just regained) more knowledge than its last
            # merge used; nudge it to re-merge by re-offering anything known.
            if outcome is not None and not any(
                isinstance(m, PrimaryRootList) for m in resends
            ):
                refresh = next(iter(leader_context.gathered), None)
                if refresh is not None:
                    resends.append(
                        PrimaryRootList(
                            sender=leader, receiver=leader, deleted=victim, roots=(refresh,)
                        )
                    )
            return resends

        # (3) Outcome instructions that never applied (or were superseded).
        epoch = leader_context.epoch
        current_ports = outcome.helper_ports()
        for helper in outcome.helpers:
            record = self._record_of(helper.port)
            applied = (
                record is not None
                and record.has_helper
                and record.helper_victim == victim
                and record.helper_left == helper.left_port
                and record.helper_right == helper.right_port
                and record.helper_parent == helper.parent_port
            )
            links_ok = all(
                network.has_link_source(key, u, v)
                for key, u, v in (
                    (link_source_key(helper.port, child), helper.port.processor, child.processor)
                    for child in (helper.left_port, helper.right_port)
                )
                if u != v
            )
            if not applied or not links_ok:
                resends.append(
                    HelperAssignment(
                        sender=leader,
                        receiver=helper.port.processor,
                        deleted=victim,
                        helper_port=helper.port,
                        parent_port=helper.parent_port,
                        left_port=helper.left_port,
                        right_port=helper.right_port,
                        create=True,
                        representative_port=helper.representative,
                        height=helper.height,
                        num_leaves=helper.num_leaves,
                        epoch=epoch,
                    )
                )
        for child_port, child_is_leaf, parent_port in outcome.parent_updates:
            record = self._record_of(child_port)
            if record is None:
                continue
            applied = (
                record.helper_parent == parent_port
                if not child_is_leaf
                else record.rt_parent == parent_port
            )
            if not applied:
                resends.append(
                    ParentUpdate(
                        sender=leader,
                        receiver=child_port.processor,
                        deleted=victim,
                        child_port=child_port,
                        parent_port=parent_port,
                        child_is_helper=not child_is_leaf,
                        epoch=epoch,
                    )
                )
        # (4) Assignments a re-merge superseded but that are still applied.
        for port in leader_context.instructed:
            if port in current_ports:
                continue
            record = self._record_of(port)
            if record is not None and record.has_helper and record.helper_victim == victim:
                resends.append(
                    HelperAssignment(
                        sender=leader,
                        receiver=port.processor,
                        deleted=victim,
                        helper_port=port,
                        create=False,
                        epoch=epoch,
                    )
                )
        return resends

    def _record_of(self, port: Port):
        processor = self.network.processors.get(port.processor)
        if processor is None:
            return None
        return processor.edges.get(port.neighbor)

    # ------------------------------------------------------------------ #
    # oracle resync (the retained full-diff reference path)
    # ------------------------------------------------------------------ #
    def _sync_links_reference(self) -> None:
        """Rebuild the sourced link set from the oracle — a full O(n + m) diff.

        The seed-era link sync, retained as the ground truth the
        message-native maintenance is equivalence-tested against (the tests
        assert it is a *no-op* after lossless repairs) and as a last-resort
        recovery: it reconstitutes every link source — real edges and RT
        virtual edges — exactly as the message flow would have.
        """
        expected: Dict[frozenset, Set[Tuple]] = {}
        engine = self._engine
        alive = engine.alive_nodes
        for u, v in engine.g_prime_graph_view().edges:
            if u in alive and v in alive:
                expected.setdefault(frozenset((u, v)), set()).add(real_source_key(u, v))
        for rt in engine.reconstruction_trees():
            for parent, child in rt.virtual_edges():
                p, c = parent.processor, child.processor
                if p != c:
                    parent_port = parent.port if isinstance(parent, RTLeaf) else parent.simulated_by
                    child_port = child.port if isinstance(child, RTLeaf) else child.simulated_by
                    expected.setdefault(frozenset((p, c)), set()).add(
                        link_source_key(parent_port, child_port)
                    )
        network = self.network
        for link in {frozenset(pair) for pair in network.iter_links()} - set(expected):
            u, v = tuple(link)
            network.disconnect(u, v)
        network.replace_link_sources(expected)
        for link in expected:
            u, v = tuple(link)
            if network.has_processor(u) and network.has_processor(v):
                network.connect(u, v)

    # ------------------------------------------------------------------ #
    # consistency between distributed state and the reference engine
    # ------------------------------------------------------------------ #
    def verify_consistency(self) -> None:
        """Check that the distributed state matches the reference oracle.

        Four families of checks, all raising
        :class:`InvariantViolationError` on mismatch: the network's
        addition-counted ``n_ever`` must equal the engine's ``nodes_ever``
        (the engine-driven cross-check of the message-sizing ``n``); the
        message-maintained link set must equal the healed graph's edge set;
        every link's *source multiplicity* must equal the engine's edge
        multiplicity (the distributed twin of the incremental ``G``
        bookkeeping); and for every helper node the engine maintains, the
        simulating processor must have ``has_helper`` set with the matching
        children pointers, with no processor claiming a helper the engine
        does not know about.
        """
        if self.network.n_ever != self._engine.nodes_ever:
            raise InvariantViolationError(
                f"network counted {self.network.n_ever} processors ever, "
                f"engine has seen {self._engine.nodes_ever} nodes"
            )

        healed_edges = {frozenset(edge) for edge in self._engine.actual_view().edges}
        links = {frozenset(link) for link in self.network.iter_links()}
        if links != healed_edges:
            missing = healed_edges - links
            extra = links - healed_edges
            raise InvariantViolationError(
                f"link set diverges from the healed graph "
                f"(missing={len(missing)}, unexpected={len(extra)})"
            )
        for key, count in self._engine._edge_mult.items():
            u, v = tuple(key)
            have = self.network.link_source_count(u, v)
            if have != count:
                raise InvariantViolationError(
                    f"link ({u!r}, {v!r}) has {have} message-tracked sources, "
                    f"engine counts multiplicity {count}"
                )

        engine_helpers: Dict[Port, RTHelper] = {}
        for rt in self._engine.reconstruction_trees():
            engine_helpers.update(rt.helpers)

        recorded: Dict[Port, Tuple[Optional[Port], Optional[Port]]] = {}
        for node_id, processor in self.network.processors.items():
            for neighbor, record in processor.edges.items():
                if record.has_helper:
                    recorded[Port(node_id, neighbor)] = (record.helper_left, record.helper_right)

        missing = set(engine_helpers) - set(recorded)
        if missing:
            raise InvariantViolationError(
                f"{len(missing)} helper nodes are unknown to their processors: {sorted(map(str, missing))[:5]}"
            )
        extra = set(recorded) - set(engine_helpers)
        if extra:
            raise InvariantViolationError(
                f"{len(extra)} processors claim helpers the engine does not have: {sorted(map(str, extra))[:5]}"
            )
        for port, helper in engine_helpers.items():
            left, right = recorded[port]
            expected_left = helper.left.port if isinstance(helper.left, RTLeaf) else helper.left.simulated_by
            expected_right = helper.right.port if isinstance(helper.right, RTLeaf) else helper.right.simulated_by
            if left != expected_left or right != expected_right:
                raise InvariantViolationError(
                    f"helper {port} child pointers diverge between processor and engine"
                )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DistributedForgivingGraph(alive={self.num_alive}, ever={self.nodes_ever}, "
            f"messages={self.network.metrics.total_messages})"
        )
