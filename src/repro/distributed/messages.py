"""Message vocabulary of the distributed repair protocol.

Each message type corresponds to one of the exchanges described in
Section 4.2 and the pseudocode of Appendix A:

* :class:`DeletionNotice` / :class:`InsertionNotice` — the model-level
  notifications of Figure 1 ("all neighbours of ``v_t`` are informed"),
* :class:`AnchorLink` — phase 1 of the repair: the anchors of the affected
  reconstruction-tree fragments link up into the binary tree ``BT_v``,
* :class:`Probe` / :class:`PrimaryRootReport` — ``FindPrRoots``
  (Algorithm A.5): walking the right spine of a fragment to locate primary
  roots and reporting them back to the anchor,
* :class:`PrimaryRootList` — anchors exchanging their primary-root lists
  with their ``BT_v`` parent/children (Algorithm A.7),
* :class:`HelperAssignment` — the merge instruction telling a processor to
  instantiate (or drop) a helper node with given parent/children
  (Algorithms A.8/A.9).

Message sizes are measured in *words* of ``O(log n)`` bits: a node or port
identifier costs one word, so Lemma 4's "messages of size ``O(log n)``"
corresponds to a constant number of words per message, except for
:class:`PrimaryRootList`, whose payload is one word per primary root (at most
``O(log n)`` of them).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..core.ports import NodeId, Port

__all__ = [
    "Message",
    "DeletionNotice",
    "InsertionNotice",
    "AnchorLink",
    "Probe",
    "PrimaryRootReport",
    "PrimaryRootList",
    "ParentUpdate",
    "HelperAssignment",
    "words_to_bits",
]

_message_counter = itertools.count(1)


def words_to_bits(words: int, n_ever: int) -> int:
    """Convert a payload measured in identifier words into bits for ``n`` nodes."""
    word_bits = max(int(math.ceil(math.log2(max(n_ever, 2)))), 1)
    return words * word_bits


@dataclass
class Message:
    """Base class for protocol messages travelling between processors."""

    sender: NodeId
    receiver: NodeId

    #: Payload size in identifier words (subclasses override as needed).
    payload_words: int = field(default=2, init=False)

    def __post_init__(self) -> None:
        self.message_id = next(_message_counter)

    @property
    def kind(self) -> str:
        """Short name of the message type (used in traces and metrics)."""
        return type(self).__name__

    def size_bits(self, n_ever: int) -> int:
        """Size of this message in bits when identifiers need ``log2 n`` bits."""
        return words_to_bits(self.payload_words, n_ever)


@dataclass
class DeletionNotice(Message):
    """Failure notification: ``deleted`` has vanished (delivered to each neighbour)."""

    deleted: NodeId = None


@dataclass
class InsertionNotice(Message):
    """A freshly inserted node announces itself to one of its chosen neighbours."""

    inserted: NodeId = None


@dataclass
class AnchorLink(Message):
    """Anchors of affected fragments link into the binary tree ``BT_v``."""

    deleted: NodeId = None
    #: Port identifying the fragment this anchor speaks for.
    anchor_port: Optional[Port] = None


@dataclass
class Probe(Message):
    """``FindPrRoots`` probe walking down the right spine of a fragment."""

    deleted: NodeId = None
    #: Port of the virtual node currently being probed.
    target_port: Optional[Port] = None
    #: Hop count so far (for tracing; the paper's probes carry child counts).
    hops: int = 0


@dataclass
class PrimaryRootReport(Message):
    """A primary root confirms its identity (and subtree size) back to the anchor."""

    deleted: NodeId = None
    root_port: Optional[Port] = None
    subtree_leaves: int = 0


@dataclass
class PrimaryRootList(Message):
    """An anchor ships its list of primary roots to its ``BT_v`` parent (or child)."""

    deleted: NodeId = None
    roots: Tuple[Port, ...] = ()

    def __post_init__(self) -> None:
        super().__post_init__()
        # One word per primary root plus a couple of words of header.
        self.payload_words = 2 + len(self.roots)


@dataclass
class ParentUpdate(Message):
    """Tell a processor the new RT parent of one of its real or helper nodes."""

    deleted: NodeId = None
    #: Port of the node (leaf or helper) whose parent changed.
    child_port: Optional[Port] = None
    #: Port of the new parent helper node.
    parent_port: Optional[Port] = None
    #: True when the update concerns the processor's helper node rather than its leaf.
    child_is_helper: bool = False

    def __post_init__(self) -> None:
        super().__post_init__()
        self.payload_words = 4


@dataclass
class HelperAssignment(Message):
    """Instruct a processor to instantiate / rewire the helper node of one of its ports.

    ``helper_port`` identifies the helper (the processor owning that port
    simulates it); parent and children are given as ports of the virtual
    nodes they refer to, or ``None``.
    """

    deleted: NodeId = None
    helper_port: Optional[Port] = None
    parent_port: Optional[Port] = None
    left_port: Optional[Port] = None
    right_port: Optional[Port] = None
    #: False when the helper should be dropped ("marked red") instead of created.
    create: bool = True

    def __post_init__(self) -> None:
        super().__post_init__()
        self.payload_words = 6
