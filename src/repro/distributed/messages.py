"""Message vocabulary of the distributed repair protocol.

Each message type corresponds to one of the exchanges described in
Section 4.2 and the pseudocode of Appendix A:

* :class:`DeletionNotice` / :class:`InsertionNotice` — the model-level
  notifications of Figure 1 ("all neighbours of ``v_t`` are informed"),
* :class:`AnchorLink` — phase 1 of the repair: the anchors of the affected
  reconstruction-tree fragments link up into the binary tree ``BT_v``,
* :class:`Probe` / :class:`PrimaryRootReport` — ``FindPrRoots``
  (Algorithm A.5): walking the right spine of a fragment to locate primary
  roots and reporting them back to the anchor,
* :class:`PrimaryRootList` — anchors exchanging their primary-root lists
  with their ``BT_v`` parent/children (Algorithm A.7),
* :class:`HelperAssignment` — the merge instruction telling a processor to
  instantiate (or drop) a helper node with given parent/children
  (Algorithms A.8/A.9),
* :class:`Digest` / :class:`DigestRequest` — the anti-entropy recovery
  protocol (PR 5, in the style of self-stabilizing silent protocols): each
  repair participant periodically gossips a compact digest of its *own*
  repair state (probe seen?  pieces vouched for?  assignments applied?)
  along the spine/anchor links, and the merge leader pulls
  :class:`PortDigest` record summaries from the owners it instructed, so
  divergence is detected from messages instead of a global audit.

Message sizes are measured in *words* of ``O(log n)`` bits: a node or port
identifier costs one word, so Lemma 4's "messages of size ``O(log n)``"
corresponds to a constant number of words per message.
:class:`PrimaryRootReport` / :class:`PrimaryRootList` carry a few words per
primary-root descriptor and are chunked at :data:`MAX_ROOTS_PER_MESSAGE`
descriptors, so even they never exceed ``O(log n)`` bits per message.

Byzantine accountability (PR 6) adds cheap integrity tags:

* every structural message carries a lazily-computed **seal** over its
  payload fields (:attr:`Message.seal` / :meth:`Message.seal_valid`),
  simulating an unforgeable MAC over the payload the sender authored.  An
  honest message is valid by construction; the fault layer's post-hoc
  payload corruption leaves a *stale* seal behind, which any receiver can
  detect locally.  A byzantine processor may still *author* a lie (forge a
  fresh, validly-sealed payload) — those are caught by cross-witnessing in
  :mod:`repro.distributed.processor`, not here.
* :class:`PortDigest` (and :class:`~repro.distributed.merge.PieceSummary`)
  embed a content **checksum** so corrupted descriptors are detected even
  when relayed verbatim inside an honestly-sealed envelope.

Both tags cost O(1) words (folded into the existing per-descriptor word
counts) and are computed lazily, so the lossless fast path pays nothing
when nobody verifies.
"""

from __future__ import annotations

import itertools
import math
import zlib
from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..core.ports import NodeId, Port

__all__ = [
    "Message",
    "DeletionNotice",
    "InsertionNotice",
    "AnchorLink",
    "Probe",
    "PrimaryRootReport",
    "PrimaryRootList",
    "ParentUpdate",
    "HelperAssignment",
    "Digest",
    "DigestRequest",
    "PortDigest",
    "words_to_bits",
    "payload_checksum",
    "SEALED_KINDS",
]

_message_counter = itertools.count(1)


def payload_checksum(*parts: object) -> int:
    """Cheap content checksum over payload parts (CRC32 of their repr).

    Ports have stable memoized reprs and descriptor dataclasses exclude
    their own checksum fields from ``repr``, so the digest covers exactly
    the semantic content.  This stands in for a collision-resistant hash:
    the simulation never *searches* for collisions, it only compares a
    frozen tag against recomputed content.
    """
    return zlib.crc32(repr(parts).encode("utf-8"))


#: Message kinds that carry a payload seal and are verified on receipt.
#: (Probes and notices carry no mergeable payload worth lying about.)
SEALED_KINDS = frozenset(
    {
        "PrimaryRootReport",
        "PrimaryRootList",
        "ParentUpdate",
        "HelperAssignment",
        "Digest",
    }
)


def words_to_bits(words: int, n_ever: int) -> int:
    """Convert a payload measured in identifier words into bits for ``n`` nodes."""
    word_bits = max(int(math.ceil(math.log2(max(n_ever, 2)))), 1)
    return words * word_bits


@dataclass
class Message:
    """Base class for protocol messages travelling between processors."""

    sender: NodeId
    receiver: NodeId

    #: Payload size in identifier words (subclasses override as needed).
    payload_words: int = field(default=2, init=False)

    #: Short name of the message type (used in traces and metrics).  A plain
    #: class attribute — stamped per subclass below — instead of the seed-era
    #: per-access property: delivery reads ``kind`` several times per
    #: message (counters, dispatch, seals), so the hot loop pays one
    #: attribute load, not a method call.  Unannotated on purpose, so the
    #: dataclass machinery never mistakes it for a field.
    kind = "Message"
    #: True when this message type carries a payload seal that receivers
    #: verify (``kind in SEALED_KINDS``, precomputed per class so the
    #: receive gate is one attribute check for the unsealed majority).
    sealed = False

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        cls.kind = cls.__name__
        cls.sealed = cls.__name__ in SEALED_KINDS

    def __post_init__(self) -> None:
        self.message_id = next(_message_counter)
        #: Oracle-side provenance tag: set to the liar's NodeId when the
        #: fault layer (or a byzantine processor's forging hook) corrupted
        #: this message's payload.  Protocol code never reads it — it only
        #: feeds the :class:`~repro.distributed.accountability.InjectionLog`
        #: ground truth that scores detection.
        self.byz_origin: Optional[NodeId] = None

    def size_bits(self, n_ever: int) -> int:
        """Size of this message in bits when identifiers need ``log2 n`` bits."""
        return words_to_bits(self.payload_words, n_ever)

    # ------------------------------------------------------------------ #
    # payload seal (simulated MAC)
    # ------------------------------------------------------------------ #
    def _seal_fields(self) -> Tuple[object, ...]:
        """Payload fields covered by the seal (subclasses override)."""
        return ()

    @property
    def seal(self) -> int:
        """Lazily-computed payload seal, cached on first access.

        An honest sender never touches the payload after construction, so
        its seal — computed whenever first read — always matches and costs
        nothing until somebody verifies.  The fault layer freezes the seal
        *before* mutating payload fields, modelling an adversary that can
        corrupt a payload but cannot forge the original author's MAC.
        """
        cached = self.__dict__.get("_seal")
        if cached is None:
            cached = payload_checksum(self.kind, self._seal_fields())
            self.__dict__["_seal"] = cached
        return cached

    def seal_valid(self) -> bool:
        """Recompute the payload seal and compare against the carried one.

        A message whose seal was never read has — by the laziness contract —
        never been mutated after construction (every corruption path freezes
        the seal first), so it verifies for free; the honest fast path pays
        no hashing at all.
        """
        cached = self.__dict__.get("_seal")
        if cached is None:
            return True
        return cached == payload_checksum(self.kind, self._seal_fields())

    def reseal(self) -> None:
        """Recompute the seal over the *current* payload (forging helper).

        Only byzantine senders call this: it models a liar authoring a
        fresh payload under its own valid MAC — undetectable by seal
        checks, caught instead by cross-witness contradiction.
        """
        self.__dict__["_seal"] = payload_checksum(self.kind, self._seal_fields())


@dataclass
class DeletionNotice(Message):
    """Failure notification: ``deleted`` has vanished (delivered to each neighbour)."""

    deleted: NodeId = None


@dataclass
class InsertionNotice(Message):
    """A freshly inserted node announces itself to one of its chosen neighbours."""

    inserted: NodeId = None


@dataclass
class AnchorLink(Message):
    """Anchors of affected fragments link into the binary tree ``BT_v``."""

    deleted: NodeId = None
    #: Port identifying the fragment this anchor speaks for.
    anchor_port: Optional[Port] = None


@dataclass
class Probe(Message):
    """``FindPrRoots`` probe walking down the right spine of a fragment."""

    deleted: NodeId = None
    #: Port of the virtual node currently being probed.
    target_port: Optional[Port] = None
    #: Hop count so far (for tracing; the paper's probes carry child counts).
    hops: int = 0
    #: Which affected RT's spine this probe walks (plan-relative index).
    rt_index: int = 0


#: Identifier words per serialized primary-root descriptor (root port,
#: representative port, leaf count, height) — see
#: :class:`repro.distributed.merge.PieceSummary`.
ROOT_DESCRIPTOR_WORDS = 4

#: Largest number of descriptors one list message may carry; bigger payloads
#: are chunked into several messages so every message stays ``O(log n)`` bits
#: (Lemma 4's message-size bound).
MAX_ROOTS_PER_MESSAGE = 12


@dataclass
class PrimaryRootReport(Message):
    """Primary-root descriptors flowing back up a probe path to the anchor.

    The payload is the actual piece knowledge of the reporting processor
    (``PieceSummary`` descriptors), pipelined hop-by-hop along the spine —
    the merge leader ends up knowing exactly the pieces whose descriptors
    survived the trip.
    """

    deleted: NodeId = None
    roots: Tuple[object, ...] = ()
    #: Which affected RT's spine this report travels on (plan-relative index).
    rt_index: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        self.payload_words = 2 + ROOT_DESCRIPTOR_WORDS * len(self.roots)

    def _seal_fields(self) -> Tuple[object, ...]:
        return (self.deleted, self.roots, self.rt_index)


@dataclass
class PrimaryRootList(Message):
    """An anchor ships its primary-root descriptors to its ``BT_v`` parent."""

    deleted: NodeId = None
    roots: Tuple[object, ...] = ()

    def __post_init__(self) -> None:
        super().__post_init__()
        # A few descriptor words per primary root plus a header.
        self.payload_words = 2 + ROOT_DESCRIPTOR_WORDS * len(self.roots)

    def _seal_fields(self) -> Tuple[object, ...]:
        return (self.deleted, self.roots)


@dataclass
class ParentUpdate(Message):
    """Tell a processor the new RT parent of one of its real or helper nodes."""

    deleted: NodeId = None
    #: Port of the node (leaf or helper) whose parent changed.
    child_port: Optional[Port] = None
    #: Port of the new parent helper node.
    parent_port: Optional[Port] = None
    #: True when the update concerns the processor's helper node rather than its leaf.
    child_is_helper: bool = False
    #: Merge-outcome epoch (see :class:`HelperAssignment`).
    epoch: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        # deleted + child port + parent port + flag + epoch, one word each.
        self.payload_words = 5

    def _seal_fields(self) -> Tuple[object, ...]:
        return (
            self.deleted,
            self.child_port,
            self.parent_port,
            self.child_is_helper,
            self.epoch,
        )


@dataclass
class HelperAssignment(Message):
    """Instruct a processor to instantiate / rewire the helper node of one of its ports.

    ``helper_port`` identifies the helper (the processor owning that port
    simulates it); parent and children are given as ports of the virtual
    nodes they refer to, or ``None``.  ``epoch`` counts the merge leader's
    outcome recomputations within one repair: when lost summaries surface
    late, the leader re-merges and re-disseminates with a higher epoch, and
    processors ignore instructions from epochs older than the newest they
    have seen for the same repair (so a delayed stale ``create`` cannot
    overwrite a corrective update).
    """

    deleted: NodeId = None
    helper_port: Optional[Port] = None
    parent_port: Optional[Port] = None
    left_port: Optional[Port] = None
    right_port: Optional[Port] = None
    #: False when the helper should be dropped ("marked red") instead of created.
    create: bool = True
    #: Representative leaf port of the helper's subtree (Table 1 state).
    representative_port: Optional[Port] = None
    #: Cached subtree height / leaf count (Table 1 state).
    height: int = 0
    num_leaves: int = 0
    epoch: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        # deleted + 5 ports + height + leaf count + epoch + create flag,
        # one O(log n)-bit word each.
        self.payload_words = 10

    def _seal_fields(self) -> Tuple[object, ...]:
        return (
            self.deleted,
            self.helper_port,
            self.parent_port,
            self.left_port,
            self.right_port,
            self.create,
            self.representative_port,
            self.height,
            self.num_leaves,
            self.epoch,
        )


# --------------------------------------------------------------------------- #
# anti-entropy recovery (gossip digests)
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class PortDigest:
    """Compact Table 1 record summary for one port, as its owner knows it.

    The payload of a :class:`Digest` answering a :class:`DigestRequest`:
    the owner reads *only its own* edge record (and the link sources it
    itself created) and summarizes whether the requested port currently
    simulates a helper for the repair in question, with which pointers.
    The merge leader compares these against its own outcome and retransmits
    exactly the instructions the digest shows missing or superseded.
    """

    port: Port
    #: True when the owner simulates a helper *for this repair* on the port.
    helper_for_victim: bool = False
    helper_left: Optional[Port] = None
    helper_right: Optional[Port] = None
    helper_parent: Optional[Port] = None
    #: The real node's RT parent (the leaf-side pointer ParentUpdate sets).
    rt_parent: Optional[Port] = None
    #: True when the helper's child link sources exist in the owner's view.
    links_ok: bool = True
    #: The *other* repair's victim when the port already simulates a helper
    #: for a different deletion — the owner refuses assignments for a busy
    #: port, so the leader must learn the refusal is permanent.
    busy_with: Optional[NodeId] = None
    #: Content checksum set by ``__post_init__`` (``compare=False`` keeps
    #: equality/hash on the semantic fields, ``repr=False`` keeps it out of
    #: message seals).  The fault layer corrupts a digest by mutating fields
    #: and *keeping* the honest checksum — forging a matching one would mean
    #: breaking the (simulated) collision resistance.
    checksum: int = field(default=0, compare=False, repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "checksum", self.content_checksum())

    def content_checksum(self) -> int:
        return payload_checksum(
            "PortDigest",
            self.port,
            self.helper_for_victim,
            self.helper_left,
            self.helper_right,
            self.helper_parent,
            self.rt_parent,
            self.links_ok,
            self.busy_with,
        )

    def checksum_valid(self) -> bool:
        # Validity is immutable (frozen dataclass), so cache the verdict:
        # an honest descriptor relayed across many hops hashes once.
        cached = self.__dict__.get("_checksum_ok")
        if cached is None:
            cached = self.checksum == self.content_checksum()
            object.__setattr__(self, "_checksum_ok", cached)
        return cached


#: Identifier words per serialized :class:`PortDigest` (port + 4 pointer
#: ports + the busy-with victim id + 2 flags packed into one word).
RECORD_DESCRIPTOR_WORDS = 7

#: Largest number of ports a :class:`DigestRequest` may name; larger pulls
#: are chunked so the request stays ``O(log n)`` bits.
MAX_PORTS_PER_REQUEST = 16


@dataclass
class Digest(Message):
    """One participant's compact repair-state digest (anti-entropy gossip).

    Four shapes share the one message type:

    * *spine digest* (``rt_index`` set): sent to the spine predecessor —
      carries whether the probe ever arrived (``probed``), whether the local
      strip applied, and the piece descriptors this processor vouches for or
      collected from deeper hops.  An unprobed digest makes the predecessor
      resend the probe; piece payloads flow back like late report waves.
    * *anchor digest* (``rt_index`` is ``None``, ``pieces`` set): sent up the
      ``BT_v`` tree — re-offers the anchor's gathered descriptors so pieces
      lost on the way to the leader surface again (the leader re-merges and
      re-disseminates under a higher epoch when they do).
    * *record digest* (``records`` set): the reply to a
      :class:`DigestRequest` — per-port Table 1 summaries the leader diffs
      against its outcome,
    * *acknowledgement* (``ack`` set): the receiver of a digest chunk echoes
      it back, so the sender stops re-offering knowledge that provably
      arrived — later sweeps shrink to exactly what is still unconfirmed,
      and at the fixed point the protocol is silent.

    All payloads are bounded: pieces and records are chunked exactly like
    the repair's own list messages, so every digest stays ``O(log n)`` bits.
    """

    deleted: NodeId = None
    #: Which affected RT's spine this digest describes (None otherwise).
    rt_index: Optional[int] = None
    probed: bool = True
    stripped: bool = True
    #: True when this digest echoes a received chunk back to its sender.
    ack: bool = False
    pieces: Tuple[object, ...] = ()
    records: Tuple[PortDigest, ...] = ()

    def __post_init__(self) -> None:
        super().__post_init__()
        self.payload_words = (
            3
            + ROOT_DESCRIPTOR_WORDS * len(self.pieces)
            + RECORD_DESCRIPTOR_WORDS * len(self.records)
        )

    def _seal_fields(self) -> Tuple[object, ...]:
        return (
            self.deleted,
            self.rt_index,
            self.probed,
            self.stripped,
            self.ack,
            self.pieces,
            self.records,
        )


@dataclass
class DigestRequest(Message):
    """The merge leader pulls record digests for ports it instructed.

    The named ports all come from the leader's *own* knowledge — its merge
    outcome's helper assignments and parent updates — never from another
    processor's context; the owner answers with one :class:`PortDigest` per
    port it actually owns.
    """

    deleted: NodeId = None
    ports: Tuple[Port, ...] = ()

    def __post_init__(self) -> None:
        super().__post_init__()
        self.payload_words = 2 + len(self.ports)
