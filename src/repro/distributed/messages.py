"""Message vocabulary of the distributed repair protocol.

Each message type corresponds to one of the exchanges described in
Section 4.2 and the pseudocode of Appendix A:

* :class:`DeletionNotice` / :class:`InsertionNotice` — the model-level
  notifications of Figure 1 ("all neighbours of ``v_t`` are informed"),
* :class:`AnchorLink` — phase 1 of the repair: the anchors of the affected
  reconstruction-tree fragments link up into the binary tree ``BT_v``,
* :class:`Probe` / :class:`PrimaryRootReport` — ``FindPrRoots``
  (Algorithm A.5): walking the right spine of a fragment to locate primary
  roots and reporting them back to the anchor,
* :class:`PrimaryRootList` — anchors exchanging their primary-root lists
  with their ``BT_v`` parent/children (Algorithm A.7),
* :class:`HelperAssignment` — the merge instruction telling a processor to
  instantiate (or drop) a helper node with given parent/children
  (Algorithms A.8/A.9),
* :class:`Digest` / :class:`DigestRequest` — the anti-entropy recovery
  protocol (PR 5, in the style of self-stabilizing silent protocols): each
  repair participant periodically gossips a compact digest of its *own*
  repair state (probe seen?  pieces vouched for?  assignments applied?)
  along the spine/anchor links, and the merge leader pulls
  :class:`PortDigest` record summaries from the owners it instructed, so
  divergence is detected from messages instead of a global audit.

Message sizes are measured in *words* of ``O(log n)`` bits: a node or port
identifier costs one word, so Lemma 4's "messages of size ``O(log n)``"
corresponds to a constant number of words per message.
:class:`PrimaryRootReport` / :class:`PrimaryRootList` carry a few words per
primary-root descriptor and are chunked at :data:`MAX_ROOTS_PER_MESSAGE`
descriptors, so even they never exceed ``O(log n)`` bits per message.

Byzantine accountability (PR 6) adds cheap integrity tags:

* every structural message carries a lazily-computed **seal** over its
  payload fields (:attr:`Message.seal` / :meth:`Message.seal_valid`),
  simulating an unforgeable MAC over the payload the sender authored.  An
  honest message is valid by construction; the fault layer's post-hoc
  payload corruption leaves a *stale* seal behind, which any receiver can
  detect locally.  A byzantine processor may still *author* a lie (forge a
  fresh, validly-sealed payload) — those are caught by cross-witnessing in
  :mod:`repro.distributed.processor`, not here.
* :class:`PortDigest` (and :class:`~repro.distributed.merge.PieceSummary`)
  embed a content **checksum** so corrupted descriptors are detected even
  when relayed verbatim inside an honestly-sealed envelope.

Both tags cost O(1) words (folded into the existing per-descriptor word
counts) and are computed lazily, so the lossless fast path pays nothing
when nobody verifies.

Zero-allocation fabric (PR 10): every message class is a hand-rolled
``__slots__`` layout — no per-instance ``__dict__``, the lazy seal cache
lives in the dedicated ``_seal`` slot, and ``kind`` / ``sealed`` /
``packable`` stay class attributes so the delivery hot loop pays attribute
loads, not method calls.  Because construction is a plain ``__init__``,
the per-:class:`~repro.distributed.network.Network` message pool can
recycle an instance by re-running its constructor (every slot is reset,
including the seal cache and the oracle tags).  High-volume kinds
additionally declare ``_payload_fields`` so :class:`PackedPayloads` — the
struct-of-arrays carrier that coalesces same-link chunks of one round into
a single in-flight object — can pack and unpack them generically with the
exact per-part word accounting Lemma 4's ledgers need.
"""

from __future__ import annotations

import itertools
import math
import zlib
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..core.ports import NodeId, Port

__all__ = [
    "Message",
    "DeletionNotice",
    "InsertionNotice",
    "AnchorLink",
    "Probe",
    "PrimaryRootReport",
    "PrimaryRootList",
    "ParentUpdate",
    "HelperAssignment",
    "Digest",
    "DigestRequest",
    "PackedPayloads",
    "PortDigest",
    "words_to_bits",
    "payload_checksum",
    "SEALED_KINDS",
]

#: Fallback id source for messages constructed outside any network (unit
#: tests, out-of-band notices).  Messages that travel through a
#: :class:`~repro.distributed.network.Network` are re-stamped from that
#: network's own counter (and again on every pool reuse), so in-network ids
#: are deterministic per run regardless of how many networks the process
#: ran earlier.
_message_counter = itertools.count(1)


def payload_checksum(*parts: object) -> int:
    """Cheap content checksum over payload parts (CRC32 of their repr).

    Ports have stable memoized reprs and descriptor dataclasses exclude
    their own checksum fields from ``repr``, so the digest covers exactly
    the semantic content.  This stands in for a collision-resistant hash:
    the simulation never *searches* for collisions, it only compares a
    frozen tag against recomputed content.
    """
    return zlib.crc32(repr(parts).encode("utf-8"))


#: Message kinds that carry a payload seal and are verified on receipt.
#: (Probes and notices carry no mergeable payload worth lying about.)
SEALED_KINDS = frozenset(
    {
        "PrimaryRootReport",
        "PrimaryRootList",
        "ParentUpdate",
        "HelperAssignment",
        "Digest",
    }
)


def words_to_bits(words: int, n_ever: int) -> int:
    """Convert a payload measured in identifier words into bits for ``n`` nodes."""
    word_bits = max(int(math.ceil(math.log2(max(n_ever, 2)))), 1)
    return words * word_bits


class Message:
    """Base class for protocol messages travelling between processors.

    A hand-rolled ``__slots__`` class (not a dataclass): the message layer
    is the hot allocation site of every repair, so instances carry no
    ``__dict__`` and every per-instance datum sits in a fixed slot.  The
    constructor doubles as the pool-reset hook — re-running ``__init__`` on
    a recycled instance restores every slot (seal cache, oracle tags, pin)
    to the freshly-constructed state.
    """

    __slots__ = (
        "sender",
        "receiver",
        "payload_words",
        "message_id",
        "byz_origin",
        "_seal",
        "pinned",
    )

    #: Short name of the message type (used in traces and metrics).  A plain
    #: class attribute — stamped per subclass below — delivery reads
    #: ``kind`` several times per message (counters, dispatch, seals), so
    #: the hot loop pays one attribute load, not a method call.
    kind = "Message"
    #: True when this message type carries a payload seal that receivers
    #: verify (``kind in SEALED_KINDS``, precomputed per class so the
    #: receive gate is one attribute check for the unsealed majority).
    sealed = False
    #: True for the high-volume kinds :class:`PackedPayloads` may coalesce.
    packable = False
    #: Epoch tag default: repair-protocol messages shadow this with their
    #: ``deleted`` slot, so ``message.deleted`` is a plain attribute read
    #: everywhere (no ``getattr`` default on the delivery path).
    deleted = None
    #: Logical message count — 1 for every plain message; the packed
    #: carrier shadows it with its per-instance part count so in-flight
    #: ledgers keep counting logical messages, not carriers.
    count = 1

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        cls.kind = cls.__name__
        cls.sealed = cls.__name__ in SEALED_KINDS

    def __init__(self, sender: NodeId, receiver: NodeId) -> None:
        self.sender = sender
        self.receiver = receiver
        self.payload_words = 2
        self.message_id = next(_message_counter)
        #: Oracle-side provenance tag: set to the liar's NodeId when the
        #: fault layer (or a byzantine processor's forging hook) corrupted
        #: this message's payload.  Protocol code never reads it — it only
        #: feeds the :class:`~repro.distributed.accountability.InjectionLog`
        #: ground truth that scores detection.
        self.byz_origin: Optional[NodeId] = None
        self._seal: Optional[int] = None
        #: True when some ledger retained this instance beyond delivery
        #: (accusation evidence, cross-witness table) — the pool must never
        #: recycle a pinned message.
        self.pinned = False

    def __repr__(self) -> str:  # debugging/traces only — never on the hot path
        return (
            f"{self.kind}(sender={self.sender!r}, receiver={self.receiver!r}, "
            f"id={self.message_id})"
        )

    def size_bits(self, n_ever: int) -> int:
        """Size of this message in bits when identifiers need ``log2 n`` bits."""
        return words_to_bits(self.payload_words, n_ever)

    # ------------------------------------------------------------------ #
    # payload seal (simulated MAC)
    # ------------------------------------------------------------------ #
    def _seal_fields(self) -> Tuple[object, ...]:
        """Payload fields covered by the seal (subclasses override)."""
        return ()

    @property
    def seal(self) -> int:
        """Lazily-computed payload seal, cached on first access.

        An honest sender never touches the payload after construction, so
        its seal — computed whenever first read — always matches and costs
        nothing until somebody verifies.  The fault layer freezes the seal
        *before* mutating payload fields, modelling an adversary that can
        corrupt a payload but cannot forge the original author's MAC.
        """
        cached = self._seal
        if cached is None:
            cached = payload_checksum(self.kind, self._seal_fields())
            self._seal = cached
        return cached

    def seal_valid(self) -> bool:
        """Recompute the payload seal and compare against the carried one.

        A message whose seal was never read has — by the laziness contract —
        never been mutated after construction (every corruption path freezes
        the seal first), so it verifies for free; the honest fast path pays
        no hashing at all.
        """
        cached = self._seal
        if cached is None:
            return True
        return cached == payload_checksum(self.kind, self._seal_fields())

    def reseal(self) -> None:
        """Recompute the seal over the *current* payload (forging helper).

        Only byzantine senders call this: it models a liar authoring a
        fresh payload under its own valid MAC — undetectable by seal
        checks, caught instead by cross-witness contradiction.
        """
        self._seal = payload_checksum(self.kind, self._seal_fields())


class DeletionNotice(Message):
    """Failure notification: ``deleted`` has vanished (delivered to each neighbour)."""

    __slots__ = ("deleted",)
    packable = True
    _payload_fields = ("deleted",)

    def __init__(self, sender: NodeId, receiver: NodeId, deleted: NodeId = None) -> None:
        self.sender = sender
        self.receiver = receiver
        self.payload_words = 2
        self.message_id = next(_message_counter)
        self.byz_origin = None
        self._seal = None
        self.pinned = False
        self.deleted = deleted

    def reset(self, sender: NodeId, receiver: NodeId, deleted: NodeId = None) -> None:
        # Pooled re-init: ``payload_words`` is a class constant and the id
        # is re-stamped by the network, so neither is touched here.
        self.sender = sender
        self.receiver = receiver
        self.byz_origin = None
        self._seal = None
        self.pinned = False
        self.deleted = deleted


class InsertionNotice(Message):
    """A freshly inserted node announces itself to one of its chosen neighbours."""

    __slots__ = ("inserted",)

    def __init__(self, sender: NodeId, receiver: NodeId, inserted: NodeId = None) -> None:
        self.sender = sender
        self.receiver = receiver
        self.payload_words = 2
        self.message_id = next(_message_counter)
        self.byz_origin = None
        self._seal = None
        self.pinned = False
        self.inserted = inserted


class AnchorLink(Message):
    """Anchors of affected fragments link into the binary tree ``BT_v``."""

    __slots__ = ("deleted", "anchor_port")

    def __init__(
        self,
        sender: NodeId,
        receiver: NodeId,
        deleted: NodeId = None,
        anchor_port: Optional[Port] = None,
    ) -> None:
        self.sender = sender
        self.receiver = receiver
        self.payload_words = 2
        self.message_id = next(_message_counter)
        self.byz_origin = None
        self._seal = None
        self.pinned = False
        self.deleted = deleted
        #: Port identifying the fragment this anchor speaks for.
        self.anchor_port = anchor_port


class Probe(Message):
    """``FindPrRoots`` probe walking down the right spine of a fragment."""

    __slots__ = ("deleted", "target_port", "hops", "rt_index")
    packable = True
    _payload_fields = ("deleted", "target_port", "hops", "rt_index")

    def __init__(
        self,
        sender: NodeId,
        receiver: NodeId,
        deleted: NodeId = None,
        target_port: Optional[Port] = None,
        hops: int = 0,
        rt_index: int = 0,
    ) -> None:
        self.sender = sender
        self.receiver = receiver
        self.payload_words = 2
        self.message_id = next(_message_counter)
        self.byz_origin = None
        self._seal = None
        self.pinned = False
        self.deleted = deleted
        #: Port of the virtual node currently being probed.
        self.target_port = target_port
        #: Hop count so far (for tracing; the paper's probes carry child counts).
        self.hops = hops
        #: Which affected RT's spine this probe walks (plan-relative index).
        self.rt_index = rt_index

    def reset(
        self,
        sender: NodeId,
        receiver: NodeId,
        deleted: NodeId = None,
        target_port: Optional[Port] = None,
        hops: int = 0,
        rt_index: int = 0,
    ) -> None:
        self.sender = sender
        self.receiver = receiver
        self.byz_origin = None
        self._seal = None
        self.pinned = False
        self.deleted = deleted
        self.target_port = target_port
        self.hops = hops
        self.rt_index = rt_index


#: Identifier words per serialized primary-root descriptor (root port,
#: representative port, leaf count, height) — see
#: :class:`repro.distributed.merge.PieceSummary`.
ROOT_DESCRIPTOR_WORDS = 4

#: Largest number of descriptors one list message may carry; bigger payloads
#: are chunked into several messages so every message stays ``O(log n)`` bits
#: (Lemma 4's message-size bound).
MAX_ROOTS_PER_MESSAGE = 12


class PrimaryRootReport(Message):
    """Primary-root descriptors flowing back up a probe path to the anchor.

    The payload is the actual piece knowledge of the reporting processor
    (``PieceSummary`` descriptors), pipelined hop-by-hop along the spine —
    the merge leader ends up knowing exactly the pieces whose descriptors
    survived the trip.
    """

    __slots__ = ("deleted", "roots", "rt_index")

    def __init__(
        self,
        sender: NodeId,
        receiver: NodeId,
        deleted: NodeId = None,
        roots: Tuple[object, ...] = (),
        rt_index: int = 0,
    ) -> None:
        self.sender = sender
        self.receiver = receiver
        self.payload_words = 2 + ROOT_DESCRIPTOR_WORDS * len(roots)
        self.message_id = next(_message_counter)
        self.byz_origin = None
        self._seal = None
        self.pinned = False
        self.deleted = deleted
        self.roots = roots
        #: Which affected RT's spine this report travels on (plan-relative index).
        self.rt_index = rt_index

    def _seal_fields(self) -> Tuple[object, ...]:
        return (self.deleted, self.roots, self.rt_index)


class PrimaryRootList(Message):
    """An anchor ships its primary-root descriptors to its ``BT_v`` parent."""

    __slots__ = ("deleted", "roots")

    def __init__(
        self,
        sender: NodeId,
        receiver: NodeId,
        deleted: NodeId = None,
        roots: Tuple[object, ...] = (),
    ) -> None:
        self.sender = sender
        self.receiver = receiver
        # A few descriptor words per primary root plus a header.
        self.payload_words = 2 + ROOT_DESCRIPTOR_WORDS * len(roots)
        self.message_id = next(_message_counter)
        self.byz_origin = None
        self._seal = None
        self.pinned = False
        self.deleted = deleted
        self.roots = roots

    def _seal_fields(self) -> Tuple[object, ...]:
        return (self.deleted, self.roots)


class ParentUpdate(Message):
    """Tell a processor the new RT parent of one of its real or helper nodes."""

    __slots__ = ("deleted", "child_port", "parent_port", "child_is_helper", "epoch")

    def __init__(
        self,
        sender: NodeId,
        receiver: NodeId,
        deleted: NodeId = None,
        child_port: Optional[Port] = None,
        parent_port: Optional[Port] = None,
        child_is_helper: bool = False,
        epoch: int = 0,
    ) -> None:
        self.sender = sender
        self.receiver = receiver
        # deleted + child port + parent port + flag + epoch, one word each.
        self.payload_words = 5
        self.message_id = next(_message_counter)
        self.byz_origin = None
        self._seal = None
        self.pinned = False
        self.deleted = deleted
        #: Port of the node (leaf or helper) whose parent changed.
        self.child_port = child_port
        #: Port of the new parent helper node.
        self.parent_port = parent_port
        #: True when the update concerns the processor's helper node rather
        #: than its leaf.
        self.child_is_helper = child_is_helper
        #: Merge-outcome epoch (see :class:`HelperAssignment`).
        self.epoch = epoch

    def _seal_fields(self) -> Tuple[object, ...]:
        return (
            self.deleted,
            self.child_port,
            self.parent_port,
            self.child_is_helper,
            self.epoch,
        )


class HelperAssignment(Message):
    """Instruct a processor to instantiate / rewire the helper node of one of its ports.

    ``helper_port`` identifies the helper (the processor owning that port
    simulates it); parent and children are given as ports of the virtual
    nodes they refer to, or ``None``.  ``epoch`` counts the merge leader's
    outcome recomputations within one repair: when lost summaries surface
    late, the leader re-merges and re-disseminates with a higher epoch, and
    processors ignore instructions from epochs older than the newest they
    have seen for the same repair (so a delayed stale ``create`` cannot
    overwrite a corrective update).
    """

    __slots__ = (
        "deleted",
        "helper_port",
        "parent_port",
        "left_port",
        "right_port",
        "create",
        "representative_port",
        "height",
        "num_leaves",
        "epoch",
    )

    def __init__(
        self,
        sender: NodeId,
        receiver: NodeId,
        deleted: NodeId = None,
        helper_port: Optional[Port] = None,
        parent_port: Optional[Port] = None,
        left_port: Optional[Port] = None,
        right_port: Optional[Port] = None,
        create: bool = True,
        representative_port: Optional[Port] = None,
        height: int = 0,
        num_leaves: int = 0,
        epoch: int = 0,
    ) -> None:
        self.sender = sender
        self.receiver = receiver
        # deleted + 5 ports + height + leaf count + epoch + create flag,
        # one O(log n)-bit word each.
        self.payload_words = 10
        self.message_id = next(_message_counter)
        self.byz_origin = None
        self._seal = None
        self.pinned = False
        self.deleted = deleted
        self.helper_port = helper_port
        self.parent_port = parent_port
        self.left_port = left_port
        self.right_port = right_port
        #: False when the helper should be dropped ("marked red") instead
        #: of created.
        self.create = create
        #: Representative leaf port of the helper's subtree (Table 1 state).
        self.representative_port = representative_port
        #: Cached subtree height / leaf count (Table 1 state).
        self.height = height
        self.num_leaves = num_leaves
        self.epoch = epoch

    def _seal_fields(self) -> Tuple[object, ...]:
        return (
            self.deleted,
            self.helper_port,
            self.parent_port,
            self.left_port,
            self.right_port,
            self.create,
            self.representative_port,
            self.height,
            self.num_leaves,
            self.epoch,
        )


# --------------------------------------------------------------------------- #
# anti-entropy recovery (gossip digests)
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class PortDigest:
    """Compact Table 1 record summary for one port, as its owner knows it.

    The payload of a :class:`Digest` answering a :class:`DigestRequest`:
    the owner reads *only its own* edge record (and the link sources it
    itself created) and summarizes whether the requested port currently
    simulates a helper for the repair in question, with which pointers.
    The merge leader compares these against its own outcome and retransmits
    exactly the instructions the digest shows missing or superseded.
    """

    port: Port
    #: True when the owner simulates a helper *for this repair* on the port.
    helper_for_victim: bool = False
    helper_left: Optional[Port] = None
    helper_right: Optional[Port] = None
    helper_parent: Optional[Port] = None
    #: The real node's RT parent (the leaf-side pointer ParentUpdate sets).
    rt_parent: Optional[Port] = None
    #: True when the helper's child link sources exist in the owner's view.
    links_ok: bool = True
    #: The *other* repair's victim when the port already simulates a helper
    #: for a different deletion — the owner refuses assignments for a busy
    #: port, so the leader must learn the refusal is permanent.
    busy_with: Optional[NodeId] = None
    #: Content checksum set by ``__post_init__`` (``compare=False`` keeps
    #: equality/hash on the semantic fields, ``repr=False`` keeps it out of
    #: message seals).  The fault layer corrupts a digest by mutating fields
    #: and *keeping* the honest checksum — forging a matching one would mean
    #: breaking the (simulated) collision resistance.
    checksum: int = field(default=0, compare=False, repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "checksum", self.content_checksum())

    def content_checksum(self) -> int:
        return payload_checksum(
            "PortDigest",
            self.port,
            self.helper_for_victim,
            self.helper_left,
            self.helper_right,
            self.helper_parent,
            self.rt_parent,
            self.links_ok,
            self.busy_with,
        )

    def checksum_valid(self) -> bool:
        # Validity is immutable (frozen dataclass), so cache the verdict:
        # an honest descriptor relayed across many hops hashes once.
        cached = self.__dict__.get("_checksum_ok")
        if cached is None:
            cached = self.checksum == self.content_checksum()
            object.__setattr__(self, "_checksum_ok", cached)
        return cached


#: Identifier words per serialized :class:`PortDigest` (port + 4 pointer
#: ports + the busy-with victim id + 2 flags packed into one word).
RECORD_DESCRIPTOR_WORDS = 7

#: Largest number of ports a :class:`DigestRequest` may name; larger pulls
#: are chunked so the request stays ``O(log n)`` bits.
MAX_PORTS_PER_REQUEST = 16


class Digest(Message):
    """One participant's compact repair-state digest (anti-entropy gossip).

    Four shapes share the one message type:

    * *spine digest* (``rt_index`` set): sent to the spine predecessor —
      carries whether the probe ever arrived (``probed``), whether the local
      strip applied, and the piece descriptors this processor vouches for or
      collected from deeper hops.  An unprobed digest makes the predecessor
      resend the probe; piece payloads flow back like late report waves.
    * *anchor digest* (``rt_index`` is ``None``, ``pieces`` set): sent up the
      ``BT_v`` tree — re-offers the anchor's gathered descriptors so pieces
      lost on the way to the leader surface again (the leader re-merges and
      re-disseminates under a higher epoch when they do).
    * *record digest* (``records`` set): the reply to a
      :class:`DigestRequest` — per-port Table 1 summaries the leader diffs
      against its outcome,
    * *acknowledgement* (``ack`` set): the receiver of a digest chunk echoes
      it back, so the sender stops re-offering knowledge that provably
      arrived — later sweeps shrink to exactly what is still unconfirmed,
      and at the fixed point the protocol is silent.

    All payloads are bounded: pieces and records are chunked exactly like
    the repair's own list messages, so every digest stays ``O(log n)`` bits.
    """

    __slots__ = ("deleted", "rt_index", "probed", "stripped", "ack", "pieces", "records")
    packable = True
    _payload_fields = ("deleted", "rt_index", "probed", "stripped", "ack", "pieces", "records")

    def __init__(
        self,
        sender: NodeId,
        receiver: NodeId,
        deleted: NodeId = None,
        rt_index: Optional[int] = None,
        probed: bool = True,
        stripped: bool = True,
        ack: bool = False,
        pieces: Tuple[object, ...] = (),
        records: Tuple[PortDigest, ...] = (),
    ) -> None:
        self.sender = sender
        self.receiver = receiver
        self.payload_words = (
            3 + ROOT_DESCRIPTOR_WORDS * len(pieces) + RECORD_DESCRIPTOR_WORDS * len(records)
        )
        self.message_id = next(_message_counter)
        self.byz_origin = None
        self._seal = None
        self.pinned = False
        self.deleted = deleted
        #: Which affected RT's spine this digest describes (None otherwise).
        self.rt_index = rt_index
        self.probed = probed
        self.stripped = stripped
        #: True when this digest echoes a received chunk back to its sender.
        self.ack = ack
        self.pieces = pieces
        self.records = records

    def _seal_fields(self) -> Tuple[object, ...]:
        return (
            self.deleted,
            self.rt_index,
            self.probed,
            self.stripped,
            self.ack,
            self.pieces,
            self.records,
        )


class DigestRequest(Message):
    """The merge leader pulls record digests for ports it instructed.

    The named ports all come from the leader's *own* knowledge — its merge
    outcome's helper assignments and parent updates — never from another
    processor's context; the owner answers with one :class:`PortDigest` per
    port it actually owns.
    """

    __slots__ = ("deleted", "ports")
    packable = True
    _payload_fields = ("deleted", "ports")

    def __init__(
        self,
        sender: NodeId,
        receiver: NodeId,
        deleted: NodeId = None,
        ports: Tuple[Port, ...] = (),
    ) -> None:
        self.sender = sender
        self.receiver = receiver
        self.payload_words = 2 + len(ports)
        self.message_id = next(_message_counter)
        self.byz_origin = None
        self._seal = None
        self.pinned = False
        self.deleted = deleted
        self.ports = ports


# --------------------------------------------------------------------------- #
# packed payload batching (PR 10)
# --------------------------------------------------------------------------- #
class PackedPayloads(Message):
    """Struct-of-arrays carrier coalescing same-link chunks of one round.

    When several messages of one *packable* kind travel between the same
    ``(sender, receiver)`` pair — consecutive digest/ack chunks, probe
    forwards, fanned-out deletion notices — the network folds them into one
    carrier: the payload fields live in parallel columns (one list per
    field), and the per-part word counts, lazy seal caches and oracle
    provenance tags ride in their own columns.  ``payload_words`` is the
    exact sum of the parts' words and ``count`` the number of logical
    messages, so Lemma 4 ledgers, per-epoch window attribution and
    in-flight accounting are bit-identical to the unbatched twin.  The
    carrier has two lanes: on a pooled network it stashes (:meth:`stash`) the
    sent instances themselves (retention is free — delivery feeds them
    straight to the handlers and they return to the pool through trace
    eviction); on an unpooled network it absorbs (:meth:`absorb`) payloads into
    the columns and delivery rebuilds each part via :meth:`unpack_part`.
    Either way seals and byzantine verification see exactly the messages
    the sender authored.

    Folding only ever merges *adjacent* outbox entries, so delivery order
    is preserved by construction; the network refuses to pack at all when
    the fault schedule can drop/delay/reorder (each logical message must
    then consume the fault RNG individually to stay replay-identical).
    """

    __slots__ = (
        "part_cls",
        "deleted",
        "count",
        "parts",
        "columns",
        "part_words",
        "part_seals",
        "part_byz",
        "part_ids",
        "tally_entry",
    )

    def __init__(self, sender: NodeId = None, receiver: NodeId = None) -> None:
        self.sender = sender
        self.receiver = receiver
        self.payload_words = 0
        self.message_id = next(_message_counter)
        self.byz_origin = None
        self._seal = None
        self.pinned = False
        self.deleted = None
        self.count = 0
        self.part_cls = None
        #: The live ``[count, words_sum, words_max]`` tally cell this
        #: carrier's stream bills into — cached here so folding a part is
        #: three list ops, no tuple key or dict probe.  A tally flush
        #: detaches the cell (the network walks its outbox and clears
        #: these), after which the next fold re-resolves it.
        self.tally_entry = None
        # Recycled carriers keep their lists (cleared here / in
        # ``open_columns``) so steady-state packing allocates no fresh
        # lists per round; the column bookkeeping is only touched when the
        # absorb lane actually engages.
        try:
            self.parts.clear()
        except AttributeError:
            self.parts: List[Message] = []
            self.columns: Tuple[List, ...] = ()
            self.part_words: List[int] = []
            self.part_seals: List[Optional[int]] = []
            self.part_byz: List[Optional[NodeId]] = []
            self.part_ids: List[int] = []

    def begin(self, part_cls: type) -> None:
        """Declare the part class (both lanes fold on ``part_cls`` identity)."""
        self.part_cls = part_cls

    def open_columns(self) -> None:
        """Point the columns at ``part_cls``'s payload layout (absorb lane)."""
        names = self.part_cls._payload_fields
        columns = self.columns
        if len(columns) != len(names):
            self.columns = tuple([] for _ in names)
        else:
            for column in columns:
                column.clear()
        self.part_words.clear()
        self.part_seals.clear()
        self.part_byz.clear()
        self.part_ids.clear()

    def stash(self, message: Message) -> None:
        """Append one part *by instance* — the pooled network's fast lane.

        When the network pools messages, retaining the sent instance is
        free (it returns to the pool through the receiver's trace eviction
        like every delivered message), so the carrier rides the instances
        themselves and delivery dispatches them with zero per-field
        copying.  ``payload_words`` stays the exact sum either way — the
        Lemma 4 ledgers cannot tell the lanes apart.
        """
        self.parts.append(message)
        self.payload_words += message.payload_words
        self.count += 1
        self.deleted = message.deleted

    def absorb(self, message: Message) -> None:
        """Append one part's payload (and its bookkeeping) to the columns."""
        for column, name in zip(self.columns, self.part_cls._payload_fields):
            column.append(getattr(message, name))
        words = message.payload_words
        self.part_words.append(words)
        self.part_seals.append(message._seal)
        self.part_byz.append(message.byz_origin)
        self.part_ids.append(message.message_id)
        self.payload_words += words
        self.count += 1
        self.deleted = message.deleted

    def unpack_part(self, index: int, instance: Message) -> Message:
        """Refill ``instance`` with part ``index``, initialising *every* slot.

        ``instance`` may be a bare ``cls.__new__(cls)`` shell or a pooled
        veteran — either way all base slots and all payload slots are
        written (packable classes declare every payload slot in
        ``_payload_fields``), so delivery never pays an ``__init__``.
        """
        for column, name in zip(self.columns, self.part_cls._payload_fields):
            setattr(instance, name, column[index])
        instance.sender = self.sender
        instance.receiver = self.receiver
        instance.pinned = False
        instance.payload_words = self.part_words[index]
        instance._seal = self.part_seals[index]
        instance.byz_origin = self.part_byz[index]
        instance.message_id = self.part_ids[index]
        return instance


def _install_resets() -> None:
    """Give every message class a ``reset`` for pooled re-initialisation.

    Classes that don't define a dedicated one (hot packable kinds skip the
    fallback-id draw and constant fields) fall back to ``__init__`` — the
    two are behaviourally identical because the network re-stamps
    ``message_id`` on every send anyway.
    """
    stack = [Message]
    while stack:
        cls = stack.pop()
        stack.extend(cls.__subclasses__())
        if "reset" not in cls.__dict__:
            cls.reset = cls.__init__


_install_resets()
