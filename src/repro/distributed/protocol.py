"""The distributed repair protocol: phases, message flows and round counting.

This module turns one adversarial deletion into the message exchanges of the
paper's repair (Section 4.2, Algorithms A.3–A.9), executed on the
round-based :class:`repro.distributed.network.Network`:

Phase 0 — *notification*: every healed-graph neighbour of the victim learns
of the deletion (Figure 1's model step).

Phase 1 — *BT_v formation* (Algorithm A.3): the anchors of the affected
reconstruction-tree fragments and of the victim's directly-connected
neighbours link up into a balanced binary tree ``BT_v``.

Phase 2 — *probing* (``FindPrRoots``, Algorithm A.5): within every affected
RT, probe messages walk the right spine from the anchor towards the
rightmost leaf, identifying primary roots; each discovered primary root
reports back along the same path.

Phase 3 — *bottom-up merge* (Algorithms A.4/A.7/A.8/A.9): anchors exchange
primary-root lists level by level up ``BT_v``; representatives instantiate
the new helper nodes and parents/children are informed of their new pointers.

Faithfulness note (also recorded in DESIGN.md): the *structural outcome* of
the merge (which helper nodes exist, who simulates them, the shape of the
new RT) is computed by the verified reference engine
(:class:`repro.core.ForgivingGraph`), so the distributed state is guaranteed
to converge to the same haft the centralized algorithm produces; what this
module adds is the faithful *communication pattern* — every message travels
hop-by-hop between processors that are actually linked, message sizes follow
Table 1's identifier-word accounting, and rounds advance exactly when the
paper's phases would advance — which is what Lemma 4 bounds and experiment
E5 measures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.forgiving_graph import ForgivingGraph, RepairReport
from ..core.ports import NodeId, NodeKey, Port
from ..core.reconstruction_tree import ReconstructionTree, RTHelper, RTLeaf, RTNode, representative_of
from .messages import (
    AnchorLink,
    DeletionNotice,
    HelperAssignment,
    ParentUpdate,
    PrimaryRootList,
    PrimaryRootReport,
    Probe,
)
from .network import Network

__all__ = ["RepairPlan", "plan_repair", "execute_repair"]


@dataclass
class RepairPlan:
    """Everything the protocol needs to replay one deletion as messages.

    Built *before* the engine applies the deletion (so the pre-deletion RT
    structure is still available) and completed afterwards with the merge
    outcome.
    """

    victim: NodeId
    #: Healed-graph neighbours of the victim at deletion time.
    neighbors: List[NodeId] = field(default_factory=list)
    #: For every affected RT: the list of processors along the probe path
    #: (right spine) — consecutive entries are virtually adjacent.
    probe_paths: List[List[NodeId]] = field(default_factory=list)
    #: The anchors (one processor per merged piece) that will form ``BT_v``.
    anchors: List[NodeId] = field(default_factory=list)
    #: Primary-root counts per affected RT (payload sizes of the list messages).
    primary_root_counts: List[int] = field(default_factory=list)


def plan_repair(engine: ForgivingGraph, victim: NodeId) -> RepairPlan:
    """Inspect the engine *before* the deletion and lay out the message paths.

    Reads only zero-copy views and O(deg)/O(spine) structures: the plan's
    cost is proportional to the victim's neighbourhood and the affected RTs'
    spines, never to the size of the network.  Orderings use the canonical
    :class:`repro.core.ports.NodeKey` total order, so planned trajectories
    are stable under order-preserving id relabelings.
    """
    actual = engine.actual_view()
    neighbors = (
        sorted(actual.neighbors(victim), key=NodeKey) if victim in actual else []
    )
    plan = RepairPlan(victim=victim, neighbors=list(neighbors))

    affected = engine.affected_reconstruction_trees(victim)
    anchors: List[NodeId] = []
    for rt in affected:
        path = _right_spine_processors(rt)
        plan.probe_paths.append(path)
        plan.primary_root_counts.append(_primary_root_count(rt))
        if path:
            anchors.append(path[0])
    # Directly-connected neighbours contribute trivial single-leaf pieces and
    # anchor themselves.
    g_prime = engine.g_prime_graph_view()
    for neighbor in g_prime.neighbors(victim):
        if engine.is_alive(neighbor) and neighbor not in anchors:
            anchors.append(neighbor)
    plan.anchors = sorted(set(anchors), key=NodeKey)
    return plan


def _right_spine_processors(rt: ReconstructionTree) -> List[NodeId]:
    """Processors along the root-to-rightmost-leaf path of an RT (the probe path)."""
    path: List[NodeId] = []
    node: Optional[RTNode] = rt.root
    while node is not None:
        path.append(node.processor)
        node = node.right if isinstance(node, RTHelper) else None
    return path


def _primary_root_count(rt: ReconstructionTree) -> int:
    """Number of primary roots of an RT = number of 1-bits of its leaf count."""
    return bin(max(rt.size, 1)).count("1")


def execute_repair(
    network: Network,
    engine: ForgivingGraph,
    plan: RepairPlan,
    report: RepairReport,
) -> int:
    """Replay the repair of ``plan.victim`` as messages on ``network``.

    Must be called *after* ``engine.delete(victim)`` (so the merge outcome —
    ``engine.last_repair_rt`` / ``engine.last_new_helpers`` — is available)
    and after the network's links have been synchronised with the healed
    graph.  Returns the number of communication rounds the repair used.
    """
    victim = plan.victim
    rounds = 0
    # Links created for the repair itself (BT_v edges, probe hops, helper
    # wiring): recorded so the repair can drop its own scaffolding at the
    # end.  The seed path left this to the next deletion's full link diff;
    # the incremental path has no full diff, so cleanup is the repair's job.
    scaffolding: List[Tuple[NodeId, NodeId]] = []

    # ------------------------------------------------------------------ #
    # Phase 0 — notification (1 round): the victim's neighbours detect the
    # failure locally (the model of Figure 1 informs them for free); no
    # protocol messages are charged, but the detection takes one round.
    # ------------------------------------------------------------------ #
    for neighbor in plan.neighbors:
        if network.has_processor(neighbor):
            network.processors[neighbor].receive(
                DeletionNotice(sender=neighbor, receiver=neighbor, deleted=victim)
            )
    rounds += 1

    # ------------------------------------------------------------------ #
    # Phase 1 — BT_v formation (Algorithm A.3): anchors link pairwise into a
    # balanced binary tree; one AnchorLink message per non-root anchor.
    # ------------------------------------------------------------------ #
    anchors = [a for a in plan.anchors if network.has_processor(a)]
    bt_edges = _balanced_tree_edges(anchors)
    for parent, child in bt_edges:
        _connect_scaffolding(network, parent, child, scaffolding)  # temporary BT_v edge
        network.send(
            AnchorLink(sender=child, receiver=parent, deleted=victim, anchor_port=None)
        )
    rounds += _flush(network)

    # ------------------------------------------------------------------ #
    # Phase 2 — probing (Algorithm A.5): walk each affected RT's right spine.
    # Probes advance one hop per round (they are sequential within an RT but
    # parallel across RTs), and every primary root answers back along the
    # same path.
    # ------------------------------------------------------------------ #
    live_paths = [
        [p for p in path if network.has_processor(p)] for path in plan.probe_paths
    ]
    max_spine = max((len(path) for path in live_paths), default=0)
    for hop in range(1, max_spine):
        for path in live_paths:
            if hop < len(path) and path[hop - 1] != path[hop]:
                _send_linked(
                    network,
                    Probe(
                        sender=path[hop - 1],
                        receiver=path[hop],
                        deleted=victim,
                        target_port=None,
                        hops=hop,
                    ),
                    scaffolding,
                )
        rounds += _flush(network)
    # Reports travel back up the spine, one message per hop, pipelined (a
    # single extra round per spine level).
    for path, root_count in zip(live_paths, plan.primary_root_counts):
        for hop in range(len(path) - 1, 0, -1):
            if path[hop] != path[hop - 1]:
                _send_linked(
                    network,
                    PrimaryRootReport(
                        sender=path[hop],
                        receiver=path[hop - 1],
                        deleted=victim,
                        root_port=None,
                        subtree_leaves=root_count,
                    ),
                    scaffolding,
                )
    rounds += _flush(network)

    # ------------------------------------------------------------------ #
    # Phase 3 — bottom-up merge over BT_v (Algorithms A.4/A.7): at every
    # level of BT_v, child anchors ship their primary-root lists to their
    # parent and receive the sibling's list back (4 list messages per merge,
    # as counted in Lemma 4).
    # ------------------------------------------------------------------ #
    total_roots = max(sum(plan.primary_root_counts) + len(plan.neighbors), 1)
    root_payload = tuple(Port(victim, victim) for _ in range(min(total_roots, 64)))
    levels = max(int(math.ceil(math.log2(len(anchors)))), 1) if len(anchors) > 1 else 0
    for _level in range(levels):
        for parent, child in bt_edges:
            _send_linked(
                network,
                PrimaryRootList(sender=child, receiver=parent, deleted=victim, roots=root_payload),
                scaffolding,
            )
        rounds += _flush(network)
        for parent, child in bt_edges:
            _send_linked(
                network,
                PrimaryRootList(sender=parent, receiver=child, deleted=victim, roots=root_payload),
                scaffolding,
            )
        rounds += _flush(network)

    # ------------------------------------------------------------------ #
    # Phase 4 — helper bookkeeping (Algorithms A.8/A.9).
    #
    # (a) Helpers "marked red" during the strip drop themselves: the owning
    #     processor learnt this from the probe passing through it, so it is a
    #     local action with no message cost.
    # (b) For every helper node the merge created, the representative that
    #     triggered the merge instructs the simulating processor, and the
    #     helper's parent / children are told about their new pointers.
    # ------------------------------------------------------------------ #
    for port in engine.last_released_helper_ports:
        processor = network.processors.get(port.processor)
        if processor is not None and port.neighbor in processor.edges:
            processor.edges[port.neighbor].clear_helper()

    for helper in engine.last_new_helpers:
        owner = helper.simulated_by.processor
        if not network.has_processor(owner):
            continue
        initiator = _adjacent_processor(helper) or owner
        if not network.has_processor(initiator):
            initiator = owner
        message = HelperAssignment(
            sender=initiator,
            receiver=owner,
            deleted=victim,
            helper_port=helper.simulated_by,
            parent_port=_node_port(helper.parent),
            left_port=_node_port(helper.left),
            right_port=_node_port(helper.right),
            create=True,
        )
        _send_or_local(network, message, scaffolding)
        # children learn their new parent
        for child in (helper.left, helper.right):
            if child is None:
                continue
            child_owner = child.processor
            if not network.has_processor(child_owner):
                continue
            _send_or_local(
                network,
                ParentUpdate(
                    sender=owner if network.has_processor(owner) else child_owner,
                    receiver=child_owner,
                    deleted=victim,
                    child_port=_node_port(child),
                    parent_port=helper.simulated_by,
                    child_is_helper=isinstance(child, RTHelper),
                ),
                scaffolding,
            )
    rounds += _flush(network)

    # Every link this repair created for its own traffic (BT_v edges, probe
    # hops, helper wiring) is dropped again unless the healed graph
    # independently needs it (Algorithm A.3, "delete the edges Ev") — an O(1)
    # membership probe per created link, no graph copy.
    for u, v in scaffolding:
        if not engine.has_actual_edge(u, v):
            network.disconnect(u, v)
    return rounds


# --------------------------------------------------------------------------- #
# small helpers
# --------------------------------------------------------------------------- #
def _flush(network: Network) -> int:
    """Deliver all in-flight messages (one synchronous round); returns rounds used."""
    if network.pending_messages == 0:
        return 0
    network.deliver_round()
    return 1


def _connect_scaffolding(
    network: Network, u: NodeId, v: NodeId, scaffolding: List[Tuple[NodeId, NodeId]]
) -> None:
    """Create a repair-local link and record it for the end-of-repair cleanup."""
    if not network.are_linked(u, v):
        network.connect(u, v)
        scaffolding.append((u, v))


def _send_linked(
    network: Network, message, scaffolding: List[Tuple[NodeId, NodeId]]
) -> None:
    """Send a message, creating the link first if the repair has not made it yet."""
    if message.sender == message.receiver:
        return
    _connect_scaffolding(network, message.sender, message.receiver, scaffolding)
    network.send(message)


def _send_or_local(
    network: Network, message, scaffolding: List[Tuple[NodeId, NodeId]]
) -> None:
    """Send a message, or apply it locally (free of charge) when it stays on one processor."""
    if message.sender == message.receiver:
        processor = network.processors.get(message.receiver)
        if processor is not None:
            processor.receive(message)
        return
    _send_linked(network, message, scaffolding)


def _balanced_tree_edges(anchors: Sequence[NodeId]) -> List[Tuple[NodeId, NodeId]]:
    """(parent, child) edges of a balanced binary tree over the anchors."""
    edges: List[Tuple[NodeId, NodeId]] = []
    for index in range(1, len(anchors)):
        parent = anchors[(index - 1) // 2]
        child = anchors[index]
        if parent != child:
            edges.append((parent, child))
    return edges


def _adjacent_processor(helper: RTHelper) -> Optional[NodeId]:
    """A processor adjacent to ``helper`` in the new RT (used as message initiator)."""
    for node in (helper.left, helper.right, helper.parent):
        if node is not None and node.processor != helper.simulated_by.processor:
            return node.processor
    return None


def _node_port(node: Optional[RTNode]) -> Optional[Port]:
    if node is None:
        return None
    if isinstance(node, RTLeaf):
        return node.port
    return node.simulated_by
