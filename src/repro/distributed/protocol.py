"""The distributed repair protocol: planning, phases and round counting.

This module turns one adversarial deletion into the message exchanges of the
paper's repair (Section 4.2, Algorithms A.3–A.9), executed on the
round-based :class:`repro.distributed.network.Network`:

Phase 0 — *notification*: every healed-graph neighbour of the victim learns
of the deletion (Figure 1's model step; delivered out of band, fault-exempt).

Phase 1 — *BT_v formation* (Algorithm A.3): the anchors of the affected
reconstruction-tree fragments and of the victim's directly-connected
neighbours link up into a balanced binary tree ``BT_v``.

Phase 2 — *probing* (``FindPrRoots``, Algorithm A.5): within every affected
RT, probe messages walk the right spine from the anchor towards the
rightmost leaf; each visited processor strips its broken fragments locally
("marks red") and primary-root *descriptors* — actual
:class:`~repro.distributed.merge.PieceSummary` payloads — are pipelined back
along the same path.

Phase 3 — *bottom-up merge* (Algorithms A.4/A.7/A.8/A.9): anchors batch the
descriptors that reached them up ``BT_v``; the *leader* anchor (the ``BT_v``
root) runs ``ComputeHaft`` on what it received
(:func:`repro.distributed.merge.merge_summaries`) and disseminates helper
assignments and parent updates to the simulating processors, which apply
them to their Table 1 records and to the network's sourced link set.

The merge is **message-native**: the structural outcome — which helper nodes
exist, who simulates them, the shape of the merged RT — is computed by the
leader from descriptors that physically travelled the network, so dropped or
delayed messages make processors *disagree*; the reconvergence loop in
:mod:`repro.distributed.simulator` detects and repairs the divergence.  The
centralized engine is consulted only *before* the deletion, to lay out each
participant's pre-failure local knowledge (:func:`plan_repair`) — the same
role it plays for the adversary — and afterwards only by the equivalence
tests, as an oracle.

Round accounting is deadline-driven: the protocol is synchronous, so every
participant knows when to act from timing bounds alone (an anchor ships its
list once the probe round-trip must have completed, the leader merges once
every anchor must have shipped).  :func:`execute_repair` advances the
network round by round until all deadlines passed and no messages remain in
flight; the number of rounds it took is the repair's recovery time, checked
against Lemma 4's ``O(log d log n)`` budget.

Under a fault schedule a repair can end with processors disagreeing; the
follow-up is *anti-entropy* (:mod:`repro.distributed.recovery`, PR 5): the
same per-participant contexts installed here double as the local state the
gossip-digest recovery derives its digests from, so no new knowledge is
handed out for recovery — each processor recovers from exactly what this
plan gave it plus the messages that reached it, with the cost ledgered
separately in a :class:`~repro.distributed.metrics.RecoveryCostReport`.

Under a *byzantine* schedule (PR 6) the payloads themselves can lie;
receivers verify sealed kinds and descriptor checksums at ``receive()``
time and cross-witness every descriptor against the first version they saw
(:meth:`Processor.install_repair` seeds the witness table from the plan's
per-participant knowledge).  A processor quarantined mid-protocol simply
looks crashed: every send below already guards on
``network.has_processor``, so the phases proceed around it and the
anti-entropy recovery converges on the survivors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.forgiving_graph import ForgivingGraph
from ..core.ports import NodeId, NodeKey, Port
from ..core.reconstruction_tree import ReconstructionTree, RTHelper, RTNode
from .merge import PieceSummary, plan_strip, trivial_summary
from .messages import AnchorLink, DeletionNotice, Probe
from .network import Network
from .processor import RepairContext, SpineRole

__all__ = ["RepairPlan", "plan_repair", "seed_repair", "execute_repair"]


@dataclass
class RepairPlan:
    """Everything the protocol needs to run one deletion's repair as messages.

    Built *before* the engine applies the deletion, from pre-deletion state
    only — it is the formalization of what each participant knows locally at
    failure time (its spine position, its own fragments, its anchor role),
    not a precomputed outcome.  The merge result is decided later, by the
    leader, from the descriptors that actually arrive.
    """

    victim: NodeId
    #: Healed-graph neighbours of the victim at deletion time.
    neighbors: List[NodeId] = field(default_factory=list)
    #: For every affected RT: the processors along the probe path (right
    #: spine, deduplicated) — consecutive entries are virtually adjacent.
    probe_paths: List[List[NodeId]] = field(default_factory=list)
    #: The anchors (one processor per merged piece) that will form ``BT_v``.
    anchors: List[NodeId] = field(default_factory=list)
    #: ``(parent, child)`` edges of the balanced anchor tree ``BT_v``.
    bt_edges: List[Tuple[NodeId, NodeId]] = field(default_factory=list)
    #: The ``BT_v`` root: the anchor that computes and disseminates the merge.
    leader: Optional[NodeId] = None
    #: Primary-root counts per affected RT (payload sizes of the list messages).
    primary_root_counts: List[int] = field(default_factory=list)
    #: Every surviving piece of the repair (RT pieces + trivial leaves) —
    #: the union of all participants' local knowledge.  The protocol never
    #: hands this set to anyone; it is the reconvergence audit's yardstick.
    all_summaries: List[PieceSummary] = field(default_factory=list)
    #: Per-participant local knowledge, ready to install.
    contexts: Dict[NodeId, RepairContext] = field(default_factory=dict)
    #: Last round at which any participant still has a timer pending.
    max_deadline: int = 1


def plan_repair(engine: ForgivingGraph, victim: NodeId) -> RepairPlan:
    """Inspect the engine *before* the deletion and lay out the repair.

    Reads only zero-copy views and O(deg)/O(broken-region) structures: the
    plan's cost is proportional to the victim's neighbourhood and the
    affected RTs' broken glue, never to the size of the network.  Orderings
    use the canonical :class:`repro.core.ports.NodeKey` total order, so
    planned trajectories are stable under order-preserving id relabelings.
    """
    actual = engine.actual_view()
    neighbors = (
        sorted(actual.neighbors(victim), key=NodeKey) if victim in actual else []
    )
    plan = RepairPlan(victim=victim, neighbors=list(neighbors))

    def context_for(node: NodeId) -> RepairContext:
        context = plan.contexts.get(node)
        if context is None:
            context = RepairContext(victim=victim)
            plan.contexts[node] = context
        return context

    affected = engine.affected_reconstruction_trees(victim)
    dead_by_rt = _dead_rt_nodes(engine, victim)
    anchors: List[NodeId] = []
    anchor_ready: Dict[NodeId, int] = {}
    for rt_index, rt in enumerate(affected):
        # The victim's processor is gone by the time the repair runs; its
        # spine slots are skipped (the probe hops over them).
        path = _dedupe(p for p in _right_spine_processors(rt) if p != victim)
        plan.probe_paths.append(path)
        plan.primary_root_counts.append(_primary_root_count(rt))
        strip = plan_strip(rt, victim, dead_by_rt.get(rt.rt_id, []), path)
        if not path:
            # The whole spine died with the victim: surviving fragments (they
            # hang off the left) detect the failure directly — their owners
            # anchor themselves with their own pieces.
            for summary in strip.summaries:
                plan.all_summaries.append(summary)
                owner = summary.root_port.processor
                context_for(owner).gathered[summary] = None
                if owner not in anchor_ready:
                    anchors.append(owner)
                    anchor_ready[owner] = 1
            for processor, released in strip.released_by_processor.items():
                context = context_for(processor)
                context.released.extend(released)
                context.strip_round = _merge_deadline(context.strip_round, 1)
            for processor, glue in strip.glue_by_processor.items():
                context = context_for(processor)
                context.glue.extend(glue)
                context.strip_round = _merge_deadline(context.strip_round, 1)
            continue
        plan.all_summaries.extend(strip.summaries)
        # Spine roles: who probes whom, who vouches for which pieces.
        by_position: Dict[int, List[PieceSummary]] = {}
        for summary, position in zip(strip.summaries, strip.spine_positions):
            by_position.setdefault(position, []).append(summary)
        length = len(path)
        for position, processor in enumerate(path):
            context = context_for(processor)
            role = SpineRole(
                rt_index=rt_index,
                position=position,
                prev_hop=path[position - 1] if position > 0 else None,
                next_hop=path[position + 1] if position + 1 < length else None,
                summaries=tuple(by_position.get(position, ())) if position > 0 else (),
                # The report wave should have returned from the spine's end
                # by round 2(L-1); a probed processor that heard nothing from
                # deeper down by its own slot initiates the wave itself.
                report_round=2 * length - position,
            )
            context.spines.append(role)
            if position == 0:
                # The anchor's own pieces are its local knowledge: they join
                # its gathered set directly instead of travelling a report.
                for summary in by_position.get(0, ()):
                    context.gathered[summary] = None
        # Strip knowledge of off-spine processors (broken-region interior):
        # applied on a model-level failure-detection deadline, see module doc.
        for processor, released in strip.released_by_processor.items():
            context = context_for(processor)
            context.released.extend(released)
            if processor not in path:
                context.strip_round = _merge_deadline(context.strip_round, 1)
        for processor, glue in strip.glue_by_processor.items():
            context = context_for(processor)
            context.glue.extend(glue)
            if processor not in path:
                context.strip_round = _merge_deadline(context.strip_round, 1)
        if path:
            anchor = path[0]
            if anchor not in anchor_ready:
                anchors.append(anchor)
            anchor_ready[anchor] = max(anchor_ready.get(anchor, 1), 2 * length)
    # Directly-connected neighbours contribute trivial single-leaf pieces and
    # anchor themselves.
    g_prime = engine.g_prime_graph_view()
    for neighbor in g_prime.neighbors(victim):
        if engine.is_alive(neighbor):
            summary = trivial_summary(neighbor, victim)
            plan.all_summaries.append(summary)
            context = context_for(neighbor)
            context.gathered[summary] = None
            if neighbor not in anchor_ready:
                anchors.append(neighbor)
                anchor_ready[neighbor] = 1

    plan.anchors = sorted(set(anchors), key=NodeKey)
    plan.bt_edges = _balanced_tree_edges(plan.anchors)
    if plan.anchors:
        plan.leader = plan.anchors[0]
    _assign_anchor_roles(plan, anchor_ready)
    return plan


def _assign_anchor_roles(plan: RepairPlan, anchor_ready: Dict[NodeId, int]) -> None:
    """Wire the anchors into ``BT_v`` and compute their shipping deadlines."""
    if not plan.anchors:
        return
    index_of = {anchor: i for i, anchor in enumerate(plan.anchors)}
    children: Dict[NodeId, List[NodeId]] = {}
    parent_of: Dict[NodeId, NodeId] = {}
    for parent, child in plan.bt_edges:
        children.setdefault(parent, []).append(child)
        parent_of[child] = parent
    # Ship rounds bottom-up: a child ships at S, the parent holds its own
    # batch until every child's list could have arrived (S + 2).
    ship: Dict[NodeId, int] = {}
    for anchor in sorted(plan.anchors, key=lambda a: -index_of[a]):
        ready = anchor_ready.get(anchor, 1)
        for child in children.get(anchor, ()):
            ready = max(ready, ship[child] + 2)
        ship[anchor] = ready
    deadline = 1
    for anchor in plan.anchors:
        context = plan.contexts.setdefault(anchor, RepairContext(victim=plan.victim))
        context.is_anchor = True
        context.bt_parent = parent_of.get(anchor)
        if anchor == plan.leader:
            context.is_leader = True
            context.decide_round = ship[anchor]
        else:
            context.ship_round = ship[anchor]
        deadline = max(deadline, ship[anchor])
    # Dissemination leaves the leader at decide time and lands one round
    # later; leave one more round of slack for self-delivered responses.
    plan.max_deadline = deadline + 2


def _merge_deadline(current: Optional[int], candidate: int) -> int:
    return candidate if current is None else min(current, candidate)


def _dead_rt_nodes(engine: ForgivingGraph, victim: NodeId) -> Dict[int, List[RTNode]]:
    """The RT nodes (leaves and helpers) that die with ``victim``, per RT id."""
    dead: Dict[int, List[RTNode]] = {}
    g_prime = engine.g_prime_graph_view()
    for neighbor in g_prime.neighbors(victim):
        own_port = Port(victim, neighbor)
        leaf_rt = engine._rt_of_leaf.get(own_port)
        if leaf_rt is not None:
            dead.setdefault(leaf_rt.rt_id, []).append(leaf_rt.leaves[own_port])
        helper_rt = engine._rt_of_helper.get(own_port)
        if helper_rt is not None:
            dead.setdefault(helper_rt.rt_id, []).append(helper_rt.helpers[own_port])
    return dead


def _right_spine_processors(rt: ReconstructionTree) -> List[NodeId]:
    """Processors along the root-to-rightmost-leaf path of an RT (the probe path)."""
    path: List[NodeId] = []
    node: Optional[RTNode] = rt.root
    while node is not None:
        path.append(node.processor)
        node = node.right if isinstance(node, RTHelper) else None
    return path


def _dedupe(path: Sequence[NodeId]) -> List[NodeId]:
    """Drop repeat visits: a processor already probed needs no second probe."""
    return list(dict.fromkeys(path))


def _primary_root_count(rt: ReconstructionTree) -> int:
    """Number of primary roots of an RT = number of 1-bits of its leaf count."""
    return bin(max(rt.size, 1)).count("1")


def seed_repair(network: Network, plan: RepairPlan) -> List[NodeId]:
    """Install ``plan``'s contexts and fire its Phase 0/1 seeding.

    This is the non-reactive prefix of a repair: context installation,
    out-of-band deletion notices, BT_v formation (Algorithm A.3) and the
    first probe hop of every spine (Algorithm A.5).  Everything after this
    is reactive — processors respond to what they receive, or act on their
    deadlines — so several seeded repairs can share one round loop: every
    message carries ``deleted=plan.victim`` as its epoch tag and every
    handler keys its state by that victim, so interleaved traffic from
    other epochs never collides.  A scaffold must already be open on
    ``network``.  Returns the live participants.
    """
    victim = plan.victim
    participants = [node for node in plan.contexts if network.has_processor(node)]
    for node in participants:
        network.processors[node].install_repair(plan.contexts[node])

    # Phase 0 — notification: the victim's neighbours detect the failure
    # locally (the model of Figure 1 informs them for free, so this is
    # delivered out of band and is fault-exempt); anchors likewise apply
    # their local strip knowledge, since their fragments are adjacent to
    # the failure.
    for neighbor in plan.neighbors:
        if network.has_processor(neighbor):
            network.processors[neighbor].receive(
                network.stamp(
                    network.new(
                        DeletionNotice,
                        sender=neighbor,
                        receiver=neighbor,
                        deleted=victim,
                    )
                )
            )

    # Phase 1 seeding — BT_v formation and the first probe hops.
    for parent, child in plan.bt_edges:
        if network.has_processor(parent) and network.has_processor(child):
            network.scaffold_link(parent, child)
            network.send(
                network.new(
                    AnchorLink, sender=child, receiver=parent, deleted=victim, anchor_port=None
                )
            )
    for rt_index, path in enumerate(plan.probe_paths):
        live = [p for p in path if network.has_processor(p)]
        if not live:
            continue
        anchor = live[0]
        context = plan.contexts[anchor]
        for role in context.spines:
            if role.rt_index == rt_index:
                role.probed = True
                role.probe_forwarded = True
        anchor_processor = network.processors[anchor]
        if not context.stripped:
            anchor_processor.apply_strip(context)
        if len(live) > 1:
            network.send(
                network.new(
                    Probe,
                    sender=anchor,
                    receiver=live[1],
                    deleted=victim,
                    hops=1,
                    rt_index=rt_index,
                )
            )
    return participants


def execute_repair(network: Network, plan: RepairPlan) -> int:
    """Run the repair of ``plan.victim`` as messages on ``network``.

    Must be called after the victim's processor has been removed.  The
    engine is *not* consulted: participants act on the installed contexts
    and on what they receive.  Returns the number of communication rounds
    the repair used.  This is the retained one-repair-at-a-time reference;
    ``simulator.delete_batch`` drives the same :func:`seed_repair` prefix
    for several plans inside one shared round loop.
    """
    network.begin_scaffold()
    participants = seed_repair(network, plan)
    rounds = 1

    # ------------------------------------------------------------------ #
    # The synchronous round loop: deliver, then fire deadline timers.
    # ------------------------------------------------------------------ #
    while network.in_flight or rounds < plan.max_deadline:
        network.deliver_round()
        rounds += 1
        network.tick(rounds, participants)

    # Every link this repair created for its own traffic (BT_v edges, probe
    # hops, merge wiring) is dropped again unless the healed graph now
    # sources it (Algorithm A.3, "delete the edges E_v") — decided from the
    # network's own source sets, not from an engine probe.
    network.end_scaffold()
    return rounds


def _balanced_tree_edges(anchors: Sequence[NodeId]) -> List[Tuple[NodeId, NodeId]]:
    """(parent, child) edges of a balanced binary tree over the anchors."""
    edges: List[Tuple[NodeId, NodeId]] = []
    for index in range(1, len(anchors)):
        parent = anchors[(index - 1) // 2]
        child = anchors[index]
        if parent != child:
            edges.append((parent, child))
    return edges
