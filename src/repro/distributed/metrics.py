"""Communication-cost accounting for the distributed protocol.

Lemma 4 bounds, per deletion of a degree-``d`` node in a network of ``n``
nodes seen so far:

* total messages: ``O(d log n)``,
* message size:   ``O(log n)`` bits,
* recovery time:  ``O(log d log n)`` rounds.

:class:`NetworkMetrics` accumulates the raw counts while the simulator runs;
:class:`MetricsWindow` is the per-repair slice of those counters (opened by
:meth:`NetworkMetrics.begin_window`, so a repair's cost report is computed
from O(repair) state instead of diffing full counter snapshots);
:class:`DeletionCostReport` is the per-deletion record the experiments and
benchmarks consume (experiment E5 in DESIGN.md).

Recovery has its own ledger (PR 5): the gossip-digest anti-entropy protocol
(:mod:`repro.distributed.recovery`) runs inside its own window, and
:class:`RecoveryCostReport` splits its traffic into *digest* cost (the
price of detection — paid even when nothing was lost) and *retransmission*
cost (the price of the faults), with Lemma-4-style per-sweep budgets.
Each faulty deletion's :class:`DeletionCostReport` embeds the
:class:`RecoveryCostReport` of its recovery pass.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..analysis.bounds import repair_message_bound, repair_time_bound
from ..core.ports import NodeId

__all__ = [
    "MetricsWindow",
    "NetworkMetrics",
    "BurstCostReport",
    "DeletionCostReport",
    "RecoveryCostReport",
    "ByzantineReport",
    "DIGEST_KINDS",
    "aggregate_recovery",
    "aggregate_byzantine",
]

#: Message kinds that belong to the anti-entropy detection layer; everything
#: else sent during a recovery window is a retransmission of repair traffic.
DIGEST_KINDS = frozenset({"Digest", "DigestRequest"})


@dataclass
class MetricsWindow:
    """Counters restricted to one repair: everything recorded while it is open.

    The window only ever holds state proportional to the repair it measures
    (its per-sender dict has one entry per processor that actually sent a
    message), which is what keeps the simulator's per-deletion accounting
    O(delta) — the alternative, diffing two :meth:`NetworkMetrics.snapshot`
    copies, is O(n) per deletion regardless of how small the repair was.
    """

    messages: int = 0
    bits: int = 0
    rounds: int = 0
    #: Messages a fault dropped while the window was open.
    dropped: int = 0
    #: Largest single message sent *within the window* (the per-repair value
    #: Lemma 4 bounds; the run-wide maximum stays on :class:`NetworkMetrics`).
    max_message_bits: int = 0
    messages_by_node: Dict[NodeId, int] = field(default_factory=lambda: defaultdict(int))
    #: Per-kind message/bit counts within the window (one entry per message
    #: type that actually occurred — O(repair) state, like everything else
    #: here).  The recovery ledger uses these to split digest traffic from
    #: retransmitted repair traffic.
    messages_by_kind: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    bits_by_kind: Dict[str, int] = field(default_factory=lambda: defaultdict(int))

    def record_message(self, sender: NodeId, bits: int, kind: str = "") -> None:
        """Account for one message sent while the window is open."""
        self.messages += 1
        self.bits += bits
        if bits > self.max_message_bits:
            self.max_message_bits = bits
        self.messages_by_node[sender] += 1
        self.messages_by_kind[kind] += 1
        self.bits_by_kind[kind] += bits

    def record_batch(self, sender: NodeId, count: int, bits: int, max_bits: int, kind: str = "") -> None:
        """Account for ``count`` messages of one ``(sender, kind)`` tally cell.

        The folded form of ``count`` :meth:`record_message` calls: ``bits``
        is their sum and ``max_bits`` the largest single message among them,
        so every counter — including the per-window Lemma 4 maximum — lands
        bit-identical to the per-send path.
        """
        self.messages += count
        self.bits += bits
        if max_bits > self.max_message_bits:
            self.max_message_bits = max_bits
        self.messages_by_node[sender] += count
        self.messages_by_kind[kind] += count
        self.bits_by_kind[kind] += bits

    def count_for_kinds(self, kinds) -> int:
        """Messages of the given kinds sent within the window."""
        return sum(self.messages_by_kind.get(kind, 0) for kind in kinds)

    def bits_for_kinds(self, kinds) -> int:
        """Bits of the given kinds sent within the window."""
        return sum(self.bits_by_kind.get(kind, 0) for kind in kinds)

    def record_rounds(self, rounds: int) -> None:
        """Account for communication rounds elapsed while the window is open."""
        self.rounds += rounds

    def record_dropped(self, count: int = 1) -> None:
        """Account for fault-dropped (or loudly discarded) messages."""
        self.dropped += count

    def max_messages_per_node(self) -> int:
        """The busiest single sender's message count within the window."""
        return max(self.messages_by_node.values(), default=0)


@dataclass
class NetworkMetrics:
    """Running totals of the message-passing simulator."""

    total_messages: int = 0
    total_bits: int = 0
    total_rounds: int = 0
    #: Messages lost to fault injection over the whole run.
    total_dropped: int = 0
    #: Largest single message of the whole run (cumulative; per-repair maxima
    #: live on the :class:`MetricsWindow` of each repair).
    max_message_bits: int = 0
    messages_by_kind: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    messages_sent_by_node: Dict[NodeId, int] = field(default_factory=lambda: defaultdict(int))
    bits_sent_by_node: Dict[NodeId, int] = field(default_factory=lambda: defaultdict(int))
    #: The currently open per-repair window (``None`` between repairs).
    window: Optional[MetricsWindow] = None
    #: Concurrently open per-epoch windows, keyed by the repair's victim
    #: (every repair-protocol message carries ``deleted``, so the victim IS
    #: the epoch tag).  Empty outside ``delete_batch``; the sequential path
    #: never touches this dict.
    epoch_windows: Dict[object, MetricsWindow] = field(default_factory=dict)

    def begin_window(self) -> MetricsWindow:
        """Open (and return) a fresh per-repair window; replaces any open one."""
        self.window = MetricsWindow()
        return self.window

    def end_window(self) -> MetricsWindow:
        """Close the open window and return it (empty window if none was open)."""
        window = self.window if self.window is not None else MetricsWindow()
        self.window = None
        return window

    def begin_epoch_window(self, key: object) -> MetricsWindow:
        """Open a window attributed to one repair epoch (keyed by victim)."""
        window = MetricsWindow()
        self.epoch_windows[key] = window
        return window

    def end_epoch_window(self, key: object) -> MetricsWindow:
        """Close one epoch window (empty window if the key was never opened)."""
        return self.epoch_windows.pop(key, None) or MetricsWindow()

    def record_message(self, sender: NodeId, kind: str, bits: int, epoch: object = None) -> None:
        """Account for one sent message."""
        self.total_messages += 1
        self.total_bits += bits
        self.max_message_bits = max(self.max_message_bits, bits)
        self.messages_by_kind[kind] += 1
        self.messages_sent_by_node[sender] += 1
        self.bits_sent_by_node[sender] += bits
        if self.window is not None:
            self.window.record_message(sender, bits, kind=kind)
        if self.epoch_windows:
            epoch_window = self.epoch_windows.get(epoch)
            if epoch_window is not None:
                epoch_window.record_message(sender, bits, kind=kind)

    def record_message_batch(
        self,
        sender: NodeId,
        kind: str,
        count: int,
        bits: int,
        max_bits: int,
        epoch: object = None,
    ) -> None:
        """Account for ``count`` sent messages of one ``(sender, kind, epoch)`` cell.

        The network's per-round send tally flushes through here instead of
        calling :meth:`record_message` once per message — same counters,
        bit-identical values (sums distribute, maxima compose), one dict
        walk per distinct cell per round instead of one per message.
        """
        self.total_messages += count
        self.total_bits += bits
        if max_bits > self.max_message_bits:
            self.max_message_bits = max_bits
        self.messages_by_kind[kind] += count
        self.messages_sent_by_node[sender] += count
        self.bits_sent_by_node[sender] += bits
        if self.window is not None:
            self.window.record_batch(sender, count, bits, max_bits, kind=kind)
        if self.epoch_windows:
            epoch_window = self.epoch_windows.get(epoch)
            if epoch_window is not None:
                epoch_window.record_batch(sender, count, bits, max_bits, kind=kind)

    def record_rounds(self, rounds: int) -> None:
        """Account for ``rounds`` parallel communication rounds."""
        self.total_rounds += rounds
        if self.window is not None:
            self.window.record_rounds(rounds)

    def record_dropped(self, count: int = 1, epoch: object = None) -> None:
        """Account for messages lost to fault injection (or discarded loudly)."""
        self.total_dropped += count
        if self.window is not None:
            self.window.record_dropped(count)
        if self.epoch_windows:
            epoch_window = self.epoch_windows.get(epoch)
            if epoch_window is not None:
                epoch_window.record_dropped(count)

    def max_messages_per_node(self) -> int:
        """The busiest single node's message count (success metric 3 of Figure 1)."""
        return max(self.messages_sent_by_node.values(), default=0)

    def max_bits_per_node(self) -> int:
        """The busiest single node's bits sent."""
        return max(self.bits_sent_by_node.values(), default=0)

    def snapshot(self) -> "NetworkMetrics":
        """Deep-ish copy of every counter — O(n) in the number of senders.

        Retained as the reference accounting: the simulator's fast path now
        derives per-deletion deltas from a :class:`MetricsWindow` instead of
        diffing two snapshots, and the equivalence tests cross-check the two.
        """
        clone = NetworkMetrics(
            total_messages=self.total_messages,
            total_bits=self.total_bits,
            total_rounds=self.total_rounds,
            total_dropped=self.total_dropped,
            max_message_bits=self.max_message_bits,
        )
        clone.messages_by_kind = defaultdict(int, self.messages_by_kind)
        clone.messages_sent_by_node = defaultdict(int, self.messages_sent_by_node)
        clone.bits_sent_by_node = defaultdict(int, self.bits_sent_by_node)
        return clone


@dataclass
class RecoveryCostReport:
    """Communication cost of one anti-entropy recovery pass (PR 5).

    The gossip-digest protocol has two separable costs:

    * **detection** — the :class:`~repro.distributed.messages.Digest` /
      :class:`~repro.distributed.messages.DigestRequest` traffic each sweep
      pays whether or not anything was lost (``digest_messages`` /
      ``digest_bits``), and
    * **repair** — the protocol messages retransmitted because a digest
      showed them missing (``retransmissions`` / ``retransmission_bits``).

    ``sweeps`` counts gossip passes (every participant digests once per
    sweep); ``rounds`` counts the delivery rounds they consumed.  One sweep's
    digest traffic is bounded by the same ``O(d log n)`` counting as the
    repair itself (each participant's digest is proportional to its own
    local knowledge), which :attr:`within_digest_budget` checks explicitly.
    """

    victim: NodeId
    #: Degree of the repaired deletion's victim (the ``d`` of the budgets).
    degree: int
    #: Number of nodes seen so far (the ``n`` of the budgets).
    n_ever: int
    converged: bool
    #: Gossip passes driven (one digest emission per participant per sweep).
    sweeps: int = 0
    #: Delivery rounds consumed across all sweeps.
    rounds: int = 0
    digest_messages: int = 0
    digest_bits: int = 0
    #: Largest single message sent during recovery (digest or retransmission).
    max_message_bits: int = 0
    retransmissions: int = 0
    retransmission_bits: int = 0
    #: Messages lost to faults during the recovery itself.
    dropped: int = 0
    #: Messages still in flight when the recovery gave up (0 when converged;
    #: a non-zero value means ``max_rounds`` hit mid-delivery and the
    #: leftover traffic was discarded *loudly* instead of leaking into the
    #: next repair).
    in_flight_leftover: int = 0
    #: Messages emitted by the first anti-entropy sweep run *after* every
    #: participant's ``recovery_satisfied`` predicate already held — the
    #: fixed-point probe.  The silent-protocol property says this is 0 on
    #: the lossless path (recorded only by the background/piggyback driver;
    #: -1 means the probe never ran, e.g. the standalone ``run_recovery``).
    fixed_point_messages: int = -1

    @property
    def digest_message_budget(self) -> float:
        """Per-pass ``O(d log n)`` budget scaled by the number of sweeps."""
        return max(self.sweeps, 1) * repair_message_bound(max(self.degree, 1), self.n_ever)

    @property
    def round_budget(self) -> float:
        """Per-pass ``O(log d log n)`` budget scaled by the number of sweeps."""
        return max(self.sweeps, 1) * repair_time_bound(max(self.degree, 1), self.n_ever)

    @property
    def within_digest_budget(self) -> bool:
        """True when the detection traffic fits its Lemma-4-style budget."""
        return self.digest_messages <= self.digest_message_budget + 1e-9

    @property
    def within_round_budget(self) -> bool:
        """True when the recovery rounds fit their Lemma-4-style budget."""
        return self.rounds <= self.round_budget + 1e-9

    def as_row(self) -> Dict[str, object]:
        """Flatten to a dict for the table reporters."""
        return {
            "victim": self.victim,
            "degree": self.degree,
            "n_ever": self.n_ever,
            "converged": self.converged,
            "sweeps": self.sweeps,
            "rounds": self.rounds,
            "digest_messages": self.digest_messages,
            "digest_bits": self.digest_bits,
            "digest_budget": round(self.digest_message_budget, 1),
            "retransmissions": self.retransmissions,
            "retransmission_bits": self.retransmission_bits,
            "dropped": self.dropped,
            "in_flight_leftover": self.in_flight_leftover,
            "fixed_point_messages": self.fixed_point_messages,
        }


def aggregate_recovery(reports) -> Dict[str, object]:
    """Fold a run's :class:`RecoveryCostReport` list into one summary row.

    The shared core every recovery consumer reports (experiment E12, the
    perf report's ``message_native_recovery`` gate); callers add their own
    extra columns on top, so a field added here reaches all of them at
    once.
    """
    reports = list(reports)
    return {
        "recoveries": len(reports),
        "sweeps": sum(r.sweeps for r in reports),
        "rounds": sum(r.rounds for r in reports),
        "digest_messages": sum(r.digest_messages for r in reports),
        "digest_bits": sum(r.digest_bits for r in reports),
        "retransmissions": sum(r.retransmissions for r in reports),
        "dropped_in_recovery": sum(r.dropped for r in reports),
        "all_converged": all(r.converged for r in reports),
        "within_digest_budgets": all(r.within_digest_budget for r in reports),
        "within_round_budgets": all(r.within_round_budget for r in reports),
    }


@dataclass
class ByzantineReport:
    """Per-deletion byzantine accountability deltas (PR 6).

    Assembled by the simulator from the round's transcript/injection-log
    deltas.  The headline quantity is the **containment radius** of each
    processor accused during this deletion — how many distinct processors
    one of its corrupted payloads reached before the quarantine cut it
    off — together with the **detection latency** in delivery rounds
    between its first delivered lie and its first accusation.
    ``false_accusations`` counts accused processors the injection schedule
    says were honest; the perf gate pins it at zero.
    """

    #: Corrupted payloads sent / actually delivered during this deletion.
    lies_sent: int = 0
    lies_delivered: int = 0
    #: Accusations appended to the transcript during this deletion.
    accusations: int = 0
    #: Processors first accused during this deletion.
    newly_accused: Tuple[NodeId, ...] = ()
    #: Newly accused processors the fault schedule says were honest.
    false_accusations: int = 0
    #: Containment radius per newly accused processor.
    containment: Dict[NodeId, int] = field(default_factory=dict)
    #: Detection latency (rounds) per newly accused processor.
    detection_latency: Dict[NodeId, int] = field(default_factory=dict)
    #: Cumulative quarantine count after this deletion.
    quarantined_total: int = 0

    @property
    def max_containment_radius(self) -> int:
        return max(self.containment.values(), default=0)

    @property
    def max_detection_latency(self) -> int:
        return max(self.detection_latency.values(), default=0)

    def as_row(self) -> Dict[str, object]:
        return {
            "lies_sent": self.lies_sent,
            "lies_delivered": self.lies_delivered,
            "accusations": self.accusations,
            "newly_accused": len(self.newly_accused),
            "false_accusations": self.false_accusations,
            "containment_radius": self.max_containment_radius,
            "detection_latency": self.max_detection_latency,
            "quarantined_total": self.quarantined_total,
        }


def aggregate_byzantine(reports) -> Dict[str, object]:
    """Fold a run's :class:`ByzantineReport` list into one summary row.

    The shared core of E13 and the ``byzantine_containment`` perf gate
    (mirroring :func:`aggregate_recovery` for the recovery ledger).
    """
    reports = [report for report in reports if report is not None]
    accused = set()
    radii = []
    latencies = []
    for report in reports:
        accused.update(report.newly_accused)
        radii.extend(report.containment.values())
        latencies.extend(report.detection_latency.values())
    return {
        "deletions": len(reports),
        "lies_sent": sum(r.lies_sent for r in reports),
        "lies_delivered": sum(r.lies_delivered for r in reports),
        "accusations": sum(r.accusations for r in reports),
        "accused": len(accused),
        "false_accusations": sum(r.false_accusations for r in reports),
        "max_containment_radius": max(radii, default=0),
        "mean_containment_radius": (
            round(sum(radii) / len(radii), 2) if radii else 0.0
        ),
        "max_detection_latency": max(latencies, default=0),
        "mean_detection_latency": (
            round(sum(latencies) / len(latencies), 2) if latencies else 0.0
        ),
    }


@dataclass
class DeletionCostReport:
    """Communication cost of a single deletion repair."""

    deleted_node: NodeId
    #: Degree of the deleted node in ``G'`` (the ``d`` of Lemma 4).
    degree: int
    #: Number of nodes seen so far (the ``n`` of Lemma 4).
    n_ever: int
    messages: int
    bits: int
    rounds: int
    #: Largest single message sent *during this repair* (not the run so far).
    max_message_bits: int
    max_messages_per_node: int
    helpers_created: int
    helpers_released: int
    #: Fault-tolerance accounting (all zero on a lossless network).
    dropped_messages: int = 0
    retransmissions: int = 0
    reconvergence_rounds: int = 0
    converged: bool = True
    #: Full ledger of this deletion's anti-entropy recovery pass, when one
    #: ran (the scalar fields above are its headline numbers, kept flat for
    #: the table reporters and for back-compat).
    recovery: Optional[RecoveryCostReport] = None
    #: Byzantine accountability deltas for this deletion (``None`` when the
    #: run has no byzantine axis).
    byzantine: Optional[ByzantineReport] = None

    @property
    def message_budget(self) -> float:
        """The explicit ``O(d log n)`` message budget this repair is checked against."""
        return repair_message_bound(self.degree, self.n_ever)

    @property
    def round_budget(self) -> float:
        """The explicit ``O(log d log n)`` round budget this repair is checked against."""
        return repair_time_bound(self.degree, self.n_ever)

    @property
    def within_message_budget(self) -> bool:
        """True when the measured message count is within the Lemma 4 budget."""
        return self.messages <= self.message_budget + 1e-9

    @property
    def within_round_budget(self) -> bool:
        """True when the measured round count is within the Lemma 4 budget."""
        return self.rounds <= self.round_budget + 1e-9

    def as_row(self) -> Dict[str, object]:
        """Flatten to a dict for the table reporters."""
        return {
            "deleted": self.deleted_node,
            "degree": self.degree,
            "n_ever": self.n_ever,
            "messages": self.messages,
            "message_budget": round(self.message_budget, 1),
            "rounds": self.rounds,
            "round_budget": round(self.round_budget, 1),
            "max_message_bits": self.max_message_bits,
            "max_messages_per_node": self.max_messages_per_node,
            "helpers_created": self.helpers_created,
            "helpers_released": self.helpers_released,
            "dropped_messages": self.dropped_messages,
            "retransmissions": self.retransmissions,
            "reconvergence_rounds": self.reconvergence_rounds,
            "converged": self.converged,
            "recovery_sweeps": self.recovery.sweeps if self.recovery else 0,
            "digest_messages": self.recovery.digest_messages if self.recovery else 0,
            "digest_bits": self.recovery.digest_bits if self.recovery else 0,
            "lies_delivered": self.byzantine.lies_delivered if self.byzantine else 0,
            "accusations": self.byzantine.accusations if self.byzantine else 0,
            "containment_radius": (
                self.byzantine.max_containment_radius if self.byzantine else 0
            ),
        }


@dataclass
class BurstCostReport:
    """Cost of one ``delete_batch`` call (a burst of overlapping deletions).

    The headline claim of the concurrent driver is that a burst of ``k``
    disjoint-footprint deletions costs ~max, not ~sum, of the individual
    repair latencies: ``rounds`` counts *shared* delivery rounds (all
    repairs of a wave interleave in the same ``deliver_round`` stream, so a
    wave's rounds are paid once no matter how many repairs ride it), while
    the per-victim :class:`DeletionCostReport`\\ s in ``reports`` still carry
    exact per-epoch message/bit attribution from their epoch windows.
    """

    victims: Tuple[NodeId, ...]
    #: The admission cap the burst ran under (``None`` = unbounded).
    concurrency: Optional[int]
    #: Number of admission waves the burst took (1 when every footprint was
    #: pairwise disjoint; overlapping footprints queue into later waves).
    waves: int
    #: Total shared delivery rounds across all waves (repair + background
    #: anti-entropy).
    rounds: int
    #: Per-victim reports in admission order (wave by wave).
    reports: List[DeletionCostReport] = field(default_factory=list)
    #: How many repairs each wave admitted, in order.
    wave_sizes: Tuple[int, ...] = ()

    def as_row(self) -> Dict[str, object]:
        """Flatten to a dict for the table reporters."""
        return {
            "victims": len(self.victims),
            "concurrency": self.concurrency if self.concurrency is not None else "inf",
            "waves": self.waves,
            "rounds": self.rounds,
            "messages": sum(r.messages for r in self.reports),
            "bits": sum(r.bits for r in self.reports),
            "dropped_messages": sum(r.dropped_messages for r in self.reports),
            "converged": all(r.converged for r in self.reports),
            "fixed_point_messages": max(
                (r.recovery.fixed_point_messages for r in self.reports if r.recovery),
                default=-1,
            ),
        }
