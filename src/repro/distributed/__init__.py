"""Distributed execution substrate for the Forgiving Graph.

The paper's algorithm is a distributed protocol: processors only know their
neighbours, react to deletions by exchanging messages, and the costs that
matter are the number of messages, their sizes and the number of parallel
communication rounds (Figure 1's success metrics 3 and 4, bounded by
Lemma 4).  This package provides

* :mod:`repro.distributed.messages` — the message vocabulary of the protocol,
* :mod:`repro.distributed.network` — a synchronous round-based
  message-passing simulator with per-processor counters,
* :mod:`repro.distributed.processor` — per-processor state: one
  :class:`EdgeRecord` per ``G'`` edge with exactly the fields of Table 1,
* :mod:`repro.distributed.protocol` — the repair protocol driving the
  message exchanges (notification, BT_v formation, probing for primary
  roots, bottom-up merging),
* :mod:`repro.distributed.simulator` — :class:`DistributedForgivingGraph`,
  a drop-in healer that runs every repair through the message-passing
  substrate and reports per-deletion communication costs.

The cost accounting is incremental end to end: link sync applies the
engine's edge-delta journal and per-deletion reports come from a per-repair
metrics window, so measuring a repair costs O(repair) — never O(n + m) —
keeping the accounting within the protocol's own Lemma 4 asymptotics.

The structural outcome of each repair is cross-checkable against the
centralized reference engine (:class:`repro.core.ForgivingGraph`); the tests
in ``tests/test_distributed_*`` do exactly that.
"""

from .messages import (
    AnchorLink,
    DeletionNotice,
    HelperAssignment,
    InsertionNotice,
    Message,
    ParentUpdate,
    PrimaryRootList,
    PrimaryRootReport,
    Probe,
)
from .metrics import DeletionCostReport, MetricsWindow, NetworkMetrics
from .network import Network
from .processor import EdgeRecord, Processor
from .simulator import DistributedForgivingGraph

__all__ = [
    "Message",
    "DeletionNotice",
    "InsertionNotice",
    "AnchorLink",
    "Probe",
    "PrimaryRootReport",
    "PrimaryRootList",
    "ParentUpdate",
    "HelperAssignment",
    "Network",
    "Processor",
    "EdgeRecord",
    "NetworkMetrics",
    "MetricsWindow",
    "DeletionCostReport",
    "DistributedForgivingGraph",
]
