"""Distributed execution substrate for the Forgiving Graph.

The paper's algorithm is a distributed protocol: processors only know their
neighbours, react to deletions by exchanging messages, and the costs that
matter are the number of messages, their sizes and the number of parallel
communication rounds (Figure 1's success metrics 3 and 4, bounded by
Lemma 4).  This package provides

* :mod:`repro.distributed.messages` — the message vocabulary of the protocol,
* :mod:`repro.distributed.merge` — the message-native merge: piece
  descriptors that travel in messages, the read-only strip planner, and
  ``ComputeHaft`` on descriptors alone,
* :mod:`repro.distributed.network` — a synchronous round-based
  message-passing simulator with sourced links, repair scaffolding,
  optional fault injection and per-processor counters,
* :mod:`repro.distributed.faults` — seeded per-link drop/delay/reorder
  policies, the per-processor byzantine payload-corruption axis
  (:class:`ByzantinePolicy`), and the named presets shared by E11/E13,
  CI and the tests,
* :mod:`repro.distributed.accountability` — the protocol-side accusation
  transcript (who accused whom, with the conflicting message pair as
  evidence) and the oracle-side injection log it is scored against,
* :mod:`repro.distributed.processor` — per-processor state (one
  :class:`EdgeRecord` per ``G'`` edge with exactly the fields of Table 1)
  plus the reactive repair behaviour driven by received messages,
* :mod:`repro.distributed.protocol` — planning (each participant's
  pre-failure local knowledge) and the synchronous round loop
  (notification, BT_v formation, probing for primary roots, leader merge
  and dissemination),
* :mod:`repro.distributed.recovery` — the gossip-digest anti-entropy
  recovery: participants gossip compact digests of their own repair state
  and retransmit only what their neighbours' digests show missing, with
  its own :class:`RecoveryCostReport` cost ledger; the same protocol
  re-cut as the per-epoch :class:`BackgroundRecovery` state machine for
  concurrent bursts,
* :mod:`repro.distributed.simulator` — :class:`DistributedForgivingGraph`,
  a drop-in healer that runs every repair through the message-passing
  substrate, reports per-deletion communication costs, reconverges after
  injected faults, and heals deletion *bursts* concurrently
  (:meth:`~DistributedForgivingGraph.delete_batch`: disjoint-footprint
  waves of epoch-tagged repairs in one shared delivery stream, summarized
  per burst by :class:`BurstCostReport`).

The merge *and* the recovery are message-native: the healed structure is
decided by the merge leader from the descriptors that physically arrived
and applied by owners from the instructions they physically received — so
faulty links make processors disagree — and
:meth:`DistributedForgivingGraph.reconverge` heals the divergence with
digest gossip, never a global audit (the plan-based audit survives only as
the :meth:`~DistributedForgivingGraph.audit_reference` oracle).  The
centralized reference engine is an *oracle*: the tests in
``tests/test_distributed_*`` assert the message-built state converges to
it exactly.  Cost accounting stays O(repair) end to end (per-repair metrics
window, message-driven link sources, per-sweep digest budgets), within
Lemma 4's own asymptotics.

Detection of *byzantine* payload faults is message-native too (PR 6):
sealed message kinds and checksummed descriptors expose in-flight
tampering at ``receive()`` time, cross-witnessing exposes equivocation,
and every contradiction lands on the network's
:class:`AccountabilityTranscript` as an :class:`Accusation` naming the
liar — who is then quarantined (crash semantics) while recovery heals
around it.  The simulator threads the per-deletion deltas into each
:class:`DeletionCostReport` as a :class:`ByzantineReport` (containment
radius, detection latency, false-accusation count).
"""

from .accountability import Accusation, AccountabilityTranscript, InjectionLog
from .faults import (
    BYZANTINE_PRESETS,
    DELIVERY_PRESETS,
    FAULT_PRESETS,
    ByzantinePolicy,
    FaultSchedule,
    FaultSpec,
    LinkFaultPolicy,
    fault_schedule,
)
from .merge import MergeOutcome, PieceSummary, merge_summaries, plan_strip
from .messages import (
    AnchorLink,
    DeletionNotice,
    Digest,
    DigestRequest,
    HelperAssignment,
    InsertionNotice,
    Message,
    ParentUpdate,
    PortDigest,
    PrimaryRootList,
    PrimaryRootReport,
    Probe,
)
from .metrics import (
    BurstCostReport,
    ByzantineReport,
    DeletionCostReport,
    MetricsWindow,
    NetworkMetrics,
    RecoveryCostReport,
    aggregate_byzantine,
)
from .network import Network
from .processor import EdgeRecord, Processor, RepairContext
from .recovery import BackgroundRecovery, run_recovery
from .simulator import DistributedForgivingGraph, ReconvergenceReport

__all__ = [
    "Message",
    "DeletionNotice",
    "InsertionNotice",
    "AnchorLink",
    "Probe",
    "PrimaryRootReport",
    "PrimaryRootList",
    "ParentUpdate",
    "HelperAssignment",
    "Digest",
    "DigestRequest",
    "PortDigest",
    "Network",
    "Processor",
    "EdgeRecord",
    "RepairContext",
    "NetworkMetrics",
    "MetricsWindow",
    "DeletionCostReport",
    "RecoveryCostReport",
    "BurstCostReport",
    "run_recovery",
    "BackgroundRecovery",
    "DistributedForgivingGraph",
    "ReconvergenceReport",
    "FaultSchedule",
    "FaultSpec",
    "LinkFaultPolicy",
    "ByzantinePolicy",
    "fault_schedule",
    "FAULT_PRESETS",
    "DELIVERY_PRESETS",
    "BYZANTINE_PRESETS",
    "Accusation",
    "AccountabilityTranscript",
    "InjectionLog",
    "ByzantineReport",
    "aggregate_byzantine",
    "PieceSummary",
    "MergeOutcome",
    "merge_summaries",
    "plan_strip",
]
